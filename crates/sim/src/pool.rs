//! Parallel work-group execution: shared memory views, per-worker arenas
//! and the std::thread work-group scheduler.
//!
//! The work-group axis of an ND-range launch is embarrassingly parallel —
//! SYCL guarantees work-groups are independent (no barriers span groups,
//! and cross-group data races are undefined behaviour in the source
//! program). This module exploits that: work-groups are distributed over a
//! pool of OS threads, each running its groups' work-items co-operatively
//! exactly like the sequential engine.
//!
//! Three pieces make that safe and **deterministic**:
//!
//! * [`SharedPool`] — a launch-scoped view of the pre-existing device
//!   buffers (accessor-backed global memory). Element loads/stores go
//!   through raw typed pointers with bounds checks, so concurrent access
//!   from many worker threads needs no locking. Distinct work-groups of a
//!   well-formed kernel touch disjoint elements; a kernel that races with
//!   itself is broken on real hardware too.
//! * [`PlanPool`] — the memory interface handed to the plan executor: the
//!   shared view plus a **worker-private arena** for every allocation made
//!   during execution (private `memref.alloca`, work-group
//!   `sycl.local.alloca`, dense-constant materializations). Workers never
//!   mutate shared allocation tables, so there is no allocation lock; the
//!   high bit of a [`MemId`] routes accesses to the right side.
//! * [`run_plan_launch`] — the scheduler. Workers claim work-groups from an
//!   atomic counter (dynamic load balancing), accumulate [`ExecStats`]
//!   locally, and the per-worker counters are summed after the join.
//!   Every counter is an integer total over work-groups and the
//!   coalescing tracker resets per group, so the merged statistics — and
//!   the cycle model charged from them — are bit-identical for any worker
//!   count and any interleaving.
//!
//! Determinism of errors: when several work-groups fail, the error of the
//! lowest-numbered group among those observed is reported, matching the
//! sequential engine whenever a single group is at fault.

use crate::cost::{CostModel, ExecStats};
use crate::device::{cooperative_rounds, items_of_group, NdRangeSpec};
use crate::interp::{SimError, WorkGroupCtx};
use crate::memory::{DataVec, MemId, MemoryPool};
use crate::plan::{KernelPlan, PlanCtx, PlanWorkItem};
use crate::value::RtValue;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Tag bit distinguishing worker-arena allocations from launch-shared
/// buffers in a [`MemId`].
const ARENA_BIT: u32 = 1 << 31;

// ----------------------------------------------------------------------
// SharedPool: lock-free views of the pre-launch buffers
// ----------------------------------------------------------------------

/// Typed base pointer of one shared buffer.
#[derive(Clone, Copy, Debug)]
enum BufPtr {
    F32(*mut f32),
    F64(*mut f64),
    I32(*mut i32),
    I64(*mut i64),
}

/// One shared buffer: its element pointer and length.
#[derive(Clone, Copy, Debug)]
struct SharedBuf {
    ptr: BufPtr,
    len: usize,
}

/// A launch-scoped, concurrently accessible view of every buffer that
/// existed in the [`MemoryPool`] when the launch started.
///
/// Construction borrows the pool mutably for the whole launch, so no other
/// code can observe or resize the buffers while workers hold raw pointers
/// into them. Element accesses are bounds-checked and panic like the
/// sequential `Vec` indexing they replace, and go through per-element
/// **relaxed atomics** (free on mainstream targets — they compile to the
/// plain loads/stores they replace): a simulated kernel that races with
/// itself across work-groups reads torn-by-element but well-defined
/// values, like on the GPU, instead of being undefined behaviour in the
/// host process.
pub struct SharedPool<'p> {
    bufs: Vec<SharedBuf>,
    _pool: PhantomData<&'p mut MemoryPool>,
}

// SAFETY: the raw pointers reference buffers exclusively borrowed for the
// lifetime `'p`; the view never grows or shrinks them, and every element
// access is atomic (no mixed atomic/non-atomic access while the view is
// alive, since the borrow keeps all safe `MemoryPool` APIs unreachable).
unsafe impl Send for SharedPool<'_> {}
unsafe impl Sync for SharedPool<'_> {}

/// Relaxed atomic element load through a raw pointer.
///
/// # Safety
///
/// `p.add(i)` must be in bounds of a live, properly aligned allocation
/// with no concurrent non-atomic access.
#[inline]
unsafe fn load32(p: *mut i32, i: usize) -> u32 {
    unsafe { std::sync::atomic::AtomicU32::from_ptr(p.add(i).cast()).load(Ordering::Relaxed) }
}

/// See [`load32`].
#[inline]
unsafe fn load64(p: *mut i64, i: usize) -> u64 {
    unsafe { std::sync::atomic::AtomicU64::from_ptr(p.add(i).cast()).load(Ordering::Relaxed) }
}

/// See [`load32`].
#[inline]
unsafe fn store32(p: *mut i32, i: usize, v: u32) {
    unsafe { std::sync::atomic::AtomicU32::from_ptr(p.add(i).cast()).store(v, Ordering::Relaxed) }
}

/// See [`load32`].
#[inline]
unsafe fn store64(p: *mut i64, i: usize, v: u64) {
    unsafe { std::sync::atomic::AtomicU64::from_ptr(p.add(i).cast()).store(v, Ordering::Relaxed) }
}

impl<'p> SharedPool<'p> {
    /// Snapshot every buffer of `pool` into a shareable view.
    pub fn new(pool: &'p mut MemoryPool) -> SharedPool<'p> {
        let bufs = pool
            .buffers_mut()
            .iter_mut()
            .map(|data| {
                let len = data.len();
                let ptr = match data {
                    DataVec::F32(v) => BufPtr::F32(v.as_mut_ptr()),
                    DataVec::F64(v) => BufPtr::F64(v.as_mut_ptr()),
                    DataVec::I32(v) => BufPtr::I32(v.as_mut_ptr()),
                    DataVec::I64(v) => BufPtr::I64(v.as_mut_ptr()),
                };
                SharedBuf { ptr, len }
            })
            .collect();
        SharedPool {
            bufs,
            _pool: PhantomData,
        }
    }

    #[inline]
    fn buf(&self, id: MemId, index: i64) -> (SharedBuf, usize) {
        let b = self.bufs[id.0 as usize];
        let i = index as usize;
        assert!(
            i < b.len,
            "device memory access out of bounds: index {index} of buffer {} (len {})",
            id.0,
            b.len
        );
        (b, i)
    }

    /// Load one element (same typing rules as [`DataVec::get`]).
    #[inline]
    pub fn load(&self, id: MemId, index: i64) -> RtValue {
        let (b, i) = self.buf(id, index);
        // SAFETY: `i` is in bounds, the storage outlives `self`, and all
        // concurrent access goes through these atomic helpers.
        unsafe {
            match b.ptr {
                BufPtr::F32(p) => RtValue::F32(f32::from_bits(load32(p.cast(), i))),
                BufPtr::F64(p) => RtValue::F64(f64::from_bits(load64(p.cast(), i))),
                BufPtr::I32(p) => RtValue::Int(load32(p, i) as i32 as i64),
                BufPtr::I64(p) => RtValue::Int(load64(p, i) as i64),
            }
        }
    }

    /// Store one element (same coercions and mismatch panic as
    /// [`DataVec::set`]).
    #[inline]
    pub fn store(&self, id: MemId, index: i64, value: RtValue) {
        let (b, i) = self.buf(id, index);
        // SAFETY: `i` is in bounds, the storage outlives `self`, and all
        // concurrent access goes through these atomic helpers.
        unsafe {
            match (b.ptr, value) {
                (BufPtr::F32(p), RtValue::F32(x)) => store32(p.cast(), i, x.to_bits()),
                (BufPtr::F32(p), RtValue::F64(x)) => store32(p.cast(), i, (x as f32).to_bits()),
                (BufPtr::F64(p), RtValue::F64(x)) => store64(p.cast(), i, x.to_bits()),
                (BufPtr::F64(p), RtValue::F32(x)) => store64(p.cast(), i, (x as f64).to_bits()),
                (BufPtr::I32(p), RtValue::Int(x)) => store32(p, i, x as i32 as u32),
                (BufPtr::I64(p), RtValue::Int(x)) => store64(p, i, x as u64),
                (slot, v) => panic!("type-mismatched store of {v:?} into {slot:?}"),
            }
        }
    }

    /// Element size in bytes (drives transaction coalescing).
    #[inline]
    pub fn elem_bytes(&self, id: MemId) -> usize {
        match self.bufs[id.0 as usize].ptr {
            BufPtr::F32(_) | BufPtr::I32(_) => 4,
            BufPtr::F64(_) | BufPtr::I64(_) => 8,
        }
    }
}

// ----------------------------------------------------------------------
// PlanPool: shared view + worker-private arena
// ----------------------------------------------------------------------

/// The memory interface of one plan-engine worker: launch-shared buffers
/// plus a private arena for allocations made during execution. Arena
/// [`MemId`]s carry [`ARENA_BIT`]; allocation results can never escape to
/// other workers (memrefs are not storable values), so the split is
/// invisible to kernels.
pub struct PlanPool<'a, 'p> {
    shared: &'a SharedPool<'p>,
    arena: MemoryPool,
}

impl<'a, 'p> PlanPool<'a, 'p> {
    pub fn new(shared: &'a SharedPool<'p>) -> PlanPool<'a, 'p> {
        PlanPool {
            shared,
            arena: MemoryPool::new(),
        }
    }

    /// Allocate `data` in the worker arena.
    pub fn alloc(&mut self, data: DataVec) -> MemId {
        let id = self.arena.alloc(data);
        MemId(id.0 | ARENA_BIT)
    }

    /// Allocate zero-filled arena storage for `len` elements of `elem`.
    pub fn alloc_zeroed(&mut self, elem: &sycl_mlir_ir::Type, len: usize) -> MemId {
        let id = self.arena.alloc_zeroed(elem, len);
        MemId(id.0 | ARENA_BIT)
    }

    #[inline]
    pub fn load(&self, id: MemId, index: i64) -> RtValue {
        if id.0 & ARENA_BIT != 0 {
            self.arena.load(MemId(id.0 & !ARENA_BIT), index)
        } else {
            self.shared.load(id, index)
        }
    }

    #[inline]
    pub fn store(&mut self, id: MemId, index: i64, value: RtValue) {
        if id.0 & ARENA_BIT != 0 {
            self.arena.store(MemId(id.0 & !ARENA_BIT), index, value);
        } else {
            self.shared.store(id, index, value);
        }
    }

    #[inline]
    pub fn elem_bytes(&self, id: MemId) -> usize {
        if id.0 & ARENA_BIT != 0 {
            self.arena.data(MemId(id.0 & !ARENA_BIT)).elem_bytes()
        } else {
            self.shared.elem_bytes(id)
        }
    }
}

/// Per-worker execution context of the plan engine: the memory interface,
/// the cost model, locally accumulated statistics and the per-work-group
/// coalescing tracker. The plan engine needs no IR access at run time, so
/// (unlike the tree-walk [`crate::interp::ExecCtx`]) this context carries
/// no `&Module` — which is what lets it cross thread boundaries.
pub struct PlanExecCtx<'a, 'p> {
    pub pool: PlanPool<'a, 'p>,
    pub cost: &'a CostModel,
    pub stats: ExecStats,
    pub wg: WorkGroupCtx,
}

impl<'a, 'p> PlanExecCtx<'a, 'p> {
    pub fn new(shared: &'a SharedPool<'p>, cost: &'a CostModel) -> PlanExecCtx<'a, 'p> {
        PlanExecCtx {
            pool: PlanPool::new(shared),
            cost,
            stats: ExecStats::default(),
            wg: WorkGroupCtx::default(),
        }
    }

    /// Reset work-group-shared state (call between work-groups).
    pub fn next_work_group(&mut self) {
        self.wg.reset();
    }
}

// ----------------------------------------------------------------------
// The persistent worker pool
// ----------------------------------------------------------------------

/// A lifetime-erased job: a trampoline plus a pointer to the launch state
/// it operates on. The submitting launch keeps that state alive until its
/// completion latch reports every job finished, which is what makes the
/// erasure sound.
struct RawJob {
    run: unsafe fn(*const ()),
    ctx: *const (),
}

// SAFETY: the pointee is a `LaunchState` whose referents are `Sync`; the
// submitting thread blocks until the job completes.
unsafe impl Send for RawJob {}

struct PoolState {
    queue: VecDeque<RawJob>,
    spawned: usize,
}

/// The process-wide pool of simulator worker threads. Workers are spawned
/// lazily up to the largest worker count any launch has requested and then
/// parked on a condvar between launches — per-launch cost is a queue push
/// and a wakeup instead of an OS thread spawn (which dominates wall time
/// for the evaluation's many small launches).
struct WorkerPool {
    state: Mutex<PoolState>,
    available: Condvar,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

fn pool() -> &'static WorkerPool {
    POOL.get_or_init(|| WorkerPool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            spawned: 0,
        }),
        available: Condvar::new(),
    })
}

/// Grow the pool to at least `n` workers.
fn ensure_workers(n: usize) {
    let p = pool();
    let mut st = p.state.lock().unwrap();
    while st.spawned < n {
        st.spawned += 1;
        std::thread::Builder::new()
            .name(format!("sim-worker-{}", st.spawned))
            .spawn(worker_main)
            .expect("failed to spawn simulator worker thread");
    }
}

/// Body of a pool worker: sleep until a job arrives, run it, repeat. The
/// trampoline never unwinds (panics are caught and transported by the
/// launch state), so a worker survives any number of launches.
fn worker_main() {
    let p = pool();
    loop {
        let job = {
            let mut st = p.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                st = p.available.wait(st).unwrap();
            }
        };
        // SAFETY: the submitting launch keeps `job.ctx` alive until its
        // latch observes this job's completion.
        unsafe { (job.run)(job.ctx) };
    }
}

// ----------------------------------------------------------------------
// The work-group scheduler
// ----------------------------------------------------------------------

/// One worker's outcome: its accumulated counters and the first failing
/// work-group it observed (linear group index + error).
struct WorkerResult {
    stats: ExecStats,
    error: Option<(usize, SimError)>,
}

/// Everything a launch shares with its pool jobs. Lives on the launching
/// thread's stack for the duration of [`run_plan_launch`]; the completion
/// latch guarantees no job outlives it.
struct LaunchState<'a, 'p> {
    plan: &'a KernelPlan,
    args: &'a [RtValue],
    nd: NdRangeSpec,
    groups: [i64; 3],
    total: usize,
    shared: &'a SharedPool<'p>,
    cost: &'a CostModel,
    next: AtomicUsize,
    abort: AtomicBool,
    results: Mutex<Vec<WorkerResult>>,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion latch: (jobs still running, wakeup for the launcher).
    latch: (Mutex<usize>, Condvar),
}

impl LaunchState<'_, '_> {
    /// Run one worker loop against this launch, recording the outcome.
    /// Never unwinds.
    fn run_worker(&self) {
        let outcome = catch_unwind(AssertUnwindSafe(|| worker_loop(self)));
        match outcome {
            Ok(result) => self.results.lock().unwrap().push(result),
            Err(payload) => {
                // A panicking work-item (out-of-bounds access, type-
                // mismatched store): park the payload for the launcher to
                // re-throw, mirroring the sequential engine.
                self.abort.store(true, Ordering::Relaxed);
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
        let mut left = self.latch.0.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.latch.1.notify_all();
        }
    }
}

/// Pool-job trampoline.
///
/// # Safety
///
/// `ctx` must point to a live [`LaunchState`] that stays alive until the
/// state's latch observes this job's completion.
unsafe fn launch_job(ctx: *const ()) {
    let state = unsafe { &*(ctx as *const LaunchState<'_, '_>) };
    state.run_worker();
}

/// Group coordinates of linear index `idx` (row-major over `groups`, the
/// same order the sequential engine iterates).
#[inline]
fn group_of(groups: [i64; 3], idx: usize) -> [i64; 3] {
    let idx = idx as i64;
    let g2 = idx % groups[2];
    let rest = idx / groups[2];
    [rest / groups[1], rest % groups[1], g2]
}

/// Execute every work-item of one work-group to completion, honouring
/// barriers co-operatively.
fn run_group(
    plan: &KernelPlan,
    args: &[RtValue],
    nd: NdRangeSpec,
    group: [i64; 3],
    ctx: &mut PlanExecCtx<'_, '_>,
    pctx: &mut PlanCtx,
) -> Result<(), SimError> {
    let mut items: Vec<PlanWorkItem> = items_of_group(nd, group)
        .into_iter()
        .map(|item| PlanWorkItem::new(plan, args, item))
        .collect::<Result<_, _>>()?;
    cooperative_rounds(&mut items, group, |wi| wi.run(plan, ctx, pctx))
}

/// Claim-and-run loop of one worker thread.
fn worker_loop(launch: &LaunchState<'_, '_>) -> WorkerResult {
    let mut ctx = PlanExecCtx::new(launch.shared, launch.cost);
    let mut pctx = PlanCtx::new(launch.plan);
    let mut error = None;
    loop {
        if launch.abort.load(Ordering::Relaxed) {
            break;
        }
        let idx = launch.next.fetch_add(1, Ordering::Relaxed);
        if idx >= launch.total {
            break;
        }
        let group = group_of(launch.groups, idx);
        if let Err(e) = run_group(
            launch.plan,
            launch.args,
            launch.nd,
            group,
            &mut ctx,
            &mut pctx,
        ) {
            error = Some((idx, e));
            launch.abort.store(true, Ordering::Relaxed);
            break;
        }
        ctx.next_work_group();
        pctx.next_work_group();
    }
    WorkerResult {
        stats: ctx.stats,
        error,
    }
}

/// Execute a pre-decoded [`KernelPlan`] over `nd` on `threads` workers
/// (`<= 1` runs the same code on the calling thread; `> 1` enlists
/// `threads - 1` persistent pool workers alongside the calling thread).
/// Statistics are merged deterministically: results are bit-identical for
/// every worker count.
pub fn run_plan_launch(
    plan: &KernelPlan,
    args: &[RtValue],
    nd: NdRangeSpec,
    pool_mem: &mut MemoryPool,
    cost: &CostModel,
    threads: usize,
) -> Result<ExecStats, SimError> {
    nd.validate()?;
    let groups = nd.groups();
    let total = (groups[0] * groups[1] * groups[2]) as usize;
    let shared = SharedPool::new(pool_mem);
    // Never enlist more workers than there are work-groups.
    let workers = threads.max(1).min(total.max(1));

    let state = LaunchState {
        plan,
        args,
        nd,
        groups,
        total,
        shared: &shared,
        cost,
        next: AtomicUsize::new(0),
        abort: AtomicBool::new(false),
        results: Mutex::new(Vec::with_capacity(workers)),
        panic: Mutex::new(None),
        latch: (Mutex::new(workers), Condvar::new()),
    };

    if workers > 1 {
        ensure_workers(workers - 1);
        let p = pool();
        let mut st = p.state.lock().unwrap();
        for _ in 0..workers - 1 {
            st.queue.push_back(RawJob {
                run: launch_job,
                ctx: &state as *const LaunchState<'_, '_> as *const (),
            });
        }
        drop(st);
        p.available.notify_all();
    }
    // The calling thread is always worker 0. `run_worker` catches panics,
    // so the latch below is reached (and the pool jobs drained) even when
    // a work-item panics.
    state.run_worker();

    // Wait until every enlisted worker has finished; only then may `state`
    // (and the raw pointers handed to the pool) go out of scope.
    {
        let mut left = state.latch.0.lock().unwrap();
        while *left > 0 {
            left = state.latch.1.wait(left).unwrap();
        }
    }
    if let Some(payload) = state.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }

    let mut stats = ExecStats::default();
    let mut first_error: Option<(usize, SimError)> = None;
    for r in state.results.into_inner().unwrap() {
        stats.add(&r.stats);
        if let Some((idx, e)) = r.error {
            if first_error.as_ref().is_none_or(|(fi, _)| idx < *fi) {
                first_error = Some((idx, e));
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    stats.work_groups = total as u64;
    stats.work_items = nd.work_items() as u64;
    stats.charge(cost);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_linearization_matches_sequential_order() {
        let groups = [2_i64, 3, 4];
        let mut expect = Vec::new();
        for g0 in 0..groups[0] {
            for g1 in 0..groups[1] {
                for g2 in 0..groups[2] {
                    expect.push([g0, g1, g2]);
                }
            }
        }
        let got: Vec<[i64; 3]> = (0..expect.len()).map(|i| group_of(groups, i)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn shared_pool_roundtrip_and_arena_routing() {
        let mut pool = MemoryPool::new();
        let f = pool.alloc(DataVec::F32(vec![0.0; 4]));
        let l = pool.alloc(DataVec::I64(vec![0; 2]));
        {
            let shared = SharedPool::new(&mut pool);
            let mut pp = PlanPool::new(&shared);
            pp.store(f, 1, RtValue::F32(1.5));
            pp.store(l, 0, RtValue::Int(-3));
            assert_eq!(pp.load(f, 1), RtValue::F32(1.5));
            assert_eq!(pp.load(l, 0), RtValue::Int(-3));
            assert_eq!(pp.elem_bytes(f), 4);
            assert_eq!(pp.elem_bytes(l), 8);

            // Arena allocations are tagged and never alias shared ids.
            let a = pp.alloc(DataVec::I32(vec![7; 3]));
            assert_ne!(a.0 & ARENA_BIT, 0);
            pp.store(a, 2, RtValue::Int(9));
            assert_eq!(pp.load(a, 2), RtValue::Int(9));
            assert_eq!(pp.load(a, 0), RtValue::Int(7));
        }
        // Writes through the shared view landed in the original pool.
        assert_eq!(pool.load(f, 1), RtValue::F32(1.5));
        assert_eq!(pool.load(l, 0), RtValue::Int(-3));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shared_pool_bounds_checked() {
        let mut pool = MemoryPool::new();
        let f = pool.alloc(DataVec::F32(vec![0.0; 2]));
        let shared = SharedPool::new(&mut pool);
        shared.load(f, 5);
    }
}
