//! Parallel work-group execution: shared memory views, per-worker arenas
//! and the std::thread work-group scheduler.
//!
//! The work-group axis of an ND-range launch is embarrassingly parallel —
//! SYCL guarantees work-groups are independent (no barriers span groups,
//! and cross-group data races are undefined behaviour in the source
//! program). This module exploits that: work-groups are distributed over a
//! pool of OS threads, each running its groups' work-items co-operatively
//! exactly like the sequential engine.
//!
//! Three pieces make that safe and **deterministic**:
//!
//! * [`SharedPool`] — a launch-scoped view of the pre-existing device
//!   buffers (accessor-backed global memory). Element loads/stores go
//!   through raw typed pointers with bounds checks, so concurrent access
//!   from many worker threads needs no locking. Distinct work-groups of a
//!   well-formed kernel touch disjoint elements; a kernel that races with
//!   itself is broken on real hardware too.
//! * [`PlanPool`] — the memory interface handed to the plan executor: the
//!   shared view plus two **worker-private arenas** for allocations made
//!   during execution — a persistent pool for dense-constant
//!   materializations and a recycling scratch arena for allocas
//!   (private `memref.alloca`, work-group `sycl.local.alloca`), rewound
//!   at every work-group boundary so repeated allocas reuse storage
//!   instead of growing the heap. Workers never mutate shared allocation
//!   tables, so there is no allocation lock; the top two bits of a
//!   [`MemId`] route accesses to the right side.
//! * [`run_plan_graph`] — the **out-of-order scheduler**, over a whole
//!   launch graph: kernel launches plus the hazard DAG ordering them
//!   ([`LaunchDag`]; [`run_plan_batch`] is the edge-free special case and
//!   a single launch, [`run_plan_launch`], the graph of one). Each launch
//!   carries an atomic remaining-dependency counter; the worker that
//!   retires a launch's last work-group decrements its successors'
//!   counters and publishes newly-ready launches to a shared ready set —
//!   no level barrier anywhere. The ready set drains longest critical
//!   path first by default ([`SchedPolicy::CritPath`]; `Fifo` is the A/B
//!   baseline) — ordering only moves wall time, never results. Host
//!   tasks join the same graph as [`HostNode`]s: single-group launches
//!   whose closure runs on a pool worker under the same hazard,
//!   metering and cancellation rules as kernels. Work-groups are claimed
//!   in per-worker **chunks** (adaptive to the launch's group count) so
//!   cursor contention stays low even for many tiny groups. Workers
//!   accumulate
//!   [`ExecStats`] locally per launch and the per-worker counters are
//!   summed per launch after the join. Every counter is an integer total
//!   over work-groups and the coalescing tracker resets per group, so
//!   the merged statistics — and the cycle model charged from them — are
//!   bit-identical for any worker count, schedule and interleaving.
//!
//! Determinism of errors: every failing work-group (simulator error or
//! panic) is recorded with its `(launch, group)` position and the
//! lexicographically smallest one is reported — exactly the failure
//! submission-order serial execution hits first, under every thread count
//! and schedule (see [`run_plan_graph`] for why the minimum is always
//! executed).

use crate::cost::{CostModel, ExecStats};
use crate::device::{cooperative_rounds, cooperative_rounds_uniform, items_of_group, NdRangeSpec};
use crate::interp::{LimitKind, SimError, WorkGroupCtx};
use crate::jit::{run_group_jit, JitScratch};
use crate::limits::{ExecLimits, FaultSite, OpMeter};
use crate::memory::{dtype_of, dtype_of_data, zeroed_data, DataVec, MemId, MemoryPool};
use crate::plan::{KernelPlan, PlanCtx, PlanWorkItem};
use crate::value::RtValue;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Tag bit distinguishing worker-arena allocations from launch-shared
/// buffers in a [`MemId`].
const ARENA_BIT: u32 = 1 << 31;

/// Second tag bit (under [`ARENA_BIT`]): set for the worker's persistent
/// dense-constant pool, clear for the per-work-group scratch arena.
const CONST_BIT: u32 = 1 << 30;

// ----------------------------------------------------------------------
// SharedPool: lock-free views of the pre-launch buffers
// ----------------------------------------------------------------------

/// Typed base pointer of one shared buffer.
#[derive(Clone, Copy, Debug)]
enum BufPtr {
    F32(*mut f32),
    F64(*mut f64),
    I32(*mut i32),
    I64(*mut i64),
}

/// One shared buffer: its element pointer and length.
#[derive(Clone, Copy, Debug)]
struct SharedBuf {
    ptr: BufPtr,
    len: usize,
}

/// A launch-scoped, concurrently accessible view of every buffer that
/// existed in the [`MemoryPool`] when the launch started.
///
/// Construction borrows the pool mutably for the whole launch, so no other
/// code can observe or resize the buffers while workers hold raw pointers
/// into them. Element accesses are bounds-checked and panic like the
/// sequential `Vec` indexing they replace, and go through per-element
/// **relaxed atomics** (free on mainstream targets — they compile to the
/// plain loads/stores they replace): a simulated kernel that races with
/// itself across work-groups reads torn-by-element but well-defined
/// values, like on the GPU, instead of being undefined behaviour in the
/// host process.
pub struct SharedPool<'p> {
    bufs: Vec<SharedBuf>,
    _pool: PhantomData<&'p mut MemoryPool>,
}

// SAFETY: the raw pointers reference buffers exclusively borrowed for the
// lifetime `'p`; the view never grows or shrinks them, and every element
// access is atomic (no mixed atomic/non-atomic access while the view is
// alive, since the borrow keeps all safe `MemoryPool` APIs unreachable).
unsafe impl Send for SharedPool<'_> {}
unsafe impl Sync for SharedPool<'_> {}

/// Relaxed atomic element load through a raw pointer.
///
/// # Safety
///
/// `p.add(i)` must be in bounds of a live, properly aligned allocation
/// with no concurrent non-atomic access.
#[inline]
unsafe fn load32(p: *mut i32, i: usize) -> u32 {
    unsafe { std::sync::atomic::AtomicU32::from_ptr(p.add(i).cast()).load(Ordering::Relaxed) }
}

/// See [`load32`].
#[inline]
unsafe fn load64(p: *mut i64, i: usize) -> u64 {
    unsafe { std::sync::atomic::AtomicU64::from_ptr(p.add(i).cast()).load(Ordering::Relaxed) }
}

/// See [`load32`].
#[inline]
unsafe fn store32(p: *mut i32, i: usize, v: u32) {
    unsafe { std::sync::atomic::AtomicU32::from_ptr(p.add(i).cast()).store(v, Ordering::Relaxed) }
}

/// See [`load32`].
#[inline]
unsafe fn store64(p: *mut i64, i: usize, v: u64) {
    unsafe { std::sync::atomic::AtomicU64::from_ptr(p.add(i).cast()).store(v, Ordering::Relaxed) }
}

impl<'p> SharedPool<'p> {
    /// Snapshot every buffer of `pool` into a shareable view.
    pub fn new(pool: &'p mut MemoryPool) -> SharedPool<'p> {
        let bufs = pool
            .buffers_mut()
            .iter_mut()
            .map(|data| {
                let len = data.len();
                let ptr = match data {
                    DataVec::F32(v) => BufPtr::F32(v.as_mut_ptr()),
                    DataVec::F64(v) => BufPtr::F64(v.as_mut_ptr()),
                    DataVec::I32(v) => BufPtr::I32(v.as_mut_ptr()),
                    DataVec::I64(v) => BufPtr::I64(v.as_mut_ptr()),
                };
                SharedBuf { ptr, len }
            })
            .collect();
        SharedPool {
            bufs,
            _pool: PhantomData,
        }
    }

    #[inline]
    fn buf(&self, id: MemId, index: i64) -> (SharedBuf, usize) {
        let b = self.bufs[id.0 as usize];
        let i = index as usize;
        assert!(
            i < b.len,
            "device memory access out of bounds: index {index} of buffer {} (len {})",
            id.0,
            b.len
        );
        (b, i)
    }

    /// Load one element (same typing rules as [`DataVec::get`]).
    #[inline]
    pub fn load(&self, id: MemId, index: i64) -> RtValue {
        let (b, i) = self.buf(id, index);
        // SAFETY: `i` is in bounds, the storage outlives `self`, and all
        // concurrent access goes through these atomic helpers.
        unsafe {
            match b.ptr {
                BufPtr::F32(p) => RtValue::F32(f32::from_bits(load32(p.cast(), i))),
                BufPtr::F64(p) => RtValue::F64(f64::from_bits(load64(p.cast(), i))),
                BufPtr::I32(p) => RtValue::Int(load32(p, i) as i32 as i64),
                BufPtr::I64(p) => RtValue::Int(load64(p, i) as i64),
            }
        }
    }

    /// Store one element (same coercions and mismatch panic as
    /// [`DataVec::set`]).
    #[inline]
    pub fn store(&self, id: MemId, index: i64, value: RtValue) {
        let (b, i) = self.buf(id, index);
        // SAFETY: `i` is in bounds, the storage outlives `self`, and all
        // concurrent access goes through these atomic helpers.
        unsafe {
            match (b.ptr, value) {
                (BufPtr::F32(p), RtValue::F32(x)) => store32(p.cast(), i, x.to_bits()),
                (BufPtr::F32(p), RtValue::F64(x)) => store32(p.cast(), i, (x as f32).to_bits()),
                (BufPtr::F64(p), RtValue::F64(x)) => store64(p.cast(), i, x.to_bits()),
                (BufPtr::F64(p), RtValue::F32(x)) => store64(p.cast(), i, (x as f64).to_bits()),
                (BufPtr::I32(p), RtValue::Int(x)) => store32(p, i, x as i32 as u32),
                (BufPtr::I64(p), RtValue::Int(x)) => store64(p, i, x as u64),
                (slot, v) => panic!("type-mismatched store of {v:?} into {slot:?}"),
            }
        }
    }

    /// [`Self::load`] minus the bounds check, for sites the decode-time
    /// verifier proved in-bounds.
    ///
    /// The in-bounds contract is established by
    /// [`crate::verify::PlanFacts::instantiate`], which only sets a
    /// site's proven bit after evaluating the site's symbolic address
    /// bounds against this launch's actual geometry, arguments and
    /// buffer lengths; debug builds re-assert it.
    #[inline]
    pub fn load_unchecked(&self, id: MemId, index: i64) -> RtValue {
        let b = self.bufs[id.0 as usize];
        let i = index as usize;
        debug_assert!(
            i < b.len,
            "proven-safe load out of bounds: index {index} of buffer {} (len {})",
            id.0,
            b.len
        );
        // SAFETY: `i < b.len` is guaranteed by the instantiated site
        // proof (re-checked above in debug builds), the storage outlives
        // `self`, and all concurrent access goes through these atomic
        // helpers.
        unsafe {
            match b.ptr {
                BufPtr::F32(p) => RtValue::F32(f32::from_bits(load32(p.cast(), i))),
                BufPtr::F64(p) => RtValue::F64(f64::from_bits(load64(p.cast(), i))),
                BufPtr::I32(p) => RtValue::Int(load32(p, i) as i32 as i64),
                BufPtr::I64(p) => RtValue::Int(load64(p, i) as i64),
            }
        }
    }

    /// [`Self::store`] minus the bounds check (same proven-site contract
    /// as [`Self::load_unchecked`]); the type-mismatch panic is kept
    /// verbatim — the verifier does not prove element types.
    #[inline]
    pub fn store_unchecked(&self, id: MemId, index: i64, value: RtValue) {
        let b = self.bufs[id.0 as usize];
        let i = index as usize;
        debug_assert!(
            i < b.len,
            "proven-safe store out of bounds: index {index} of buffer {} (len {})",
            id.0,
            b.len
        );
        // SAFETY: as in `load_unchecked`.
        unsafe {
            match (b.ptr, value) {
                (BufPtr::F32(p), RtValue::F32(x)) => store32(p.cast(), i, x.to_bits()),
                (BufPtr::F32(p), RtValue::F64(x)) => store32(p.cast(), i, (x as f32).to_bits()),
                (BufPtr::F64(p), RtValue::F64(x)) => store64(p.cast(), i, x.to_bits()),
                (BufPtr::F64(p), RtValue::F32(x)) => store64(p.cast(), i, (x as f64).to_bits()),
                (BufPtr::I32(p), RtValue::Int(x)) => store32(p, i, x as i32 as u32),
                (BufPtr::I64(p), RtValue::Int(x)) => store64(p, i, x as u64),
                (slot, v) => panic!("type-mismatched store of {v:?} into {slot:?}"),
            }
        }
    }

    /// Element size in bytes (drives transaction coalescing).
    #[inline]
    pub fn elem_bytes(&self, id: MemId) -> usize {
        match self.bufs[id.0 as usize].ptr {
            BufPtr::F32(_) | BufPtr::I32(_) => 4,
            BufPtr::F64(_) | BufPtr::I64(_) => 8,
        }
    }

    /// Number of elements of buffer `id`.
    #[inline]
    pub fn len(&self, id: MemId) -> usize {
        self.bufs[id.0 as usize].len
    }

    /// Element type name of buffer `id` (`"f32"`, `"f64"`, `"i32"` or
    /// `"i64"`) — what host-task closures key their typed loops (and
    /// their mismatch diagnostics) on.
    #[inline]
    pub fn dtype_name(&self, id: MemId) -> &'static str {
        match self.bufs[id.0 as usize].ptr {
            BufPtr::F32(_) => "f32",
            BufPtr::F64(_) => "f64",
            BufPtr::I32(_) => "i32",
            BufPtr::I64(_) => "i64",
        }
    }
}

// ----------------------------------------------------------------------
// PlanPool: shared view + worker-private arenas
// ----------------------------------------------------------------------

/// A recycling allocator for per-execution allocations (private
/// `memref.alloca`, work-group `sycl.local.alloca`).
///
/// Kernels re-execute the same allocation sites for every work-item of
/// every work-group, so instead of growing a fresh buffer per execution
/// (the PR 2 behaviour — one heap allocation per dynamic alloca for the
/// whole launch), the arena keeps its buffers and a cursor: a reset (at
/// every work-group boundary) rewinds the cursor, and subsequent
/// allocations re-zero the existing buffer in place (a memset, no
/// malloc/free) whenever type and length match — which they always do
/// after the first group, since the allocation sequence of a kernel is
/// deterministic. Resetting between groups is sound because memrefs are
/// not storable values: no allocation can outlive its work-group.
#[derive(Default)]
struct ScratchArena {
    bufs: Vec<DataVec>,
    cursor: usize,
}

impl ScratchArena {
    /// Bytes of *new* storage the next [`ScratchArena::alloc_zeroed`] of
    /// `(elem, len)` would create: zero when the buffer at the cursor is
    /// recycled in place, the new buffer's size otherwise. This is what a
    /// memory cap meters — steady-state recycling is free, only growth
    /// (or a reshaping replacement) counts.
    fn growth_of(&self, elem: &sycl_mlir_ir::Type, len: usize) -> u64 {
        if let Some(buf) = self.bufs.get(self.cursor) {
            if buf.len() == len && dtype_of_data(buf) == dtype_of(elem) {
                return 0;
            }
        }
        let eb = match dtype_of(elem) {
            crate::memory::Dtype::F32 | crate::memory::Dtype::I32 => 4_u64,
            crate::memory::Dtype::F64 | crate::memory::Dtype::I64 => 8_u64,
        };
        (len as u64).saturating_mul(eb)
    }

    /// Arena-local index of zero-filled storage for `len` elements of
    /// `elem`, recycling the buffer at the cursor when it matches.
    fn alloc_zeroed(&mut self, elem: &sycl_mlir_ir::Type, len: usize) -> u32 {
        let dt = dtype_of(elem);
        let idx = self.cursor;
        self.cursor += 1;
        if let Some(buf) = self.bufs.get_mut(idx) {
            if buf.len() == len && dtype_of_data(buf) == dt {
                match buf {
                    DataVec::F32(v) => v.fill(0.0),
                    DataVec::F64(v) => v.fill(0.0),
                    DataVec::I32(v) => v.fill(0),
                    DataVec::I64(v) => v.fill(0),
                }
            } else {
                *buf = zeroed_data(dt, len);
            }
        } else {
            self.bufs.push(zeroed_data(dt, len));
        }
        idx as u32
    }

    /// Rewind the cursor; buffers are kept for recycling.
    fn reset(&mut self) {
        self.cursor = 0;
    }

    #[inline]
    fn buf(&self, idx: u32) -> &DataVec {
        &self.bufs[idx as usize]
    }

    #[inline]
    fn buf_mut(&mut self, idx: u32) -> &mut DataVec {
        &mut self.bufs[idx as usize]
    }
}

/// The memory interface of one plan-engine worker: launch-shared buffers
/// plus two private arenas for allocations made during execution — a
/// persistent pool for dense-constant materializations (they are cached
/// across work-groups and launches) and a recycling scratch arena for allocas,
/// recycled at every work-group boundary. Arena [`MemId`]s carry
/// a private tag bit (plus a second one for the persistent side); allocation
/// results can never escape to other workers (memrefs are not storable
/// values), so the split is invisible to kernels.
pub struct PlanPool<'a, 'p> {
    shared: &'a SharedPool<'p>,
    consts: MemoryPool,
    scratch: ScratchArena,
    /// Bytes of arena *growth* this worker may still allocate
    /// (`u64::MAX` = uncapped). Steady-state scratch recycling is free;
    /// only new or reshaped storage is charged, so a well-behaved kernel
    /// running many work-groups never trips the cap.
    mem_left: u64,
}

/// Bounds check for kernel-private (alloca) buffers, panicking with the
/// same prefix as the shared-buffer check so the failure classifier in
/// the scheduler converts it into a structured error.
#[inline]
fn check_scratch(buf: &DataVec, index: i64) {
    let len = buf.len();
    assert!(
        index >= 0 && (index as usize) < len,
        "device memory access out of bounds: index {index} of a kernel-private buffer (len {len})",
    );
}

impl<'a, 'p> PlanPool<'a, 'p> {
    /// A fresh pool (empty arenas) over `shared`.
    pub fn new(shared: &'a SharedPool<'p>) -> PlanPool<'a, 'p> {
        PlanPool {
            shared,
            consts: MemoryPool::new(),
            scratch: ScratchArena::default(),
            mem_left: u64::MAX,
        }
    }

    /// Cap further arena growth at `bytes` (see `mem_left`).
    pub fn set_mem_cap(&mut self, bytes: u64) {
        self.mem_left = bytes;
    }

    /// Allocate `data` in the worker's persistent constant pool (dense
    /// constants: survives work-group and launch boundaries). Fails with
    /// [`LimitKind::Memory`] when a memory cap is set and exhausted.
    pub fn alloc(&mut self, data: DataVec) -> Result<MemId, SimError> {
        if self.mem_left != u64::MAX {
            let bytes = (data.len() as u64).saturating_mul(data.elem_bytes() as u64);
            if bytes > self.mem_left {
                return Err(SimError::limit(LimitKind::Memory));
            }
            self.mem_left -= bytes;
        }
        let id = self.consts.alloc(data);
        Ok(MemId(id.0 | ARENA_BIT | CONST_BIT))
    }

    /// Allocate zero-filled scratch storage for `len` elements of `elem`
    /// (allocas: recycled at the next work-group boundary). Fails with
    /// [`LimitKind::Memory`] when a memory cap is set and the arena would
    /// have to grow past it.
    pub fn alloc_zeroed(
        &mut self,
        elem: &sycl_mlir_ir::Type,
        len: usize,
    ) -> Result<MemId, SimError> {
        if self.mem_left != u64::MAX {
            let grown = self.scratch.growth_of(elem, len);
            if grown > self.mem_left {
                return Err(SimError::limit(LimitKind::Memory));
            }
            self.mem_left -= grown;
        }
        Ok(MemId(self.scratch.alloc_zeroed(elem, len) | ARENA_BIT))
    }

    /// Load one element (shared buffers or either arena).
    #[inline]
    pub fn load(&self, id: MemId, index: i64) -> RtValue {
        if id.0 & ARENA_BIT != 0 {
            let idx = id.0 & !(ARENA_BIT | CONST_BIT);
            if id.0 & CONST_BIT != 0 {
                self.consts.load(MemId(idx), index)
            } else {
                let buf = self.scratch.buf(idx);
                check_scratch(buf, index);
                buf.get(index as usize)
            }
        } else {
            self.shared.load(id, index)
        }
    }

    /// Store one element (shared buffers or either arena).
    #[inline]
    pub fn store(&mut self, id: MemId, index: i64, value: RtValue) {
        if id.0 & ARENA_BIT != 0 {
            let idx = id.0 & !(ARENA_BIT | CONST_BIT);
            if id.0 & CONST_BIT != 0 {
                self.consts.store(MemId(idx), index, value);
            } else {
                let buf = self.scratch.buf_mut(idx);
                check_scratch(buf, index);
                buf.set(index as usize, value);
            }
        } else {
            self.shared.store(id, index, value);
        }
    }

    /// [`Self::load`] for a site whose in-bounds proof was instantiated
    /// for this launch. Shared buffers skip the bounds check; arena and
    /// constant-cache ids (never accessor-backed, so a proof cannot
    /// cover them) fall back to the fully checked path.
    #[inline]
    pub fn load_proven(&self, id: MemId, index: i64) -> RtValue {
        if id.0 & ARENA_BIT != 0 {
            self.load(id, index)
        } else {
            self.shared.load_unchecked(id, index)
        }
    }

    /// [`Self::store`] for a proven-safe site (see [`Self::load_proven`]).
    #[inline]
    pub fn store_proven(&mut self, id: MemId, index: i64, value: RtValue) {
        if id.0 & ARENA_BIT != 0 {
            self.store(id, index, value);
        } else {
            self.shared.store_unchecked(id, index, value);
        }
    }

    /// Element size in bytes (drives transaction coalescing).
    #[inline]
    pub fn elem_bytes(&self, id: MemId) -> usize {
        if id.0 & ARENA_BIT != 0 {
            let idx = id.0 & !(ARENA_BIT | CONST_BIT);
            if id.0 & CONST_BIT != 0 {
                self.consts.data(MemId(idx)).elem_bytes()
            } else {
                self.scratch.buf(idx).elem_bytes()
            }
        } else {
            self.shared.elem_bytes(id)
        }
    }

    /// Recycle the scratch arena (call between work-groups).
    pub(crate) fn next_work_group(&mut self) {
        self.scratch.reset();
    }
}

/// Per-worker execution context of the plan engine: the memory interface,
/// the cost model, locally accumulated statistics and the per-work-group
/// coalescing tracker. The plan engine needs no IR access at run time, so
/// (unlike the tree-walk [`crate::interp::ExecCtx`]) this context carries
/// no `&Module` — which is what lets it cross thread boundaries.
pub struct PlanExecCtx<'a, 'p> {
    /// The worker's memory interface (shared buffers + private arenas).
    pub pool: PlanPool<'a, 'p>,
    /// The cost model charged per dynamic event.
    pub cost: &'a CostModel,
    /// Statistics accumulated by this worker (merged after the join).
    pub stats: ExecStats,
    /// Per-work-group state (coalescing tracker).
    pub wg: WorkGroupCtx,
}

impl<'a, 'p> PlanExecCtx<'a, 'p> {
    /// A fresh worker context over `shared` with zeroed statistics.
    pub fn new(shared: &'a SharedPool<'p>, cost: &'a CostModel) -> PlanExecCtx<'a, 'p> {
        PlanExecCtx {
            pool: PlanPool::new(shared),
            cost,
            stats: ExecStats::default(),
            wg: WorkGroupCtx::default(),
        }
    }

    /// Reset work-group-shared state and recycle the scratch arena (call
    /// between work-groups).
    pub fn next_work_group(&mut self) {
        self.wg.reset();
        self.pool.next_work_group();
    }
}

// ----------------------------------------------------------------------
// The persistent worker pool
// ----------------------------------------------------------------------

/// A lifetime-erased job: a trampoline plus a pointer to the launch state
/// it operates on. The submitting launch keeps that state alive until its
/// completion latch reports every job finished, which is what makes the
/// erasure sound.
struct RawJob {
    run: unsafe fn(*const ()),
    ctx: *const (),
}

// SAFETY: the pointee is a `LaunchState` whose referents are `Sync`; the
// submitting thread blocks until the job completes.
unsafe impl Send for RawJob {}

struct PoolState {
    queue: VecDeque<RawJob>,
    spawned: usize,
}

/// The process-wide pool of simulator worker threads. Workers are spawned
/// lazily up to the largest worker count any launch has requested and then
/// parked on a condvar between launches — per-launch cost is a queue push
/// and a wakeup instead of an OS thread spawn (which dominates wall time
/// for the evaluation's many small launches).
struct WorkerPool {
    state: Mutex<PoolState>,
    available: Condvar,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

fn pool() -> &'static WorkerPool {
    POOL.get_or_init(|| WorkerPool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            spawned: 0,
        }),
        available: Condvar::new(),
    })
}

/// Grow the pool to at least `n` workers.
fn ensure_workers(n: usize) {
    let p = pool();
    let mut st = p.state.lock().unwrap();
    while st.spawned < n {
        st.spawned += 1;
        std::thread::Builder::new()
            .name(format!("sim-worker-{}", st.spawned))
            .spawn(worker_main)
            .expect("failed to spawn simulator worker thread");
    }
}

/// Body of a pool worker: sleep until a job arrives, run it, repeat. The
/// trampoline never unwinds (panics are caught and transported by the
/// launch state), so a worker survives any number of launches.
fn worker_main() {
    let p = pool();
    loop {
        let job = {
            let mut st = p.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                st = p.available.wait(st).unwrap();
            }
        };
        // SAFETY: the submitting launch keeps `job.ctx` alive until its
        // latch observes this job's completion.
        unsafe { (job.run)(job.ctx) };
    }
}

// ----------------------------------------------------------------------
// Launch dependency graphs
// ----------------------------------------------------------------------

/// The hazard DAG over a slice of launches: per-launch predecessor counts
/// and successor lists, indices parallel to the launch slice (for the
/// runtime's queue scheduler, submission order). Edges always point from
/// a smaller to a larger index in well-formed graphs (hazards respect
/// submission order), which is what makes them acyclic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LaunchDag {
    /// Number of incoming hazard edges per launch.
    pub preds: Vec<usize>,
    /// Outgoing hazard edges per launch (ascending target indices).
    pub succs: Vec<Vec<usize>>,
}

impl LaunchDag {
    /// A graph of `n` mutually independent launches (no edges).
    pub fn independent(n: usize) -> LaunchDag {
        LaunchDag {
            preds: vec![0; n],
            succs: vec![Vec::new(); n],
        }
    }

    /// A total order: launch `i` depends on launch `i - 1` — the
    /// submission-order serial schedule expressed as a graph.
    pub fn chain(n: usize) -> LaunchDag {
        let mut dag = LaunchDag::independent(n);
        for i in 1..n {
            dag.preds[i] = 1;
            dag.succs[i - 1].push(i);
        }
        dag
    }

    /// The graph over `n` launches with the given `(before, after)` edges
    /// (duplicates contribute duplicate counts and should be pre-deduped).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> LaunchDag {
        let mut dag = LaunchDag::independent(n);
        for &(i, j) in edges {
            dag.preds[j] += 1;
            dag.succs[i].push(j);
        }
        for s in &mut dag.succs {
            s.sort_unstable();
        }
        dag
    }

    /// Number of launches the graph ranges over.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Kahn's worklist over the graph: each node's longest-path level
    /// plus the number of nodes visited (`== len()` iff acyclic). The
    /// single traversal both [`LaunchDag::levels`] and
    /// [`LaunchDag::validate`] interpret, so the two can never disagree
    /// about what constitutes a cycle.
    fn kahn_levels(&self) -> (Vec<usize>, usize) {
        let n = self.len();
        let mut indeg = self.preds.clone();
        let mut level = vec![0_usize; n];
        let mut work: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0_usize;
        while let Some(u) = work.pop_front() {
            seen += 1;
            for &s in &self.succs[u] {
                level[s] = level[s].max(level[u] + 1);
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    work.push_back(s);
                }
            }
        }
        (level, seen)
    }

    /// Partition into **dependency levels** by longest path from a root:
    /// level `k` holds every launch all of whose predecessors sit in
    /// levels `< k`. Within a level, indices ascend. This is the leveled
    /// (batch-barrier) view of the graph — [`LaunchDag::level_barriers`]
    /// turns it back into edges.
    ///
    /// # Panics
    ///
    /// Debug-asserts acyclicity (hazard DAGs are acyclic by construction);
    /// nodes on a cycle would be dropped.
    pub fn levels(&self) -> Vec<Vec<usize>> {
        let (level, seen) = self.kahn_levels();
        debug_assert_eq!(seen, self.len(), "launch graph has a cycle");
        let depth = level.iter().copied().max().map_or(0, |d| d + 1);
        let mut levels = vec![Vec::new(); depth];
        for (i, &l) in level.iter().enumerate() {
            levels[l].push(i);
        }
        for l in &mut levels {
            l.sort_unstable();
        }
        levels
    }

    /// The level-barrier strengthening of this graph: every launch of
    /// level `k` depends on **every** launch of level `k - 1`. Running the
    /// strengthened graph through [`run_plan_graph`] reproduces the PR 3
    /// batch-by-batch schedule (drain a whole level, then start the next)
    /// inside the out-of-order executor — the `--overlap=off` debug path.
    pub fn level_barriers(&self) -> LaunchDag {
        let levels = self.levels();
        let mut dag = LaunchDag::independent(self.len());
        for w in levels.windows(2) {
            for &i in &w[0] {
                for &j in &w[1] {
                    dag.succs[i].push(j);
                    dag.preds[j] += 1;
                }
            }
        }
        for s in &mut dag.succs {
            s.sort_unstable();
        }
        dag
    }

    /// Structural validation against a launch count: lengths match, edge
    /// targets are in range, predecessor counts agree with the successor
    /// lists, and the graph is acyclic.
    fn validate(&self, n: usize) -> Result<(), SimError> {
        if self.preds.len() != n || self.succs.len() != n {
            return Err(SimError::msg(format!(
                "launch graph over {} launches given {} launches",
                self.preds.len(),
                n
            )));
        }
        let mut indeg = vec![0_usize; n];
        for (i, succ) in self.succs.iter().enumerate() {
            for &s in succ {
                if s >= n {
                    return Err(SimError::msg(format!(
                        "edge {i} -> {s} out of range ({n} launches)"
                    )));
                }
                indeg[s] += 1;
            }
        }
        if indeg != self.preds {
            return Err(SimError::msg(
                "predecessor counts disagree with successor lists",
            ));
        }
        // Kahn's walk visits every node iff the graph is acyclic. Safe to
        // run only now: it trusts `preds`, checked consistent above.
        let (_, seen) = self.kahn_levels();
        if seen != n {
            return Err(SimError::msg("launch graph has a cycle"));
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Host-task nodes
// ----------------------------------------------------------------------

/// Fixed weighted-operation cost charged per host node through the
/// launch's `OpMeter`: host closures are opaque to the instruction
/// meter, so each one pays this flat weight against the op budget (and
/// with it gets a deadline/cancellation poll and an honoured
/// `instr` fault site) before its closure runs.
pub const HOST_NODE_WEIGHT: u64 = 64;

/// A host-side view of the device memory the scheduler shares with its
/// workers: bounds-checked, typed element access to every buffer, with
/// the same coercions and mismatch panics as kernel stores. Host-task
/// closures ([`HostNode`]) receive one of these instead of raw buffer
/// references, so host work obeys the same hazard ordering — and the
/// same happens-before edges — as kernel launches.
pub struct HostView<'a, 'p> {
    shared: &'a SharedPool<'p>,
}

impl<'a, 'p> HostView<'a, 'p> {
    /// Wrap a shared pool view for host-closure access.
    pub fn new(shared: &'a SharedPool<'p>) -> HostView<'a, 'p> {
        HostView { shared }
    }

    /// Number of elements of buffer `id`.
    pub fn len(&self, id: MemId) -> usize {
        self.shared.len(id)
    }

    /// Load one element ([`SharedPool::load`] typing rules).
    pub fn load(&self, id: MemId, index: i64) -> RtValue {
        self.shared.load(id, index)
    }

    /// Store one element ([`SharedPool::store`] coercions and panics).
    pub fn store(&self, id: MemId, index: i64, value: RtValue) {
        self.shared.store(id, index, value)
    }

    /// Element size in bytes of buffer `id`.
    pub fn elem_bytes(&self, id: MemId) -> usize {
        self.shared.elem_bytes(id)
    }

    /// Element type name of buffer `id` (`"f32"`, `"f64"`, `"i32"` or
    /// `"i64"`).
    pub fn dtype_name(&self, id: MemId) -> &'static str {
        self.shared.dtype_name(id)
    }
}

/// A host task as a first-class launch-graph node: a closure over a
/// [`HostView`] that the worker pool runs as a single logical work-group.
/// Host nodes are hazard-tracked, metered (a flat [`HostNode::weight`]
/// against the op budget), cancellable and fault-injectable exactly like
/// kernel launches — replacing the old runtime behaviour of treating
/// every host task as a synchronization barrier that split the program
/// into separately scheduled segments.
#[derive(Clone)]
pub struct HostNode {
    run: HostFn,
    /// Weighted-operation cost charged through the `OpMeter` before
    /// the closure runs ([`HOST_NODE_WEIGHT`] by default).
    pub weight: u64,
}

/// The boxed closure a [`HostNode`] runs.
type HostFn = Arc<dyn Fn(&HostView<'_, '_>) -> Result<(), SimError> + Send + Sync>;

impl HostNode {
    /// A host node running `f`, charged at [`HOST_NODE_WEIGHT`].
    pub fn new<F>(f: F) -> HostNode
    where
        F: Fn(&HostView<'_, '_>) -> Result<(), SimError> + Send + Sync + 'static,
    {
        HostNode {
            run: Arc::new(f),
            weight: HOST_NODE_WEIGHT,
        }
    }

    /// Run the closure against a host view of the device memory.
    pub fn run(&self, view: &HostView<'_, '_>) -> Result<(), SimError> {
        (self.run)(view)
    }
}

impl std::fmt::Debug for HostNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostNode")
            .field("weight", &self.weight)
            .finish_non_exhaustive()
    }
}

// ----------------------------------------------------------------------
// The out-of-order launch scheduler
// ----------------------------------------------------------------------

/// Ready-set ordering policy of the out-of-order scheduler: which of the
/// currently eligible launches workers drain first. Ordering only moves
/// wall time — results, statistics and failure positions are
/// bit-identical under either policy (and any thread count), because
/// hazard edges alone order conflicting accesses and all per-launch
/// accounting is schedule-independent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// First-in-first-out publication order (the PR 5 behaviour, kept as
    /// the A/B baseline).
    Fifo,
    /// Longest critical path through the DAG first (precomputed as the
    /// work-group-weighted longest path to a sink; ties broken by the
    /// smaller submission index), so the launches gating the most
    /// downstream work start earliest.
    #[default]
    CritPath,
}

impl SchedPolicy {
    /// Parse a policy spelling (`fifo`, `critpath`/`crit-path`/`cp`);
    /// `None` for anything else.
    pub fn parse(s: &str) -> Option<SchedPolicy> {
        match s {
            "fifo" => Some(SchedPolicy::Fifo),
            "critpath" | "crit-path" | "cp" => Some(SchedPolicy::CritPath),
            _ => None,
        }
    }

    /// The policy's display name (`"fifo"` or `"critpath"`).
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::CritPath => "critpath",
        }
    }
}

/// The scheduler's ready set under a [`SchedPolicy`]: launches with all
/// dependencies retired and (possibly) unclaimed work-groups. Exhausted
/// entries are dropped lazily by `acquire` via the peek/pop pair, so
/// both shapes expose the same front-of-queue protocol.
enum ReadySet {
    /// Publication order.
    Fifo(VecDeque<usize>),
    /// Max-heap by `(critical path, smaller index wins ties)`.
    CritPath(BinaryHeap<(u64, Reverse<usize>)>),
}

impl ReadySet {
    fn new(policy: SchedPolicy) -> ReadySet {
        match policy {
            SchedPolicy::Fifo => ReadySet::Fifo(VecDeque::new()),
            SchedPolicy::CritPath => ReadySet::CritPath(BinaryHeap::new()),
        }
    }

    /// Publish launch `li` with critical-path length `cp`.
    fn push(&mut self, li: usize, cp: u64) {
        match self {
            ReadySet::Fifo(q) => q.push_back(li),
            ReadySet::CritPath(h) => h.push((cp, Reverse(li))),
        }
    }

    /// The launch the policy would hand out next, without removing it.
    fn peek(&self) -> Option<usize> {
        match self {
            ReadySet::Fifo(q) => q.front().copied(),
            ReadySet::CritPath(h) => h.peek().map(|&(_, Reverse(li))| li),
        }
    }

    /// Drop the front entry (after `peek` found it exhausted).
    fn pop(&mut self) {
        match self {
            ReadySet::Fifo(q) => {
                q.pop_front();
            }
            ReadySet::CritPath(h) => {
                h.pop();
            }
        }
    }
}

/// Per-launch critical-path lengths through `dag`: the longest
/// work-group-weighted path from each node to a sink, the priority key
/// of [`SchedPolicy::CritPath`]. Empty launches (and single-group host
/// nodes) weigh 1 so a chain of them still orders ahead of isolated
/// leaves. Processes nodes in decreasing Kahn level, so every
/// successor's length is final before its predecessors read it.
fn critical_paths(dag: &LaunchDag, geometry: &[([i64; 3], usize)]) -> Vec<u64> {
    let (level, _) = dag.kahn_levels();
    let n = dag.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by_key(|&i| Reverse(level[i]));
    let mut cp = vec![0_u64; n];
    for &u in &order {
        let tail = dag.succs[u].iter().map(|&s| cp[s]).max().unwrap_or(0);
        cp[u] = (geometry[u].1.max(1) as u64).saturating_add(tail);
    }
    cp
}

/// One launch of a graph handed to [`run_plan_graph`] (or of a batch
/// handed to [`run_plan_batch`]): either a decoded kernel plan with its
/// bound arguments and geometry, or a [`HostNode`] (a host task running
/// as a single logical work-group). Exactly one of
/// [`PlanLaunch::plan`] / [`PlanLaunch::host`] is `Some`.
pub struct PlanLaunch<'a> {
    /// The decoded (possibly fused) kernel; `None` for host nodes.
    pub plan: Option<&'a KernelPlan>,
    /// Kernel arguments, excluding the trailing item parameter.
    pub args: &'a [RtValue],
    /// Launch geometry (a single 1×1 group for host nodes).
    pub nd: NdRangeSpec,
    /// Closure-JIT compilation of `plan`, when this launch runs on the
    /// closure tier (`None` executes the plan interpreter; both tiers are
    /// bit-identical, so this only selects the dispatch mechanism).
    pub jit: Option<&'a crate::jit::JitKernel>,
    /// The host closure, when this node is a host task.
    pub host: Option<&'a HostNode>,
    /// Static-analysis facts of `plan` from the decode-time verifier
    /// (`None` skips check elision; execution is bit-identical either
    /// way). Instantiated against this launch's concrete geometry and
    /// arguments before workers start.
    pub facts: Option<&'a crate::verify::PlanFacts>,
}

impl<'a> PlanLaunch<'a> {
    /// A kernel launch of `plan` over `nd` (plan-interpreter tier; set
    /// [`PlanLaunch::jit`] to select the closure tier).
    pub fn kernel(plan: &'a KernelPlan, args: &'a [RtValue], nd: NdRangeSpec) -> PlanLaunch<'a> {
        PlanLaunch {
            plan: Some(plan),
            args,
            nd,
            jit: None,
            host: None,
            facts: None,
        }
    }

    /// A host-task node: one logical 1×1 work-group running `node`.
    pub fn host(node: &'a HostNode) -> PlanLaunch<'a> {
        PlanLaunch {
            plan: None,
            args: &[],
            nd: NdRangeSpec::d1(1, 1),
            jit: None,
            host: Some(node),
            facts: None,
        }
    }
}

/// Per-launch scheduling state: geometry, claim cursor, retire counter
/// and the remaining-dependency counter driving the ready set.
struct GraphUnit<'a> {
    /// The decoded kernel (`None` for host nodes).
    plan: Option<&'a KernelPlan>,
    args: &'a [RtValue],
    nd: NdRangeSpec,
    /// Closure-tier compilation of `plan`, when the launch tiers up.
    jit: Option<&'a crate::jit::JitKernel>,
    /// The host closure, when this node is a host task.
    host: Option<&'a HostNode>,
    /// Per-site proven-in-bounds bitset, instantiated from the launch's
    /// [`crate::verify::PlanFacts`] against its concrete geometry and
    /// arguments (empty = every site takes the checked path).
    proven: Arc<[u64]>,
    /// Every barrier in the plan is statically uniform: workers may skip
    /// the per-group divergence bookkeeping (results are bit-identical —
    /// a statically-uniform barrier can never trip the divergence check).
    uniform: bool,
    /// Critical-path length through the DAG from this launch (the
    /// [`SchedPolicy::CritPath`] priority key).
    cp: u64,
    groups: [i64; 3],
    total: usize,
    /// Work-groups claimed per `fetch_add` (adaptive: large launches use
    /// bigger chunks so small launches keep fine-grained balancing).
    chunk: usize,
    /// Claim cursor: the next unclaimed linear work-group index.
    next: AtomicUsize,
    /// Work-groups not yet finished; the worker that takes it to zero
    /// retires the launch.
    unfinished: AtomicUsize,
    /// Predecessors not yet retired; the worker that takes it to zero
    /// publishes the launch to the ready set.
    remaining_deps: AtomicUsize,
    /// Smallest failing work-group of *this* launch (`u64::MAX` while
    /// clean). Groups at or beyond it are skipped — pruning is per
    /// launch, so independent launches run to completion even while
    /// another launch is failing.
    failed: AtomicU64,
    /// Root-cause launch index when this launch was cancelled because a
    /// (transitive) predecessor failed; `usize::MAX` while live.
    /// `fetch_min` keeps the smallest cause, making the reported cause
    /// deterministic under any retire order.
    cancelled_by: AtomicUsize,
    /// This launch's remaining operation budget (shared by all workers;
    /// metered in prepaid blocks), when `--max-ops` is set.
    budget: Option<Arc<AtomicU64>>,
    /// Injected fault: fail the claim of this linear work-group
    /// (`u64::MAX` = none).
    claim_fault: u64,
}

/// A failure observed while running one work-group: either a simulator
/// error (divergent barrier, out-of-bounds device access, tripped
/// execution limit) or a transported panic (an internal invariant
/// violation — kernel-reachable panics are classified into errors by
/// [`failure_of_panic`]).
enum Failure {
    Error(SimError),
    Panic(Box<dyn std::any::Any + Send>),
}

/// Classify a transported panic: payloads produced by kernel-reachable
/// checks (out-of-bounds device access, type-mismatched store) become
/// structured errors with the panic's own text, so hostile kernel input
/// surfaces as `Err(SimError)` instead of unwinding through the host.
/// Anything else is an internal invariant violation and stays a panic,
/// re-thrown after the join.
fn failure_of_panic(payload: Box<dyn std::any::Any + Send>) -> Failure {
    let text = payload
        .downcast_ref::<String>()
        .map(|s| s.as_str())
        .or_else(|| payload.downcast_ref::<&'static str>().copied());
    if let Some(t) = text {
        if t.starts_with("device memory access out of bounds")
            || t.starts_with("type-mismatched store")
            || t.starts_with("host AddInto over mismatched element types")
        {
            return Failure::Error(SimError::msg(t));
        }
    }
    Failure::Panic(payload)
}

/// One worker's outcome: per-launch accumulated counters plus, when
/// profiling, per-launch flat instruction execution counts.
struct WorkerResult {
    stats: Vec<ExecStats>,
    profiles: Vec<Option<Box<[u64]>>>,
}

/// Limit state one graph run shares across its workers: the limits as
/// configured plus the wall-clock deadline resolved **once** at graph
/// entry (so every launch of the graph races the same instant).
struct GraphLimits {
    limits: ExecLimits,
    deadline: Option<Instant>,
}

impl GraphLimits {
    /// The limit (if any) that has already tripped globally — polled at
    /// claim-chunk boundaries, the scheduler's cancellation points.
    fn tripped(&self) -> Option<LimitKind> {
        if let Some(c) = &self.limits.cancel {
            if c.is_cancelled() {
                return Some(LimitKind::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(LimitKind::Deadline);
            }
        }
        None
    }

    /// Whether launch `li` needs a per-instruction [`OpMeter`] (op
    /// budget, deadline/cancel polling at op-block boundaries, or an
    /// instruction-count fault). Claim-site faults and the memory cap
    /// are handled by the scheduler and the pool respectively.
    fn needs_meter(&self, li: usize) -> bool {
        self.limits.max_ops.is_some()
            || self.limits.deadline_ms.is_some()
            || self.limits.cancel.is_some()
            || matches!(self.limits.fault_at(li), Some(FaultSite::Instr(_)))
    }
}

/// Everything a graph run shares with its pool jobs. Lives on the
/// launching thread's stack for the duration of [`run_plan_graph`]; the
/// completion latch guarantees no job outlives it.
struct GraphState<'a, 'p> {
    units: Vec<GraphUnit<'a>>,
    succs: &'a [Vec<usize>],
    shared: &'a SharedPool<'p>,
    cost: &'a CostModel,
    profile: bool,
    /// Execution limits of this run (`None` = unlimited; the common case
    /// pays one branch per launch acquisition and per claimed chunk).
    limits: Option<GraphLimits>,
    /// Launches with retired dependencies and (possibly) unclaimed
    /// work-groups, ordered by the run's [`SchedPolicy`]. Exhausted
    /// entries are dropped lazily by `acquire`.
    ready: Mutex<ReadySet>,
    /// Wakes workers parked in `acquire` (new ready launches, poisoning,
    /// or the last retire).
    wake: Condvar,
    /// Launches not yet retired; the run is over when this hits zero.
    launches_left: AtomicUsize,
    /// Observed failures with their positions, bounded per launch: only
    /// failures at or below the launch's best-known failing group are
    /// recorded (at most one per worker per launch), and the smallest
    /// per launch is reported.
    failures: Mutex<Vec<(usize, usize, Failure)>>,
    /// Set when a worker itself dies outside group execution (a scheduler
    /// bug): releases parked workers so the latch is always reached.
    poisoned: AtomicBool,
    results: Mutex<Vec<WorkerResult>>,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion latch: (jobs still running, wakeup for the launcher).
    latch: (Mutex<usize>, Condvar),
}

impl GraphState<'_, '_> {
    /// Run one worker loop against this graph, recording the outcome.
    /// Never unwinds.
    fn run_worker(&self) {
        let outcome = catch_unwind(AssertUnwindSafe(|| graph_worker(self)));
        match outcome {
            Ok(result) => self.results.lock().unwrap().push(result),
            Err(payload) => {
                // A panic outside per-group execution (scheduler bug):
                // park the payload for the launcher to re-throw and
                // release everyone. The poison flag is raised while
                // holding the `ready` mutex: `acquire` checks it under
                // the same mutex, so a worker is either still scanning
                // (and will see the flag) or already parked (and gets
                // the notification) — never in between losing both.
                {
                    let _q = self.ready.lock().unwrap();
                    self.poisoned.store(true, Ordering::Relaxed);
                }
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
                drop(slot);
                self.wake.notify_all();
            }
        }
        let mut left = self.latch.0.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.latch.1.notify_all();
        }
    }

    /// Record a failing work-group, tightening the launch's skip bound.
    /// Limit errors are stamped with their true `(launch, group)`
    /// position here — executors construct them with placeholders. The
    /// failures list stays bounded: a failure strictly beyond an
    /// already-recorded smaller one of the same launch is dropped (it
    /// could never be reported).
    fn record_failure(&self, li: usize, gi: usize, failure: Failure) {
        let prev = self.units[li]
            .failed
            .fetch_min(gi as u64, Ordering::Relaxed);
        if (gi as u64) > prev {
            return;
        }
        let failure = match failure {
            Failure::Error(e) => Failure::Error(e.at(li, gi)),
            p => p,
        };
        self.failures.lock().unwrap().push((li, gi, failure));
    }

    /// Retire launch `li`: publish successors whose last dependency this
    /// was, and wake parked workers when anything changed.
    ///
    /// A newly-ready successor with **zero work-groups** (an empty
    /// nd-range) has no group whose completion could ever retire it, so
    /// it retires eagerly right here instead of entering the ready set —
    /// the worklist cascades through chains of empty launches. Eager
    /// retirement happens only once the launch's own last predecessor
    /// retired, so dependency ordering is preserved through it.
    /// Whether launch `li`'s recorded failure cancels its successors.
    /// Only limit trips and injected faults cascade (see
    /// [`SimError::cascades`]); the deciding entry is the minimal
    /// recorded group. Called at retire time, after every group of `li`
    /// is accounted for, so the minimal failure is already recorded.
    fn failure_cascades(&self, li: usize) -> bool {
        let failures = self.failures.lock().unwrap();
        failures
            .iter()
            .filter(|(l, _, _)| *l == li)
            .min_by_key(|(_, g, _)| *g)
            .is_some_and(|(_, _, f)| matches!(f, Failure::Error(e) if e.cascades()))
    }

    fn retire(&self, li: usize) {
        let mut to_retire = vec![li];
        let mut newly_ready = Vec::new();
        let mut retired = 0_usize;
        while let Some(u) = to_retire.pop() {
            retired += 1;
            // A launch that retired in a failed (or itself cancelled)
            // state cancels its successors, carrying the *root* failing
            // launch as the cause.
            let unit = &self.units[u];
            let cause = if unit.cancelled_by.load(Ordering::Relaxed) != usize::MAX {
                Some(unit.cancelled_by.load(Ordering::Relaxed))
            } else if unit.failed.load(Ordering::Relaxed) != u64::MAX && self.failure_cascades(u) {
                Some(u)
            } else {
                None
            };
            for &s in &self.succs[u] {
                // The cancellation mark must precede the dependency
                // decrement: the AcqRel RMW chain on `remaining_deps`
                // guarantees whoever performs the *final* decrement
                // observes every predecessor's mark, so a cancelled
                // launch can never slip into the ready set.
                if let Some(c) = cause {
                    self.units[s].cancelled_by.fetch_min(c, Ordering::Relaxed);
                }
                // AcqRel: the retiring thread has (transitively) acquired
                // all group-completion decrements of `u`, and a
                // successor's first claim acquires this decrement —
                // establishing happens-before from every write of a
                // predecessor launch to every read of its successors.
                if self.units[s].remaining_deps.fetch_sub(1, Ordering::AcqRel) == 1 {
                    if self.units[s].cancelled_by.load(Ordering::Relaxed) != usize::MAX
                        || self.units[s].total == 0
                    {
                        // Cancelled launches never run: they cascade to
                        // retirement directly (as do empty launches).
                        to_retire.push(s);
                    } else {
                        newly_ready.push(s);
                    }
                }
            }
        }
        // The wake predicate (`launches_left`, ready-queue contents) must
        // change while the `ready` mutex is held: a worker in `acquire`
        // is either still scanning under the mutex (and re-reads the new
        // state) or already parked in `wait` (and receives the
        // notification). Decrementing or notifying outside the lock
        // loses the wakeup when the worker sits between its predicate
        // check and the park.
        let mut q = self.ready.lock().unwrap();
        let left = self.launches_left.fetch_sub(retired, Ordering::AcqRel) - retired;
        let publish = !newly_ready.is_empty();
        for s in newly_ready {
            q.push(s, self.units[s].cp);
        }
        drop(q);
        if left == 0 || publish {
            self.wake.notify_all();
        }
    }

    /// Block until some ready launch has unclaimed work-groups and return
    /// it, or return `None` when every launch has retired (or a worker
    /// poisoned the run). Exhausted-but-unretired launches are removed
    /// from the ready set; their in-flight chunks retire them.
    fn acquire(&self) -> Option<usize> {
        let mut q = self.ready.lock().unwrap();
        loop {
            if self.poisoned.load(Ordering::Relaxed) {
                return None;
            }
            if self.launches_left.load(Ordering::Acquire) == 0 {
                return None;
            }
            while let Some(li) = q.peek() {
                if self.units[li].next.load(Ordering::Relaxed) >= self.units[li].total {
                    q.pop();
                } else {
                    return Some(li);
                }
            }
            q = self.wake.wait(q).unwrap();
        }
    }
}

/// Pool-job trampoline.
///
/// # Safety
///
/// `ctx` must point to a live [`GraphState`] that stays alive until the
/// state's latch observes this job's completion.
unsafe fn launch_job(ctx: *const ()) {
    let state = unsafe { &*(ctx as *const GraphState<'_, '_>) };
    state.run_worker();
}

/// Number of workers a graph run enlists: the thread-count knob clamped
/// to the graph's total work-group count — never more workers than there
/// are groups to run (a graph with no groups still gets the calling
/// thread).
fn graph_workers(threads: usize, total_groups: usize) -> usize {
    threads.max(1).min(total_groups.max(1))
}

/// Work-groups claimed per claim-cursor RMW: aim for ~8 chunks per
/// enlisted worker so load still balances, floor 1 so tiny launches keep
/// fine-grained interleaving, cap 64 so no worker monopolizes a launch
/// and independent launches pipeline. Sized from the **clamped** worker
/// count ([`graph_workers`]), not the raw thread-count hint — the hint
/// can exceed the workers that actually contend on the cursor.
fn claim_chunk(total: usize, workers: usize) -> usize {
    (total / (workers * 8)).clamp(1, 64)
}

/// Group coordinates of linear index `idx` (row-major over `groups`, the
/// same order the sequential engine iterates).
#[inline]
fn group_of(groups: [i64; 3], idx: usize) -> [i64; 3] {
    let idx = idx as i64;
    let g2 = idx % groups[2];
    let rest = idx / groups[2];
    [rest / groups[1], rest % groups[1], g2]
}

/// Execute every work-item of one work-group to completion, honouring
/// barriers co-operatively.
fn run_group(
    plan: &KernelPlan,
    args: &[RtValue],
    nd: NdRangeSpec,
    group: [i64; 3],
    ctx: &mut PlanExecCtx<'_, '_>,
    pctx: &mut PlanCtx,
) -> Result<(), SimError> {
    let mut items: Vec<PlanWorkItem> = items_of_group(nd, group)
        .into_iter()
        .map(|item| PlanWorkItem::new(plan, args, item))
        .collect::<Result<_, _>>()?;
    if pctx.uniform {
        cooperative_rounds_uniform(&mut items, |wi| wi.run(plan, ctx, pctx))
    } else {
        cooperative_rounds(&mut items, group, |wi| wi.run(plan, ctx, pctx))
    }
}

/// Execute the single logical work-group of a host node: charge the
/// node's fixed weight through a per-execution [`OpMeter`] (op budget,
/// deadline/cancellation poll and the `instr` fault site all honoured),
/// then run the closure against a [`HostView`] of the shared device
/// memory. The unspent remainder of the metered block settles back so
/// budgets stay exact.
fn run_host_node(node: &HostNode, st: &GraphState<'_, '_>, li: usize) -> Result<(), SimError> {
    if let Some(gl) = &st.limits {
        if gl.needs_meter(li) {
            let mut meter = OpMeter::new(&gl.limits, st.units[li].budget.clone(), gl.deadline, li);
            let metered = meter.charge(node.weight);
            meter.settle();
            metered?;
        }
    }
    node.run(&HostView::new(st.shared))
}

/// Claim-and-run loop of one worker thread over the launch graph.
///
/// The worker repeatedly asks the ready set for a launch with unclaimed
/// work-groups and claims a **chunk** of them (`GraphUnit::chunk` per
/// `fetch_add` — one atomic RMW amortized over many groups, which is what
/// cuts cursor contention on launches with many small groups). The
/// worker's memory interface — and with it the recyclable scratch arena —
/// is reused across every launch it touches; the statistics accumulator
/// and the per-launch plan state are swapped per launch (counters must
/// merge per launch).
///
/// A failing work-group (simulator error or transported panic) is
/// recorded with its `(launch, group)` position and execution continues;
/// groups at or beyond the launch's best-known failure are skipped, but
/// **other** launches are untouched — independent launches run to
/// completion (bit-identically to a clean run) while dependent launches
/// are cancelled with their root cause at retire time. That keeps the
/// reported error deterministic — always the smallest failing position,
/// independent of scheduling — while degrading gracefully.
///
/// With limits active, the wall-clock deadline and the cancel token are
/// polled at every claim-chunk boundary (and, via the per-launch
/// [`OpMeter`], at op-block boundaries inside long-running groups), so a
/// wedged kernel is cut off without per-instruction overhead.
fn graph_worker(st: &GraphState<'_, '_>) -> WorkerResult {
    let mut ctx = PlanExecCtx::new(st.shared, st.cost);
    if let Some(gl) = &st.limits {
        if let Some(cap) = gl.limits.mem_cap {
            ctx.pool.set_mem_cap(cap);
        }
    }
    let n = st.units.len();
    let mut stats = vec![ExecStats::default(); n];
    let mut pctxs: Vec<Option<PlanCtx>> = (0..n).map(|_| None).collect();
    let mut jit_scratch = JitScratch::default();
    let mut cur: Option<usize> = None;
    while let Some(li) = st.acquire() {
        if cur != Some(li) {
            if let Some(c) = cur {
                stats[c].add(&std::mem::take(&mut ctx.stats));
            }
            cur = Some(li);
        }
        let unit = &st.units[li];
        let mut pctx = unit.plan.map(|plan| {
            pctxs[li].get_or_insert_with(|| {
                let mut p = if st.profile {
                    PlanCtx::profiled(plan)
                } else {
                    PlanCtx::new(plan)
                };
                p.set_facts(unit.proven.clone(), unit.uniform);
                if let Some(gl) = &st.limits {
                    if gl.needs_meter(li) {
                        p.set_meter(OpMeter::new(
                            &gl.limits,
                            unit.budget.clone(),
                            gl.deadline,
                            li,
                        ));
                    }
                }
                p
            })
        });
        loop {
            let start = unit.next.fetch_add(unit.chunk, Ordering::Relaxed);
            if start >= unit.total {
                break; // fully claimed; pick another ready launch
            }
            if let Some(gl) = &st.limits {
                // Claim-chunk boundary: the scheduler's cancellation
                // point. A tripped deadline or cancel token fails this
                // launch here (each running launch records its own trip
                // at its own next boundary).
                if let Some(kind) = gl.tripped() {
                    st.record_failure(li, start, Failure::Error(SimError::limit(kind)));
                }
            }
            let end = (start + unit.chunk).min(unit.total);
            for idx in start..end {
                if idx as u64 >= unit.failed.load(Ordering::Relaxed) {
                    continue; // at/beyond this launch's failure: unreportable
                }
                if idx as u64 == unit.claim_fault {
                    let fault = crate::limits::FaultPlan {
                        launch: li,
                        site: FaultSite::Claim(idx as u64),
                    };
                    st.record_failure(li, idx, Failure::Error(fault.error()));
                    continue;
                }
                let outcome = match unit.host {
                    Some(node) => catch_unwind(AssertUnwindSafe(|| run_host_node(node, st, li))),
                    None => {
                        let plan = unit.plan.expect("kernel launch carries a plan");
                        let p = pctx.as_deref_mut().expect("kernel launch has a plan ctx");
                        let group = group_of(unit.groups, idx);
                        let r = catch_unwind(AssertUnwindSafe(|| match unit.jit {
                            Some(jit) => run_group_jit(
                                jit,
                                plan,
                                unit.args,
                                unit.nd,
                                group,
                                &mut ctx,
                                p,
                                &mut jit_scratch,
                            ),
                            None => run_group(plan, unit.args, unit.nd, group, &mut ctx, p),
                        }));
                        ctx.next_work_group();
                        p.next_work_group();
                        r
                    }
                };
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => st.record_failure(li, idx, Failure::Error(e)),
                    Err(payload) => st.record_failure(li, idx, failure_of_panic(payload)),
                }
            }
            // Release: every store this worker made for these groups
            // happens-before the retire that publishes the successors.
            let before = unit.unfinished.fetch_sub(end - start, Ordering::AcqRel);
            debug_assert!(before >= end - start, "over-retired launch {li}");
            if before == end - start {
                st.retire(li);
            }
        }
    }
    if let Some(c) = cur {
        stats[c].add(&std::mem::take(&mut ctx.stats));
    }
    let profiles = pctxs
        .iter_mut()
        .map(|p| p.as_mut().and_then(|p| p.take_profile()))
        .collect();
    WorkerResult { stats, profiles }
}

/// Execute a pre-decoded [`KernelPlan`] over `nd` on `threads` workers
/// (`<= 1` runs the same code on the calling thread; `> 1` enlists
/// `threads - 1` persistent pool workers alongside the calling thread).
/// Statistics are merged deterministically: results are bit-identical for
/// every worker count.
pub fn run_plan_launch(
    plan: &KernelPlan,
    args: &[RtValue],
    nd: NdRangeSpec,
    pool_mem: &mut MemoryPool,
    cost: &CostModel,
    threads: usize,
) -> Result<ExecStats, SimError> {
    let mut stats = run_plan_batch(
        &[PlanLaunch::kernel(plan, args, nd)],
        pool_mem,
        cost,
        threads,
    )?;
    Ok(stats.pop().expect("one launch in, one stats out"))
}

/// [`run_plan_launch`] under execution limits: the launch is metered
/// against `limits` and a tripped limit is reported as
/// [`SimError::LimitExceeded`] instead of running forever.
pub fn run_plan_launch_limited(
    plan: &KernelPlan,
    args: &[RtValue],
    nd: NdRangeSpec,
    pool_mem: &mut MemoryPool,
    cost: &CostModel,
    threads: usize,
    limits: &ExecLimits,
) -> Result<ExecStats, SimError> {
    let launches = [PlanLaunch::kernel(plan, args, nd)];
    let dag = LaunchDag::independent(1);
    let mut out = run_plan_graph_limited(
        &launches,
        &dag,
        pool_mem,
        cost,
        threads,
        false,
        limits,
        SchedPolicy::default(),
    )?;
    Ok(out.stats.pop().expect("one launch in, one stats out"))
}

/// Execute a batch of **mutually independent** plan launches concurrently
/// on `threads` workers: [`run_plan_graph`] over the edge-free graph.
pub fn run_plan_batch(
    launches: &[PlanLaunch<'_>],
    pool_mem: &mut MemoryPool,
    cost: &CostModel,
    threads: usize,
) -> Result<Vec<ExecStats>, SimError> {
    let dag = LaunchDag::independent(launches.len());
    run_plan_graph(launches, &dag, pool_mem, cost, threads, false).map(|o| o.stats)
}

/// What [`run_plan_graph`] returns: per-launch statistics plus, when
/// profiling was requested, per-launch flat instruction execution counts
/// (index into the launch's plan functions concatenated in order; see
/// [`crate::plan::profile_summary`]).
#[derive(Debug)]
pub struct GraphOutcome {
    /// One merged [`ExecStats`] per launch, cycles charged.
    pub stats: Vec<ExecStats>,
    /// Per-launch execution counts (`Some` iff profiling was requested).
    pub profile: Option<Vec<Box<[u64]>>>,
}

/// Terminal state of one launch in a [`GraphReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchStatus {
    /// The launch ran every work-group successfully.
    Completed,
    /// The launch failed: `error` at its smallest failing work-group.
    Failed {
        /// Linear index of the smallest failing work-group.
        group: usize,
        /// The failure, position-stamped for limit trips.
        error: SimError,
    },
    /// The launch never ran: a (transitive) predecessor failed. `cause`
    /// is the smallest root failing launch, deterministic under any
    /// schedule.
    Cancelled {
        /// Index of the root failing launch this cancellation descends
        /// from.
        cause: usize,
    },
}

/// What [`run_plan_graph_report`] returns: the graceful-degradation view
/// of a graph run, with per-launch terminal statuses instead of a single
/// first error — failing launches don't take the whole graph down.
#[derive(Debug)]
pub struct GraphReport {
    /// One merged [`ExecStats`] per launch, cycles charged; zeroed for
    /// launches that did not complete (partial counters would be
    /// schedule-dependent).
    pub stats: Vec<ExecStats>,
    /// Per-launch terminal state.
    pub statuses: Vec<LaunchStatus>,
    /// Per-launch execution counts (`Some` iff profiling was requested).
    pub profile: Option<Vec<Box<[u64]>>>,
}

impl GraphReport {
    /// The lexicographically smallest `(launch, group)` failure, if any —
    /// the error serial submission-order execution hits first.
    pub fn first_failure(&self) -> Option<(usize, usize, &SimError)> {
        self.statuses
            .iter()
            .enumerate()
            .find_map(|(li, s)| match s {
                LaunchStatus::Failed { group, error } => Some((li, *group, error)),
                _ => None,
            })
    }
}

/// Execute a whole **launch graph** on `threads` workers, out of order:
/// a launch becomes eligible the moment its last predecessor retires —
/// no level barrier — and all eligible launches share one worker pool
/// through per-launch chunked claim cursors.
///
/// * **Scheduling.** Every launch carries a remaining-dependency counter;
///   the worker that retires a launch's last work-group decrements its
///   successors' counters and publishes any that hit zero to a shared
///   ready set. Workers claim work-groups in chunks (adaptive to the
///   launch's group count), so a single slow launch no longer stalls
///   ready successors the way the PR 3 level batcher did.
/// * **Determinism.** Statistics are accumulated per worker *per launch*
///   and merged per launch after the join (integer totals, commutative),
///   so every launch's [`ExecStats`] — and the cycle model charged from
///   it — is bit-identical to serial submission-order execution, for
///   every worker count, graph shape and interleaving. Hazard edges order
///   all conflicting buffer accesses (retire/claim counters carry the
///   necessary happens-before), so buffer contents are bit-identical too.
/// * **Errors.** Failing work-groups (simulator errors *and* panics, e.g.
///   out-of-bounds device accesses) are collected with their positions;
///   the failure at the lexicographically smallest `(launch, group)` is
///   reported — exactly the one submission-order serial execution hits
///   first, under every thread count and graph shape. Groups beyond the
///   best-known failure are skipped, so a failing run still terminates
///   early.
///
/// # Errors
///
/// Malformed geometry, malformed/cyclic graphs, and the minimal failing
/// work-group's error as above (internal panics are re-thrown as panics;
/// kernel-reachable ones — out-of-bounds device accesses, type-mismatched
/// stores — surface as structured errors).
pub fn run_plan_graph(
    launches: &[PlanLaunch<'_>],
    dag: &LaunchDag,
    pool_mem: &mut MemoryPool,
    cost: &CostModel,
    threads: usize,
    profile: bool,
) -> Result<GraphOutcome, SimError> {
    run_plan_graph_limited(
        launches,
        dag,
        pool_mem,
        cost,
        threads,
        profile,
        &ExecLimits::none(),
        SchedPolicy::default(),
    )
}

/// [`run_plan_graph`] under execution limits (`run_plan_graph` itself is
/// the unlimited special case): op budgets, the memory cap, the deadline
/// and the cancel token of `limits` are enforced, and fault injection is
/// honoured, under ready-set policy `sched`. Like `run_plan_graph`, the
/// first failure is returned as `Err`; use [`run_plan_graph_report`] to
/// additionally observe which launches completed, failed or were
/// cancelled.
#[allow(clippy::too_many_arguments)]
pub fn run_plan_graph_limited(
    launches: &[PlanLaunch<'_>],
    dag: &LaunchDag,
    pool_mem: &mut MemoryPool,
    cost: &CostModel,
    threads: usize,
    profile: bool,
    limits: &ExecLimits,
    sched: SchedPolicy,
) -> Result<GraphOutcome, SimError> {
    let report = run_plan_graph_report(
        launches, dag, pool_mem, cost, threads, profile, limits, sched,
    )?;
    if let Some((_, _, error)) = report.first_failure() {
        return Err(error.clone());
    }
    Ok(GraphOutcome {
        stats: report.stats,
        profile: report.profile,
    })
}

/// Execute a launch graph under `limits` and report **per-launch**
/// terminal statuses instead of stopping at the first error: independent
/// launches complete (bit-identically to a clean run), the failing
/// launch reports its smallest failing work-group, and every transitive
/// successor of a failing launch is cancelled with its root cause. `Err`
/// is reserved for malformed input (bad geometry, bad graphs); kernel
/// failures and limit trips live in [`GraphReport::statuses`].
#[allow(clippy::too_many_arguments)]
pub fn run_plan_graph_report(
    launches: &[PlanLaunch<'_>],
    dag: &LaunchDag,
    pool_mem: &mut MemoryPool,
    cost: &CostModel,
    threads: usize,
    profile: bool,
    limits: &ExecLimits,
    sched: SchedPolicy,
) -> Result<GraphReport, SimError> {
    dag.validate(launches.len())?;
    if launches.len() >= u32::MAX as usize {
        return Err(SimError::msg("too many launches in one graph"));
    }
    // First pass: validate geometry and count work-groups, so the worker
    // count — and the claim chunk sized from it — reflects the *clamped*
    // value (never more workers than groups), not the raw thread hint.
    let mut geometry = Vec::with_capacity(launches.len());
    let mut total_groups = 0_usize;
    for l in launches {
        l.nd.validate()?;
        if l.plan.is_some() == l.host.is_some() {
            return Err(SimError::msg(
                "a graph launch must carry exactly one of a kernel plan or a host node",
            ));
        }
        let groups = l.nd.groups();
        let total = (groups[0] * groups[1] * groups[2]) as usize;
        if l.host.is_some() && total != 1 {
            return Err(SimError::msg(
                "a host node must span exactly one logical work-group",
            ));
        }
        if total >= u32::MAX as usize {
            return Err(SimError::msg("too many work-groups in one launch"));
        }
        total_groups += total;
        geometry.push((groups, total));
    }
    let workers = graph_workers(threads, total_groups);
    // Critical-path lengths drive the CritPath ready ordering; computed
    // once up front (the graph validated acyclic above).
    let cp = critical_paths(dag, &geometry);
    let mut units = Vec::with_capacity(launches.len());
    for (li, (l, &(groups, total))) in launches.iter().zip(&geometry).enumerate() {
        // Bind the launch's static facts to its concrete geometry,
        // arguments and buffer lengths once, before any worker starts;
        // the resulting bitset is shared read-only by every worker.
        let (proven, uniform) = match l.facts {
            Some(f) => (
                f.instantiate(l.args, &l.nd, pool_mem),
                f.all_barriers_uniform(),
            ),
            None => (Arc::from(Vec::new().into_boxed_slice()), false),
        };
        units.push(GraphUnit {
            plan: l.plan,
            args: l.args,
            nd: l.nd,
            jit: l.jit,
            host: l.host,
            proven,
            uniform,
            cp: cp[li],
            groups,
            total,
            chunk: claim_chunk(total, workers),
            next: AtomicUsize::new(0),
            unfinished: AtomicUsize::new(total),
            remaining_deps: AtomicUsize::new(dag.preds[li]),
            failed: AtomicU64::new(u64::MAX),
            cancelled_by: AtomicUsize::new(usize::MAX),
            budget: limits.max_ops.map(|b| Arc::new(AtomicU64::new(b))),
            claim_fault: match limits.fault_at(li) {
                Some(FaultSite::Claim(n)) => n,
                _ => u64::MAX,
            },
        });
    }
    if units.is_empty() {
        return Ok(GraphReport {
            stats: Vec::new(),
            statuses: Vec::new(),
            profile: profile.then(Vec::new),
        });
    }
    let shared = SharedPool::new(pool_mem);
    // Empty launches never enter the ready set — no work-group of theirs
    // could ever retire them; root empties are retired eagerly below and
    // dependent empties cascade through `retire`.
    let mut initially_ready = ReadySet::new(sched);
    for i in (0..units.len()).filter(|&i| dag.preds[i] == 0 && units[i].total > 0) {
        initially_ready.push(i, units[i].cp);
    }

    let state = GraphState {
        launches_left: AtomicUsize::new(units.len()),
        units,
        succs: &dag.succs,
        shared: &shared,
        cost,
        profile,
        limits: (!limits.is_none()).then(|| GraphLimits {
            limits: limits.clone(),
            deadline: limits.deadline_instant(),
        }),
        ready: Mutex::new(initially_ready),
        wake: Condvar::new(),
        failures: Mutex::new(Vec::new()),
        poisoned: AtomicBool::new(false),
        results: Mutex::new(Vec::with_capacity(workers)),
        panic: Mutex::new(None),
        latch: (Mutex::new(workers), Condvar::new()),
    };

    // An armed decode fault fails its launch before any of its groups
    // run: record it up front so every group is skipped, the launch
    // retires through normal claim accounting, and its successors are
    // cancelled by the ordinary cascade.
    if let Some(f) = &limits.fault {
        if matches!(f.site, FaultSite::Decode) && f.launch < state.units.len() {
            state.record_failure(f.launch, 0, Failure::Error(f.error()));
        }
    }

    // Retire dependency-free empty launches before any worker starts: a
    // zero-group launch has no group whose completion could publish its
    // successors, so without this a chain through an empty launch would
    // never make progress (and an all-empty graph would deadlock).
    for i in 0..state.units.len() {
        if dag.preds[i] == 0 && state.units[i].total == 0 {
            state.retire(i);
        }
    }

    if workers > 1 {
        ensure_workers(workers - 1);
        let p = pool();
        let mut st = p.state.lock().unwrap();
        for _ in 0..workers - 1 {
            st.queue.push_back(RawJob {
                run: launch_job,
                ctx: &state as *const GraphState<'_, '_> as *const (),
            });
        }
        drop(st);
        p.available.notify_all();
    }
    // The calling thread is always worker 0. `run_worker` catches panics,
    // so the latch below is reached (and the pool jobs drained) even when
    // the scheduler itself fails.
    state.run_worker();

    // Wait until every enlisted worker has finished; only then may `state`
    // (and the raw pointers handed to the pool) go out of scope.
    {
        let mut left = state.latch.0.lock().unwrap();
        while *left > 0 {
            left = state.latch.1.wait(left).unwrap();
        }
    }
    if let Some(payload) = state.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }

    // Re-throw internal panics (scheduler/invariant bugs) at the smallest
    // recorded position; kernel-reachable panics were classified into
    // structured errors at the catch site and flow into statuses below.
    let failures = state.failures.into_inner().unwrap();
    let panic_min = failures
        .iter()
        .filter(|(_, _, f)| matches!(f, Failure::Panic(_)))
        .map(|&(li, gi, _)| (li, gi))
        .min();
    if let Some(pos) = panic_min {
        let payload = failures
            .into_iter()
            .find_map(|(li, gi, f)| match f {
                Failure::Panic(p) if (li, gi) == pos => Some(p),
                _ => None,
            })
            .expect("minimal panic present");
        resume_unwind(payload);
    }

    // Per-launch smallest failing group and its error — scheduling cannot
    // reorder it away (groups below a launch's eventual minimum are never
    // skipped, so the minimum is always actually executed or was
    // deliberately failed at its claim).
    let mut errors: Vec<Option<(usize, SimError)>> = (0..launches.len()).map(|_| None).collect();
    for (li, gi, f) in failures {
        let Failure::Error(e) = f else { unreachable!() };
        match &errors[li] {
            Some((g, _)) if *g <= gi => {}
            _ => errors[li] = Some((gi, e)),
        }
    }
    let statuses: Vec<LaunchStatus> = state
        .units
        .iter()
        .enumerate()
        .map(|(li, u)| {
            let by = u.cancelled_by.load(Ordering::Relaxed);
            if by != usize::MAX {
                LaunchStatus::Cancelled { cause: by }
            } else if u.failed.load(Ordering::Relaxed) != u64::MAX {
                let (group, error) = errors[li]
                    .take()
                    .expect("failed launch has a recorded error");
                LaunchStatus::Failed { group, error }
            } else {
                LaunchStatus::Completed
            }
        })
        .collect();

    let mut merged = vec![ExecStats::default(); launches.len()];
    let mut profiles: Vec<Box<[u64]>> = if profile {
        launches
            .iter()
            .map(|l| vec![0; l.plan.map_or(0, |p| p.instr_count())].into_boxed_slice())
            .collect()
    } else {
        Vec::new()
    };
    for r in state.results.into_inner().unwrap() {
        for (m, s) in merged.iter_mut().zip(&r.stats) {
            m.add(s);
        }
        for (acc, p) in profiles.iter_mut().zip(&r.profiles) {
            if let Some(p) = p {
                for (a, c) in acc.iter_mut().zip(p.iter()) {
                    *a += c;
                }
            }
        }
    }
    for (li, (m, unit)) in merged.iter_mut().zip(&state.units).enumerate() {
        if unit.host.is_some() {
            // Host nodes report zeroed stats rows regardless of outcome:
            // their fixed metering weight is an admission charge, not a
            // simulated instruction count.
            *m = ExecStats::default();
        } else if matches!(statuses[li], LaunchStatus::Completed) {
            m.work_groups = unit.total as u64;
            m.work_items = unit.nd.work_items() as u64;
            m.charge(cost);
        } else {
            // Partial counters of failing/cancelled launches would be
            // schedule-dependent; report them as zeroed instead.
            *m = ExecStats::default();
        }
    }
    Ok(GraphReport {
        stats: merged,
        statuses,
        profile: profile.then_some(profiles),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_linearization_matches_sequential_order() {
        let groups = [2_i64, 3, 4];
        let mut expect = Vec::new();
        for g0 in 0..groups[0] {
            for g1 in 0..groups[1] {
                for g2 in 0..groups[2] {
                    expect.push([g0, g1, g2]);
                }
            }
        }
        let got: Vec<[i64; 3]> = (0..expect.len()).map(|i| group_of(groups, i)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn shared_pool_roundtrip_and_arena_routing() {
        let mut pool = MemoryPool::new();
        let f = pool.alloc(DataVec::F32(vec![0.0; 4]));
        let l = pool.alloc(DataVec::I64(vec![0; 2]));
        {
            let shared = SharedPool::new(&mut pool);
            let mut pp = PlanPool::new(&shared);
            pp.store(f, 1, RtValue::F32(1.5));
            pp.store(l, 0, RtValue::Int(-3));
            assert_eq!(pp.load(f, 1), RtValue::F32(1.5));
            assert_eq!(pp.load(l, 0), RtValue::Int(-3));
            assert_eq!(pp.elem_bytes(f), 4);
            assert_eq!(pp.elem_bytes(l), 8);

            // Arena allocations are tagged and never alias shared ids.
            let a = pp.alloc(DataVec::I32(vec![7; 3])).unwrap();
            assert_ne!(a.0 & ARENA_BIT, 0);
            pp.store(a, 2, RtValue::Int(9));
            assert_eq!(pp.load(a, 2), RtValue::Int(9));
            assert_eq!(pp.load(a, 0), RtValue::Int(7));
        }
        // Writes through the shared view landed in the original pool.
        assert_eq!(pool.load(f, 1), RtValue::F32(1.5));
        assert_eq!(pool.load(l, 0), RtValue::Int(-3));
    }

    #[test]
    fn scratch_arena_recycles_buffers_across_work_groups() {
        let ctx = sycl_mlir_ir::Context::new();
        let f32t = ctx.f32_type();
        let mut pool = MemoryPool::new();
        let shared = SharedPool::new(&mut pool);
        let mut pp = PlanPool::new(&shared);

        // A dense-constant allocation persists across group boundaries…
        let k = pp.alloc(DataVec::F32(vec![4.5; 2])).unwrap();
        assert_ne!(k.0 & ARENA_BIT, 0);
        assert_ne!(k.0 & CONST_BIT, 0);

        // …while alloca scratch is recycled: same id, re-zeroed storage.
        let a = pp.alloc_zeroed(&f32t, 3).unwrap();
        assert_ne!(a.0 & ARENA_BIT, 0);
        assert_eq!(a.0 & CONST_BIT, 0);
        pp.store(a, 1, RtValue::F32(7.0));
        assert_eq!(pp.load(a, 1), RtValue::F32(7.0));

        pp.next_work_group();
        let a2 = pp.alloc_zeroed(&f32t, 3).unwrap();
        assert_eq!(a2, a, "matching allocation is recycled");
        assert_eq!(
            pp.load(a2, 1),
            RtValue::F32(0.0),
            "recycled storage re-zeroed"
        );

        // A shape/type mismatch at the cursor replaces the buffer.
        pp.next_work_group();
        let b = pp.alloc_zeroed(&ctx.i64_type(), 5).unwrap();
        assert_eq!(b, a, "same slot, new storage");
        assert_eq!(pp.load(b, 4), RtValue::Int(0));
        assert_eq!(pp.elem_bytes(b), 8);

        // The constant survived all resets.
        assert_eq!(pp.load(k, 0), RtValue::F32(4.5));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shared_pool_bounds_checked() {
        let mut pool = MemoryPool::new();
        let f = pool.alloc(DataVec::F32(vec![0.0; 2]));
        let shared = SharedPool::new(&mut pool);
        shared.load(f, 5);
    }

    /// The claim chunk is sized from the **clamped** worker count
    /// (`graph_workers`), never the raw thread-count hint: a hint larger
    /// than the graph must not distort per-launch chunking.
    #[test]
    fn chunk_sized_from_clamped_worker_count() {
        // Clamping: never more workers than groups; at least one worker.
        assert_eq!(graph_workers(4, 1000), 4);
        assert_eq!(graph_workers(64, 8), 8);
        assert_eq!(graph_workers(0, 8), 1);
        assert_eq!(graph_workers(16, 0), 1);

        // ~8 chunks per worker, floored at 1 and capped at 64.
        assert_eq!(claim_chunk(512, 4), 16);
        assert_eq!(claim_chunk(100, 4), 3);
        assert_eq!(claim_chunk(2, 64), 1);
        assert_eq!(claim_chunk(1 << 20, 1), 64);

        // The regression shape: a tiny graph under a huge thread hint.
        // The clamped count (what run_plan_graph now feeds claim_chunk)
        // keeps every launch at fine-grained chunk 1 — and can never
        // exceed the chunk the raw hint would produce.
        let (threads, per_launch, graph_total) = (64_usize, 8_usize, 16_usize);
        let workers = graph_workers(threads, graph_total);
        assert_eq!(workers, 16);
        assert_eq!(claim_chunk(per_launch, workers), 1);
        for total in [1_usize, 8, 64, 512, 4096] {
            for threads in [1_usize, 4, 64, 1024] {
                for graph_total in [total, 4 * total] {
                    let clamped = claim_chunk(total, graph_workers(threads, graph_total));
                    let hinted = claim_chunk(total, threads.max(1));
                    assert!(
                        clamped >= hinted,
                        "clamping must never shrink chunks below the hinted size"
                    );
                }
            }
        }
    }

    /// A minimal bytecode plan: `f32buf[gid] = f32buf[gid] + k`.
    fn add_k_plan(k: f32) -> KernelPlan {
        use crate::plan::{DimSrc, FloatBin, FuncPlan, Instr, ItemQ};
        let code = vec![
            Instr::ItemQuery {
                dst: 1,
                q: ItemQ::GlobalId,
                dim: DimSrc::Const(0),
            },
            Instr::Const {
                dst: 2,
                val: RtValue::F32(k),
            },
            Instr::Load {
                dst: 3,
                mem: 0,
                idx: [1, 0, 0],
                rank: 1,
                site: 0,
            },
            Instr::BinFloat {
                op: FloatBin::Add,
                dst: 4,
                l: 3,
                r: 2,
                f32_out: true,
            },
            Instr::Store {
                val: 4,
                mem: 0,
                idx: [1, 0, 0],
                rank: 1,
                site: 1,
            },
            Instr::Return {
                vals: Vec::new().into_boxed_slice(),
            },
        ];
        KernelPlan {
            funcs: vec![FuncPlan {
                code,
                reg_count: 5,
                params: vec![0],
                has_item_param: false,
            }],
            dense_consts: Vec::new(),
            mem_sites: 2,
            local_sites: 0,
            fused_pairs: 0,
            fused_chains: 0,
            fused_quads: 0,
            fused_wt: 0,
        }
    }

    /// An empty launch (zero work-groups) in the middle of a dependency
    /// chain must retire eagerly: its successor still runs, after its
    /// predecessor, under every worker count — and an all-empty graph
    /// terminates instead of deadlocking.
    #[test]
    fn empty_launch_in_a_chain_retires_eagerly() {
        let plan_a = add_k_plan(1.0);
        let plan_c = add_k_plan(10.0);
        let n = 16_i64;
        let arg = |mem| {
            RtValue::MemRef(crate::value::MemRefVal {
                mem,
                offset: 0,
                shape: [n, 1, 1],
                rank: 1,
                space: crate::value::Space::Global,
            })
        };
        for threads in [1_usize, 4] {
            let mut pool = MemoryPool::new();
            let mf = pool.alloc(DataVec::F32(vec![0.0; n as usize]));
            let args = [arg(mf)];
            let launches = [
                PlanLaunch::kernel(&plan_a, &args, NdRangeSpec::d1(n, 4)),
                // The empty middle launch: zero global range.
                PlanLaunch::kernel(&plan_a, &args, NdRangeSpec::d1(0, 4)),
                PlanLaunch::kernel(&plan_c, &args, NdRangeSpec::d1(n, 4)),
            ];
            let dag = LaunchDag::chain(3);
            let out = run_plan_graph(
                &launches,
                &dag,
                &mut pool,
                &CostModel::default(),
                threads,
                false,
            )
            .expect("chain through an empty launch completes");
            assert_eq!(out.stats.len(), 3);
            assert_eq!(out.stats[1].work_groups, 0, "empty launch ran no groups");
            assert_eq!(out.stats[1].work_items, 0);
            assert_eq!(out.stats[1].global_accesses, 0);
            let DataVec::F32(f) = pool.data(mf) else {
                panic!()
            };
            // A then C: 0 + 1 + 10, for every element.
            assert_eq!(f, &vec![11.0_f32; n as usize], "threads={threads}");
        }

        // An all-empty graph (including chained empties) terminates.
        let mut pool = MemoryPool::new();
        let mf = pool.alloc(DataVec::F32(vec![0.0; n as usize]));
        let args = [arg(mf)];
        let empties = [
            PlanLaunch::kernel(&plan_a, &args, NdRangeSpec::d1(0, 4)),
            PlanLaunch::kernel(&plan_a, &args, NdRangeSpec::d1(0, 4)),
        ];
        let out = run_plan_graph(
            &empties,
            &LaunchDag::chain(2),
            &mut pool,
            &CostModel::default(),
            4,
            false,
        )
        .expect("all-empty graph completes");
        assert_eq!(out.stats.len(), 2);
        assert!(out.stats.iter().all(|s| s.work_groups == 0));
    }

    #[test]
    fn launch_dag_constructors_and_levels() {
        // Diamond: 0 -> {1, 2} -> 3.
        let dag = LaunchDag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(dag.preds, vec![0, 1, 1, 2]);
        assert_eq!(dag.succs, vec![vec![1, 2], vec![3], vec![3], vec![]]);
        assert_eq!(dag.levels(), vec![vec![0], vec![1, 2], vec![3]]);

        let chain = LaunchDag::chain(3);
        assert_eq!(chain.levels(), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(LaunchDag::independent(3).levels(), vec![vec![0, 1, 2]]);
        assert_eq!(LaunchDag::independent(0).levels(), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn level_barriers_strengthen_to_the_batch_schedule() {
        // 0 -> 1; 2 independent (level 0); 3 depends on 2 (level 1).
        let dag = LaunchDag::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(dag.levels(), vec![vec![0, 2], vec![1, 3]]);
        let strict = dag.level_barriers();
        // Every level-1 launch now depends on every level-0 launch.
        assert_eq!(strict.preds, vec![0, 2, 0, 2]);
        assert_eq!(strict.succs[0], vec![1, 3]);
        assert_eq!(strict.succs[2], vec![1, 3]);
        // Same leveling either way.
        assert_eq!(strict.levels(), dag.levels());
    }

    #[test]
    fn malformed_graphs_are_rejected() {
        // Wrong length.
        assert!(LaunchDag::independent(2).validate(3).is_err());
        // Inconsistent predecessor counts.
        let bad = LaunchDag {
            preds: vec![0, 0],
            succs: vec![vec![1], vec![]],
        };
        assert!(bad.validate(2).is_err());
        // A cycle.
        let cyclic = LaunchDag {
            preds: vec![1, 1],
            succs: vec![vec![1], vec![0]],
        };
        assert!(cyclic.validate(2).unwrap_err().message().contains("cycle"));
        // Out-of-range edge.
        let oob = LaunchDag {
            preds: vec![0, 1],
            succs: vec![vec![5], vec![]],
        };
        assert!(oob.validate(2).is_err());
        // Well-formed.
        assert!(LaunchDag::chain(4).validate(4).is_ok());
    }
}
