//! Parallel work-group execution: shared memory views, per-worker arenas
//! and the std::thread work-group scheduler.
//!
//! The work-group axis of an ND-range launch is embarrassingly parallel —
//! SYCL guarantees work-groups are independent (no barriers span groups,
//! and cross-group data races are undefined behaviour in the source
//! program). This module exploits that: work-groups are distributed over a
//! pool of OS threads, each running its groups' work-items co-operatively
//! exactly like the sequential engine.
//!
//! Three pieces make that safe and **deterministic**:
//!
//! * [`SharedPool`] — a launch-scoped view of the pre-existing device
//!   buffers (accessor-backed global memory). Element loads/stores go
//!   through raw typed pointers with bounds checks, so concurrent access
//!   from many worker threads needs no locking. Distinct work-groups of a
//!   well-formed kernel touch disjoint elements; a kernel that races with
//!   itself is broken on real hardware too.
//! * [`PlanPool`] — the memory interface handed to the plan executor: the
//!   shared view plus two **worker-private arenas** for allocations made
//!   during execution — a persistent pool for dense-constant
//!   materializations and a recycling scratch arena for allocas
//!   (private `memref.alloca`, work-group `sycl.local.alloca`), rewound
//!   at every work-group boundary so repeated allocas reuse storage
//!   instead of growing the heap. Workers never mutate shared allocation
//!   tables, so there is no allocation lock; the top two bits of a
//!   [`MemId`] route accesses to the right side.
//! * [`run_plan_batch`] — the scheduler, over a **batch** of mutually
//!   independent launches (a single launch, [`run_plan_launch`], is the
//!   batch of one). Workers drain the batch's launches in order, claiming
//!   work-groups from per-launch atomic cursors (dynamic load balancing
//!   within a launch, pipelining across launches), accumulate
//!   [`ExecStats`] locally per launch, and the per-worker counters are
//!   summed per launch after the join. Every counter is an integer total
//!   over work-groups and the coalescing tracker resets per group, so
//!   the merged statistics — and the cycle model charged from them — are
//!   bit-identical for any worker count and any interleaving.
//!
//! Determinism of errors: when several work-groups fail, the error of the
//! lexicographically smallest `(launch, group)` among those observed is
//! reported, matching the sequential engine whenever a single group is at
//! fault.

use crate::cost::{CostModel, ExecStats};
use crate::device::{cooperative_rounds, items_of_group, NdRangeSpec};
use crate::interp::{SimError, WorkGroupCtx};
use crate::memory::{dtype_of, dtype_of_data, zeroed_data, DataVec, MemId, MemoryPool};
use crate::plan::{KernelPlan, PlanCtx, PlanWorkItem};
use crate::value::RtValue;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Tag bit distinguishing worker-arena allocations from launch-shared
/// buffers in a [`MemId`].
const ARENA_BIT: u32 = 1 << 31;

/// Second tag bit (under [`ARENA_BIT`]): set for the worker's persistent
/// dense-constant pool, clear for the per-work-group scratch arena.
const CONST_BIT: u32 = 1 << 30;

// ----------------------------------------------------------------------
// SharedPool: lock-free views of the pre-launch buffers
// ----------------------------------------------------------------------

/// Typed base pointer of one shared buffer.
#[derive(Clone, Copy, Debug)]
enum BufPtr {
    F32(*mut f32),
    F64(*mut f64),
    I32(*mut i32),
    I64(*mut i64),
}

/// One shared buffer: its element pointer and length.
#[derive(Clone, Copy, Debug)]
struct SharedBuf {
    ptr: BufPtr,
    len: usize,
}

/// A launch-scoped, concurrently accessible view of every buffer that
/// existed in the [`MemoryPool`] when the launch started.
///
/// Construction borrows the pool mutably for the whole launch, so no other
/// code can observe or resize the buffers while workers hold raw pointers
/// into them. Element accesses are bounds-checked and panic like the
/// sequential `Vec` indexing they replace, and go through per-element
/// **relaxed atomics** (free on mainstream targets — they compile to the
/// plain loads/stores they replace): a simulated kernel that races with
/// itself across work-groups reads torn-by-element but well-defined
/// values, like on the GPU, instead of being undefined behaviour in the
/// host process.
pub struct SharedPool<'p> {
    bufs: Vec<SharedBuf>,
    _pool: PhantomData<&'p mut MemoryPool>,
}

// SAFETY: the raw pointers reference buffers exclusively borrowed for the
// lifetime `'p`; the view never grows or shrinks them, and every element
// access is atomic (no mixed atomic/non-atomic access while the view is
// alive, since the borrow keeps all safe `MemoryPool` APIs unreachable).
unsafe impl Send for SharedPool<'_> {}
unsafe impl Sync for SharedPool<'_> {}

/// Relaxed atomic element load through a raw pointer.
///
/// # Safety
///
/// `p.add(i)` must be in bounds of a live, properly aligned allocation
/// with no concurrent non-atomic access.
#[inline]
unsafe fn load32(p: *mut i32, i: usize) -> u32 {
    unsafe { std::sync::atomic::AtomicU32::from_ptr(p.add(i).cast()).load(Ordering::Relaxed) }
}

/// See [`load32`].
#[inline]
unsafe fn load64(p: *mut i64, i: usize) -> u64 {
    unsafe { std::sync::atomic::AtomicU64::from_ptr(p.add(i).cast()).load(Ordering::Relaxed) }
}

/// See [`load32`].
#[inline]
unsafe fn store32(p: *mut i32, i: usize, v: u32) {
    unsafe { std::sync::atomic::AtomicU32::from_ptr(p.add(i).cast()).store(v, Ordering::Relaxed) }
}

/// See [`load32`].
#[inline]
unsafe fn store64(p: *mut i64, i: usize, v: u64) {
    unsafe { std::sync::atomic::AtomicU64::from_ptr(p.add(i).cast()).store(v, Ordering::Relaxed) }
}

impl<'p> SharedPool<'p> {
    /// Snapshot every buffer of `pool` into a shareable view.
    pub fn new(pool: &'p mut MemoryPool) -> SharedPool<'p> {
        let bufs = pool
            .buffers_mut()
            .iter_mut()
            .map(|data| {
                let len = data.len();
                let ptr = match data {
                    DataVec::F32(v) => BufPtr::F32(v.as_mut_ptr()),
                    DataVec::F64(v) => BufPtr::F64(v.as_mut_ptr()),
                    DataVec::I32(v) => BufPtr::I32(v.as_mut_ptr()),
                    DataVec::I64(v) => BufPtr::I64(v.as_mut_ptr()),
                };
                SharedBuf { ptr, len }
            })
            .collect();
        SharedPool {
            bufs,
            _pool: PhantomData,
        }
    }

    #[inline]
    fn buf(&self, id: MemId, index: i64) -> (SharedBuf, usize) {
        let b = self.bufs[id.0 as usize];
        let i = index as usize;
        assert!(
            i < b.len,
            "device memory access out of bounds: index {index} of buffer {} (len {})",
            id.0,
            b.len
        );
        (b, i)
    }

    /// Load one element (same typing rules as [`DataVec::get`]).
    #[inline]
    pub fn load(&self, id: MemId, index: i64) -> RtValue {
        let (b, i) = self.buf(id, index);
        // SAFETY: `i` is in bounds, the storage outlives `self`, and all
        // concurrent access goes through these atomic helpers.
        unsafe {
            match b.ptr {
                BufPtr::F32(p) => RtValue::F32(f32::from_bits(load32(p.cast(), i))),
                BufPtr::F64(p) => RtValue::F64(f64::from_bits(load64(p.cast(), i))),
                BufPtr::I32(p) => RtValue::Int(load32(p, i) as i32 as i64),
                BufPtr::I64(p) => RtValue::Int(load64(p, i) as i64),
            }
        }
    }

    /// Store one element (same coercions and mismatch panic as
    /// [`DataVec::set`]).
    #[inline]
    pub fn store(&self, id: MemId, index: i64, value: RtValue) {
        let (b, i) = self.buf(id, index);
        // SAFETY: `i` is in bounds, the storage outlives `self`, and all
        // concurrent access goes through these atomic helpers.
        unsafe {
            match (b.ptr, value) {
                (BufPtr::F32(p), RtValue::F32(x)) => store32(p.cast(), i, x.to_bits()),
                (BufPtr::F32(p), RtValue::F64(x)) => store32(p.cast(), i, (x as f32).to_bits()),
                (BufPtr::F64(p), RtValue::F64(x)) => store64(p.cast(), i, x.to_bits()),
                (BufPtr::F64(p), RtValue::F32(x)) => store64(p.cast(), i, (x as f64).to_bits()),
                (BufPtr::I32(p), RtValue::Int(x)) => store32(p, i, x as i32 as u32),
                (BufPtr::I64(p), RtValue::Int(x)) => store64(p, i, x as u64),
                (slot, v) => panic!("type-mismatched store of {v:?} into {slot:?}"),
            }
        }
    }

    /// Element size in bytes (drives transaction coalescing).
    #[inline]
    pub fn elem_bytes(&self, id: MemId) -> usize {
        match self.bufs[id.0 as usize].ptr {
            BufPtr::F32(_) | BufPtr::I32(_) => 4,
            BufPtr::F64(_) | BufPtr::I64(_) => 8,
        }
    }
}

// ----------------------------------------------------------------------
// PlanPool: shared view + worker-private arenas
// ----------------------------------------------------------------------

/// A recycling allocator for per-execution allocations (private
/// `memref.alloca`, work-group `sycl.local.alloca`).
///
/// Kernels re-execute the same allocation sites for every work-item of
/// every work-group, so instead of growing a fresh buffer per execution
/// (the PR 2 behaviour — one heap allocation per dynamic alloca for the
/// whole launch), the arena keeps its buffers and a cursor: a reset (at
/// every work-group boundary) rewinds the cursor, and subsequent
/// allocations re-zero the existing buffer in place (a memset, no
/// malloc/free) whenever type and length match — which they always do
/// after the first group, since the allocation sequence of a kernel is
/// deterministic. Resetting between groups is sound because memrefs are
/// not storable values: no allocation can outlive its work-group.
#[derive(Default)]
struct ScratchArena {
    bufs: Vec<DataVec>,
    cursor: usize,
}

impl ScratchArena {
    /// Arena-local index of zero-filled storage for `len` elements of
    /// `elem`, recycling the buffer at the cursor when it matches.
    fn alloc_zeroed(&mut self, elem: &sycl_mlir_ir::Type, len: usize) -> u32 {
        let dt = dtype_of(elem);
        let idx = self.cursor;
        self.cursor += 1;
        if let Some(buf) = self.bufs.get_mut(idx) {
            if buf.len() == len && dtype_of_data(buf) == dt {
                match buf {
                    DataVec::F32(v) => v.fill(0.0),
                    DataVec::F64(v) => v.fill(0.0),
                    DataVec::I32(v) => v.fill(0),
                    DataVec::I64(v) => v.fill(0),
                }
            } else {
                *buf = zeroed_data(dt, len);
            }
        } else {
            self.bufs.push(zeroed_data(dt, len));
        }
        idx as u32
    }

    /// Rewind the cursor; buffers are kept for recycling.
    fn reset(&mut self) {
        self.cursor = 0;
    }

    #[inline]
    fn buf(&self, idx: u32) -> &DataVec {
        &self.bufs[idx as usize]
    }

    #[inline]
    fn buf_mut(&mut self, idx: u32) -> &mut DataVec {
        &mut self.bufs[idx as usize]
    }
}

/// The memory interface of one plan-engine worker: launch-shared buffers
/// plus two private arenas for allocations made during execution — a
/// persistent pool for dense-constant materializations (they are cached
/// across work-groups and launches) and a recycling scratch arena for allocas,
/// recycled at every work-group boundary. Arena [`MemId`]s carry
/// a private tag bit (plus a second one for the persistent side); allocation
/// results can never escape to other workers (memrefs are not storable
/// values), so the split is invisible to kernels.
pub struct PlanPool<'a, 'p> {
    shared: &'a SharedPool<'p>,
    consts: MemoryPool,
    scratch: ScratchArena,
}

impl<'a, 'p> PlanPool<'a, 'p> {
    /// A fresh pool (empty arenas) over `shared`.
    pub fn new(shared: &'a SharedPool<'p>) -> PlanPool<'a, 'p> {
        PlanPool {
            shared,
            consts: MemoryPool::new(),
            scratch: ScratchArena::default(),
        }
    }

    /// Allocate `data` in the worker's persistent constant pool (dense
    /// constants: survives work-group and launch boundaries).
    pub fn alloc(&mut self, data: DataVec) -> MemId {
        let id = self.consts.alloc(data);
        MemId(id.0 | ARENA_BIT | CONST_BIT)
    }

    /// Allocate zero-filled scratch storage for `len` elements of `elem`
    /// (allocas: recycled at the next work-group boundary).
    pub fn alloc_zeroed(&mut self, elem: &sycl_mlir_ir::Type, len: usize) -> MemId {
        MemId(self.scratch.alloc_zeroed(elem, len) | ARENA_BIT)
    }

    /// Load one element (shared buffers or either arena).
    #[inline]
    pub fn load(&self, id: MemId, index: i64) -> RtValue {
        if id.0 & ARENA_BIT != 0 {
            let idx = id.0 & !(ARENA_BIT | CONST_BIT);
            if id.0 & CONST_BIT != 0 {
                self.consts.load(MemId(idx), index)
            } else {
                self.scratch.buf(idx).get(index as usize)
            }
        } else {
            self.shared.load(id, index)
        }
    }

    /// Store one element (shared buffers or either arena).
    #[inline]
    pub fn store(&mut self, id: MemId, index: i64, value: RtValue) {
        if id.0 & ARENA_BIT != 0 {
            let idx = id.0 & !(ARENA_BIT | CONST_BIT);
            if id.0 & CONST_BIT != 0 {
                self.consts.store(MemId(idx), index, value);
            } else {
                self.scratch.buf_mut(idx).set(index as usize, value);
            }
        } else {
            self.shared.store(id, index, value);
        }
    }

    /// Element size in bytes (drives transaction coalescing).
    #[inline]
    pub fn elem_bytes(&self, id: MemId) -> usize {
        if id.0 & ARENA_BIT != 0 {
            let idx = id.0 & !(ARENA_BIT | CONST_BIT);
            if id.0 & CONST_BIT != 0 {
                self.consts.data(MemId(idx)).elem_bytes()
            } else {
                self.scratch.buf(idx).elem_bytes()
            }
        } else {
            self.shared.elem_bytes(id)
        }
    }

    /// Recycle the scratch arena (call between work-groups).
    pub(crate) fn next_work_group(&mut self) {
        self.scratch.reset();
    }
}

/// Per-worker execution context of the plan engine: the memory interface,
/// the cost model, locally accumulated statistics and the per-work-group
/// coalescing tracker. The plan engine needs no IR access at run time, so
/// (unlike the tree-walk [`crate::interp::ExecCtx`]) this context carries
/// no `&Module` — which is what lets it cross thread boundaries.
pub struct PlanExecCtx<'a, 'p> {
    /// The worker's memory interface (shared buffers + private arenas).
    pub pool: PlanPool<'a, 'p>,
    /// The cost model charged per dynamic event.
    pub cost: &'a CostModel,
    /// Statistics accumulated by this worker (merged after the join).
    pub stats: ExecStats,
    /// Per-work-group state (coalescing tracker).
    pub wg: WorkGroupCtx,
}

impl<'a, 'p> PlanExecCtx<'a, 'p> {
    /// A fresh worker context over `shared` with zeroed statistics.
    pub fn new(shared: &'a SharedPool<'p>, cost: &'a CostModel) -> PlanExecCtx<'a, 'p> {
        PlanExecCtx {
            pool: PlanPool::new(shared),
            cost,
            stats: ExecStats::default(),
            wg: WorkGroupCtx::default(),
        }
    }

    /// Reset work-group-shared state and recycle the scratch arena (call
    /// between work-groups).
    pub fn next_work_group(&mut self) {
        self.wg.reset();
        self.pool.next_work_group();
    }
}

// ----------------------------------------------------------------------
// The persistent worker pool
// ----------------------------------------------------------------------

/// A lifetime-erased job: a trampoline plus a pointer to the launch state
/// it operates on. The submitting launch keeps that state alive until its
/// completion latch reports every job finished, which is what makes the
/// erasure sound.
struct RawJob {
    run: unsafe fn(*const ()),
    ctx: *const (),
}

// SAFETY: the pointee is a `LaunchState` whose referents are `Sync`; the
// submitting thread blocks until the job completes.
unsafe impl Send for RawJob {}

struct PoolState {
    queue: VecDeque<RawJob>,
    spawned: usize,
}

/// The process-wide pool of simulator worker threads. Workers are spawned
/// lazily up to the largest worker count any launch has requested and then
/// parked on a condvar between launches — per-launch cost is a queue push
/// and a wakeup instead of an OS thread spawn (which dominates wall time
/// for the evaluation's many small launches).
struct WorkerPool {
    state: Mutex<PoolState>,
    available: Condvar,
}

static POOL: OnceLock<WorkerPool> = OnceLock::new();

fn pool() -> &'static WorkerPool {
    POOL.get_or_init(|| WorkerPool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            spawned: 0,
        }),
        available: Condvar::new(),
    })
}

/// Grow the pool to at least `n` workers.
fn ensure_workers(n: usize) {
    let p = pool();
    let mut st = p.state.lock().unwrap();
    while st.spawned < n {
        st.spawned += 1;
        std::thread::Builder::new()
            .name(format!("sim-worker-{}", st.spawned))
            .spawn(worker_main)
            .expect("failed to spawn simulator worker thread");
    }
}

/// Body of a pool worker: sleep until a job arrives, run it, repeat. The
/// trampoline never unwinds (panics are caught and transported by the
/// launch state), so a worker survives any number of launches.
fn worker_main() {
    let p = pool();
    loop {
        let job = {
            let mut st = p.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                st = p.available.wait(st).unwrap();
            }
        };
        // SAFETY: the submitting launch keeps `job.ctx` alive until its
        // latch observes this job's completion.
        unsafe { (job.run)(job.ctx) };
    }
}

// ----------------------------------------------------------------------
// The work-group scheduler
// ----------------------------------------------------------------------

/// One kernel launch of a batch handed to [`run_plan_batch`]: a decoded
/// plan, its bound arguments and its geometry. All launches of a batch
/// must be mutually independent (no data hazards) — the runtime's queue
/// scheduler guarantees this by batching only dependency-free levels of
/// its topological order.
pub struct PlanLaunch<'a> {
    /// The decoded (possibly fused) kernel.
    pub plan: &'a KernelPlan,
    /// Kernel arguments, excluding the trailing item parameter.
    pub args: &'a [RtValue],
    /// Launch geometry.
    pub nd: NdRangeSpec,
}

/// Per-launch scheduling state: the geometry plus the atomic work-group
/// cursor workers claim from.
struct LaunchUnit<'a> {
    plan: &'a KernelPlan,
    args: &'a [RtValue],
    nd: NdRangeSpec,
    groups: [i64; 3],
    total: usize,
    /// Claim cursor: the next unclaimed linear work-group index.
    next: AtomicUsize,
}

/// One worker's outcome: its per-launch accumulated counters and the
/// first failing work-group it observed (launch index, linear group
/// index, error).
struct WorkerResult {
    stats: Vec<ExecStats>,
    error: Option<(usize, usize, SimError)>,
}

/// Everything a batch shares with its pool jobs. Lives on the launching
/// thread's stack for the duration of [`run_plan_batch`]; the completion
/// latch guarantees no job outlives it.
struct LaunchState<'a, 'p> {
    units: Vec<LaunchUnit<'a>>,
    shared: &'a SharedPool<'p>,
    cost: &'a CostModel,
    abort: AtomicBool,
    results: Mutex<Vec<WorkerResult>>,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Completion latch: (jobs still running, wakeup for the launcher).
    latch: (Mutex<usize>, Condvar),
}

impl LaunchState<'_, '_> {
    /// Run one worker loop against this launch, recording the outcome.
    /// Never unwinds.
    fn run_worker(&self) {
        let outcome = catch_unwind(AssertUnwindSafe(|| worker_loop(self)));
        match outcome {
            Ok(result) => self.results.lock().unwrap().push(result),
            Err(payload) => {
                // A panicking work-item (out-of-bounds access, type-
                // mismatched store): park the payload for the launcher to
                // re-throw, mirroring the sequential engine.
                self.abort.store(true, Ordering::Relaxed);
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
        let mut left = self.latch.0.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.latch.1.notify_all();
        }
    }
}

/// Pool-job trampoline.
///
/// # Safety
///
/// `ctx` must point to a live [`LaunchState`] that stays alive until the
/// state's latch observes this job's completion.
unsafe fn launch_job(ctx: *const ()) {
    let state = unsafe { &*(ctx as *const LaunchState<'_, '_>) };
    state.run_worker();
}

/// Group coordinates of linear index `idx` (row-major over `groups`, the
/// same order the sequential engine iterates).
#[inline]
fn group_of(groups: [i64; 3], idx: usize) -> [i64; 3] {
    let idx = idx as i64;
    let g2 = idx % groups[2];
    let rest = idx / groups[2];
    [rest / groups[1], rest % groups[1], g2]
}

/// Execute every work-item of one work-group to completion, honouring
/// barriers co-operatively.
fn run_group(
    plan: &KernelPlan,
    args: &[RtValue],
    nd: NdRangeSpec,
    group: [i64; 3],
    ctx: &mut PlanExecCtx<'_, '_>,
    pctx: &mut PlanCtx,
) -> Result<(), SimError> {
    let mut items: Vec<PlanWorkItem> = items_of_group(nd, group)
        .into_iter()
        .map(|item| PlanWorkItem::new(plan, args, item))
        .collect::<Result<_, _>>()?;
    cooperative_rounds(&mut items, group, |wi| wi.run(plan, ctx, pctx))
}

/// Claim-and-run loop of one worker thread: drain the batch's launches in
/// order, claiming work-groups from each launch's atomic cursor. The
/// worker's memory interface — and with it the recyclable scratch arena —
/// is reused across every launch of the batch; only the statistics
/// accumulator is swapped per launch (counters must merge per launch).
fn worker_loop(launch: &LaunchState<'_, '_>) -> WorkerResult {
    let mut ctx = PlanExecCtx::new(launch.shared, launch.cost);
    let mut stats = vec![ExecStats::default(); launch.units.len()];
    let mut error = None;
    'units: for (li, unit) in launch.units.iter().enumerate() {
        let mut pctx = PlanCtx::new(unit.plan);
        loop {
            if launch.abort.load(Ordering::Relaxed) {
                stats[li] = std::mem::take(&mut ctx.stats);
                break 'units;
            }
            let idx = unit.next.fetch_add(1, Ordering::Relaxed);
            if idx >= unit.total {
                break;
            }
            let group = group_of(unit.groups, idx);
            if let Err(e) = run_group(unit.plan, unit.args, unit.nd, group, &mut ctx, &mut pctx) {
                error = Some((li, idx, e));
                launch.abort.store(true, Ordering::Relaxed);
                stats[li] = std::mem::take(&mut ctx.stats);
                break 'units;
            }
            ctx.next_work_group();
            pctx.next_work_group();
        }
        stats[li] = std::mem::take(&mut ctx.stats);
    }
    WorkerResult { stats, error }
}

/// Execute a pre-decoded [`KernelPlan`] over `nd` on `threads` workers
/// (`<= 1` runs the same code on the calling thread; `> 1` enlists
/// `threads - 1` persistent pool workers alongside the calling thread).
/// Statistics are merged deterministically: results are bit-identical for
/// every worker count.
pub fn run_plan_launch(
    plan: &KernelPlan,
    args: &[RtValue],
    nd: NdRangeSpec,
    pool_mem: &mut MemoryPool,
    cost: &CostModel,
    threads: usize,
) -> Result<ExecStats, SimError> {
    let mut stats = run_plan_batch(&[PlanLaunch { plan, args, nd }], pool_mem, cost, threads)?;
    Ok(stats.pop().expect("one launch in, one stats out"))
}

/// Execute a batch of mutually independent plan launches concurrently on
/// `threads` workers, sharing one worker pool across all of them.
///
/// Every worker drains the launches in order through per-launch atomic
/// claim cursors: while early launches still have unclaimed work-groups,
/// all workers help there; as a launch runs dry, workers move on to the
/// next instead of idling at a join barrier — launch-level parallelism on
/// top of PR 2's work-group-level parallelism. Statistics are accumulated
/// per worker *per launch* and merged per launch after the join, so every
/// launch's [`ExecStats`] (and the cycle model charged from it) is
/// bit-identical to running the launches one at a time, for every worker
/// count and any interleaving.
///
/// When several work-groups fail, the error of the lexicographically
/// smallest `(launch, group)` among those observed is reported, matching
/// sequential execution whenever a single group is at fault.
pub fn run_plan_batch(
    launches: &[PlanLaunch<'_>],
    pool_mem: &mut MemoryPool,
    cost: &CostModel,
    threads: usize,
) -> Result<Vec<ExecStats>, SimError> {
    let mut units = Vec::with_capacity(launches.len());
    let mut total_groups = 0_usize;
    for l in launches {
        l.nd.validate()?;
        let groups = l.nd.groups();
        let total = (groups[0] * groups[1] * groups[2]) as usize;
        total_groups += total;
        units.push(LaunchUnit {
            plan: l.plan,
            args: l.args,
            nd: l.nd,
            groups,
            total,
            next: AtomicUsize::new(0),
        });
    }
    let shared = SharedPool::new(pool_mem);
    // Never enlist more workers than there are work-groups in the batch.
    let workers = threads.max(1).min(total_groups.max(1));

    let state = LaunchState {
        units,
        shared: &shared,
        cost,
        abort: AtomicBool::new(false),
        results: Mutex::new(Vec::with_capacity(workers)),
        panic: Mutex::new(None),
        latch: (Mutex::new(workers), Condvar::new()),
    };

    if workers > 1 {
        ensure_workers(workers - 1);
        let p = pool();
        let mut st = p.state.lock().unwrap();
        for _ in 0..workers - 1 {
            st.queue.push_back(RawJob {
                run: launch_job,
                ctx: &state as *const LaunchState<'_, '_> as *const (),
            });
        }
        drop(st);
        p.available.notify_all();
    }
    // The calling thread is always worker 0. `run_worker` catches panics,
    // so the latch below is reached (and the pool jobs drained) even when
    // a work-item panics.
    state.run_worker();

    // Wait until every enlisted worker has finished; only then may `state`
    // (and the raw pointers handed to the pool) go out of scope.
    {
        let mut left = state.latch.0.lock().unwrap();
        while *left > 0 {
            left = state.latch.1.wait(left).unwrap();
        }
    }
    if let Some(payload) = state.panic.lock().unwrap().take() {
        resume_unwind(payload);
    }

    let mut merged = vec![ExecStats::default(); launches.len()];
    let mut first_error: Option<(usize, usize, SimError)> = None;
    for r in state.results.into_inner().unwrap() {
        for (m, s) in merged.iter_mut().zip(&r.stats) {
            m.add(s);
        }
        if let Some((li, gi, e)) = r.error {
            if first_error
                .as_ref()
                .is_none_or(|(fl, fg, _)| (li, gi) < (*fl, *fg))
            {
                first_error = Some((li, gi, e));
            }
        }
    }
    if let Some((_, _, e)) = first_error {
        return Err(e);
    }
    for (m, unit) in merged.iter_mut().zip(&state.units) {
        m.work_groups = unit.total as u64;
        m.work_items = unit.nd.work_items() as u64;
        m.charge(cost);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_linearization_matches_sequential_order() {
        let groups = [2_i64, 3, 4];
        let mut expect = Vec::new();
        for g0 in 0..groups[0] {
            for g1 in 0..groups[1] {
                for g2 in 0..groups[2] {
                    expect.push([g0, g1, g2]);
                }
            }
        }
        let got: Vec<[i64; 3]> = (0..expect.len()).map(|i| group_of(groups, i)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn shared_pool_roundtrip_and_arena_routing() {
        let mut pool = MemoryPool::new();
        let f = pool.alloc(DataVec::F32(vec![0.0; 4]));
        let l = pool.alloc(DataVec::I64(vec![0; 2]));
        {
            let shared = SharedPool::new(&mut pool);
            let mut pp = PlanPool::new(&shared);
            pp.store(f, 1, RtValue::F32(1.5));
            pp.store(l, 0, RtValue::Int(-3));
            assert_eq!(pp.load(f, 1), RtValue::F32(1.5));
            assert_eq!(pp.load(l, 0), RtValue::Int(-3));
            assert_eq!(pp.elem_bytes(f), 4);
            assert_eq!(pp.elem_bytes(l), 8);

            // Arena allocations are tagged and never alias shared ids.
            let a = pp.alloc(DataVec::I32(vec![7; 3]));
            assert_ne!(a.0 & ARENA_BIT, 0);
            pp.store(a, 2, RtValue::Int(9));
            assert_eq!(pp.load(a, 2), RtValue::Int(9));
            assert_eq!(pp.load(a, 0), RtValue::Int(7));
        }
        // Writes through the shared view landed in the original pool.
        assert_eq!(pool.load(f, 1), RtValue::F32(1.5));
        assert_eq!(pool.load(l, 0), RtValue::Int(-3));
    }

    #[test]
    fn scratch_arena_recycles_buffers_across_work_groups() {
        let ctx = sycl_mlir_ir::Context::new();
        let f32t = ctx.f32_type();
        let mut pool = MemoryPool::new();
        let shared = SharedPool::new(&mut pool);
        let mut pp = PlanPool::new(&shared);

        // A dense-constant allocation persists across group boundaries…
        let k = pp.alloc(DataVec::F32(vec![4.5; 2]));
        assert_ne!(k.0 & ARENA_BIT, 0);
        assert_ne!(k.0 & CONST_BIT, 0);

        // …while alloca scratch is recycled: same id, re-zeroed storage.
        let a = pp.alloc_zeroed(&f32t, 3);
        assert_ne!(a.0 & ARENA_BIT, 0);
        assert_eq!(a.0 & CONST_BIT, 0);
        pp.store(a, 1, RtValue::F32(7.0));
        assert_eq!(pp.load(a, 1), RtValue::F32(7.0));

        pp.next_work_group();
        let a2 = pp.alloc_zeroed(&f32t, 3);
        assert_eq!(a2, a, "matching allocation is recycled");
        assert_eq!(
            pp.load(a2, 1),
            RtValue::F32(0.0),
            "recycled storage re-zeroed"
        );

        // A shape/type mismatch at the cursor replaces the buffer.
        pp.next_work_group();
        let b = pp.alloc_zeroed(&ctx.i64_type(), 5);
        assert_eq!(b, a, "same slot, new storage");
        assert_eq!(pp.load(b, 4), RtValue::Int(0));
        assert_eq!(pp.elem_bytes(b), 8);

        // The constant survived all resets.
        assert_eq!(pp.load(k, 0), RtValue::F32(4.5));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shared_pool_bounds_checked() {
        let mut pool = MemoryPool::new();
        let f = pool.alloc(DataVec::F32(vec![0.0; 2]));
        let shared = SharedPool::new(&mut pool);
        shared.load(f, 5);
    }
}
