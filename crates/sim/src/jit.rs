//! The closure-JIT execution tier: a [`KernelPlan`] compiled to a
//! direct-threaded chain of Rust closures.
//!
//! The third (and fastest) execution tier. Where the plan engine decodes
//! once per launch and then *interprets* — a match over the opcode on
//! every executed instruction, re-reading operand fields from the
//! [`Instr`] each time — this tier runs a one-time **compile** step over
//! the decoded (and fused) bytecode that specializes one boxed closure
//! per instruction: the opcode match, operand registers, pre-parsed
//! predicates, dimension constants and narrowing flags are all captured
//! (and monomorphized away) at compile time, leaving a single indirect
//! call per executed instruction. No code generation backend, no
//! `unsafe` — the same pre-resolution idea as rhai's pre-hashed call
//! paths, applied to the plan's register machine.
//!
//! **Bit-identity contract.** The compiled chain executes *exactly* the
//! plan interpreter's semantics, arm for arm: statistics bumps happen in
//! the same order relative to operand checks, error strings are
//! byte-identical, memory/coalescing events fire with the same site and
//! instance numbering, and execution limits are charged per instruction
//! with the same `Instr::op_weight` table (pre-flattened into a
//! per-function weight array) — so op budgets, deadlines and injected
//! faults trip with the same [`LimitKind`](crate::interp::LimitKind) at
//! the same `(launch, group)` position as both other engines. The
//! differential, fuzz and stress suites hold all three tiers
//! bit-identical over the whole benchsuite.
//!
//! **Tier selection** lives in [`crate::device`]: the plan cache counts
//! launches per cached plan and compiles the closure chain once a kernel
//! crosses [`Device::jit_threshold`](crate::device::Device::jit_threshold)
//! launches (`--jit=on|off|always`, `SYCL_MLIR_SIM_JIT`). The compiled
//! [`JitKernel`] is cached next to its plan and invalidated by the same
//! module mutation epoch.

use crate::device::{cooperative_rounds, cooperative_rounds_uniform, items_of_group, NdRangeSpec};
use crate::interp::{SimError, Stop};
use crate::plan::{
    err, materialize_dense, DimSrc, FloatBin, Instr, IntBin, ItemQ, KernelPlan, MathOp, PlanCtx,
    Reg, MAX_STEPS,
};
use crate::pool::PlanExecCtx;
use crate::value::{MemRefVal, NdItemVal, RtValue, Space, VecVal};

// ----------------------------------------------------------------------
// Compiled form
// ----------------------------------------------------------------------

/// What the executed closure tells the driver loop to do next.
enum Ctl {
    /// Fall through to the next instruction.
    Next,
    /// Jump to a pc within the current function.
    Jump(u32),
    /// Suspend at a `sycl.group.barrier`.
    Barrier,
    /// Push a frame for the given plan function (the closure has already
    /// appended and seeded the callee's register window).
    Call(u32),
    /// Pop the current frame; `true` when at most four values were
    /// returned (the plan interpreter's fixed-array fast path).
    Ret(bool),
}

/// One compiled instruction: all operands captured, one indirect call.
type JitOp = Box<dyn Fn(&mut Lane<'_, '_, '_>) -> Result<Ctl, SimError> + Send + Sync>;

#[inline]
fn boxed<F>(f: F) -> JitOp
where
    F: Fn(&mut Lane<'_, '_, '_>) -> Result<Ctl, SimError> + Send + Sync + 'static,
{
    Box::new(f)
}

/// One plan function compiled to closures, 1:1 with its bytecode (jump
/// targets, profile indices and per-pc limit weights stay valid).
struct JitFunc {
    /// Compiled instructions, same indexing as [`FuncPlan::code`].
    ///
    /// [`FuncPlan::code`]: crate::plan::FuncPlan::code
    ops: Box<[JitOp]>,
    /// Pre-flattened `Instr::op_weight` per pc (the limited path reads
    /// an array instead of matching on the instruction).
    weights: Box<[u64]>,
    /// Register-window size of one frame of this function.
    reg_count: u32,
}

/// A [`KernelPlan`] compiled to per-instruction closures — the
/// closure-JIT tier's executable form. Immutable and shared exactly like
/// the plan it mirrors.
pub struct JitKernel {
    funcs: Vec<JitFunc>,
}

impl std::fmt::Debug for JitKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JitKernel")
            .field("funcs", &self.funcs.len())
            .finish()
    }
}

// Compiled kernels are shared across worker threads exactly like plans.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<JitKernel>();
};

// ----------------------------------------------------------------------
// Execution state
// ----------------------------------------------------------------------

/// The mutable state a compiled closure may touch, split off the driver
/// loop's own fields (frames, step counter) so both can borrow at once.
struct Lane<'l, 'a, 'p> {
    /// All frames' registers, contiguous (see [`PlanWorkItem::regs`]).
    ///
    /// [`PlanWorkItem::regs`]: crate::plan::PlanWorkItem
    regs: &'l mut Vec<RtValue>,
    /// Register base of the current frame.
    base: usize,
    /// Per-site visit counters feeding the coalescing tracker.
    visits: &'l mut [u32],
    /// The work-item's position bundle.
    item: &'l NdItemVal,
    /// Return-value staging buffer (padded to 4 on the small path so the
    /// caller-side copy panics exactly like the interpreter's `[RtValue;
    /// 4]` on an arity overflow).
    ret: &'l mut Vec<RtValue>,
    /// Worker memory/stats context.
    ctx: &'l mut PlanExecCtx<'a, 'p>,
    /// Worker plan state (dense cache, local allocas, profile, limits).
    pctx: &'l mut PlanCtx,
    /// The source plan (dense constants, call metadata).
    plan: &'l KernelPlan,
}

impl Lane<'_, '_, '_> {
    #[inline(always)]
    fn reg(&self, r: Reg) -> RtValue {
        self.regs[self.base + r as usize]
    }

    #[inline(always)]
    fn set(&mut self, r: Reg, v: RtValue) {
        self.regs[self.base + r as usize] = v;
    }

    #[inline(always)]
    fn int(&self, r: Reg, what: &'static str) -> Result<i64, SimError> {
        self.reg(r).as_int().ok_or_else(|| err(what))
    }

    #[inline(always)]
    fn flt(&self, r: Reg, what: &'static str) -> Result<f64, SimError> {
        self.reg(r).as_f64().ok_or_else(|| err(what))
    }

    /// Resolve a dimension operand (same errors as the interpreter).
    #[inline]
    fn dim(&self, dim: DimSrc) -> Result<usize, SimError> {
        match dim {
            DimSrc::Const(d) => Ok(d as usize),
            DimSrc::Reg(r) => {
                let d = self
                    .reg(r)
                    .as_int()
                    .ok_or_else(|| err("non-constant dimension operand"))?;
                if !(0..3).contains(&d) {
                    return Err(err(format!("dimension {d} out of range")));
                }
                Ok(d as usize)
            }
        }
    }

    /// Record the cost of a memory access — an exact replica of the plan
    /// interpreter's accounting (same coalescing model, same site and
    /// instance numbering).
    #[inline]
    fn mem_event(&mut self, site: u32, mr: &MemRefVal, addr: i64) -> Result<(), SimError> {
        match mr.space {
            Space::Private => self.ctx.stats.private_accesses += 1,
            Space::Constant => self.ctx.stats.constant_accesses += 1,
            Space::Local => self.ctx.stats.local_accesses += 1,
            Space::Global => {
                self.ctx.stats.global_accesses += 1;
                let instance = {
                    let slot = &mut self.visits[site as usize];
                    *slot += 1;
                    *slot
                };
                let subgroup =
                    (self.item.local_linear_id() / self.ctx.cost.subgroup_size as i64) as u32;
                let bytes = self.ctx.pool.elem_bytes(mr.mem) as i64;
                let segment = ((mr.mem.0 as u64) << 40)
                    | ((addr * bytes) / self.ctx.cost.transaction_bytes as i64) as u64;
                if self.ctx.wg.record((site, instance, subgroup), segment) {
                    self.ctx.stats.global_transactions += 1;
                }
            }
        }
        Ok(())
    }

    /// The shared load/store addressing prologue: memref check, index
    /// conversion, linearization and the memory event.
    #[inline]
    fn load_addr(
        &mut self,
        mem: Reg,
        idx: &[Reg; 3],
        rank: u8,
        site: u32,
        what: &'static str,
    ) -> Result<(MemRefVal, i64), SimError> {
        let mr = self.reg(mem).as_memref().ok_or_else(|| err(what))?;
        let mut indices = [0_i64; 3];
        for d in 0..rank as usize {
            indices[d] = self.int(idx[d], "non-int index")?;
        }
        let addr = mr.linearize(&indices[..rank as usize]);
        self.mem_event(site, &mr, addr)?;
        Ok((mr, addr))
    }

    /// Pool load with per-site bounds-check elision: sites the verifier
    /// proved in-bounds for this launch take the unchecked path, all
    /// others keep the checked path and its exact panic text (mirrors
    /// the plan interpreter's `pool_load!`).
    #[inline(always)]
    fn pool_load(&mut self, site: u32, mem: crate::memory::MemId, addr: i64) -> RtValue {
        if self.pctx.site_proven(site) {
            self.ctx.pool.load_proven(mem, addr)
        } else {
            self.ctx.pool.load(mem, addr)
        }
    }

    /// Pool store with per-site bounds-check elision (see
    /// [`Lane::pool_load`]).
    #[inline(always)]
    fn pool_store(&mut self, site: u32, mem: crate::memory::MemId, addr: i64, v: RtValue) {
        if self.pctx.site_proven(site) {
            self.ctx.pool.store_proven(mem, addr, v);
        } else {
            self.ctx.pool.store(mem, addr, v);
        }
    }
}

/// One frame of a [`JitItem`]'s call stack.
struct JitFrame {
    func: u32,
    pc: u32,
    /// Base of this frame's registers in the flat register file.
    base: u32,
}

/// One work-item's resumable execution state over a [`JitKernel`] —
/// the closure tier's counterpart of [`PlanWorkItem`], reusable across
/// work-items via [`JitItem::reset`] so per-item allocations amortize to
/// zero within a worker.
///
/// [`PlanWorkItem`]: crate::plan::PlanWorkItem
struct JitItem {
    regs: Vec<RtValue>,
    frames: Vec<JitFrame>,
    visits: Vec<u32>,
    ret: Vec<RtValue>,
    item: NdItemVal,
    finished: bool,
    steps: u64,
}

impl JitItem {
    /// A placeholder slot, bound to a real work-item by [`JitItem::reset`].
    fn empty() -> JitItem {
        JitItem {
            regs: Vec::new(),
            frames: Vec::new(),
            visits: Vec::new(),
            ret: Vec::new(),
            item: NdItemVal {
                global_id: [0; 3],
                local_id: [0; 3],
                group_id: [0; 3],
                global_range: [1; 3],
                local_range: [1; 3],
                rank: 1,
            },
            finished: false,
            steps: 0,
        }
    }

    /// Rebind this slot to a fresh work-item: identical argument binding
    /// (and arity error) to [`PlanWorkItem::new`], with every register
    /// reset to `Unit` so no stale value from the previous item survives.
    ///
    /// [`PlanWorkItem::new`]: crate::plan::PlanWorkItem::new
    fn reset(
        &mut self,
        plan: &KernelPlan,
        args: &[RtValue],
        item: NdItemVal,
    ) -> Result<(), SimError> {
        let kernel = &plan.funcs[0];
        self.regs.clear();
        self.regs.resize(kernel.reg_count as usize, RtValue::Unit);
        self.frames.clear();
        self.frames.push(JitFrame {
            func: 0,
            pc: 0,
            base: 0,
        });
        self.visits.clear();
        self.visits.resize(plan.mem_sites as usize, 0);
        self.ret.clear();
        self.item = item;
        self.finished = false;
        self.steps = 0;
        let params = &kernel.params;
        let value_params = if kernel.has_item_param {
            &params[..params.len() - 1]
        } else {
            &params[..]
        };
        if value_params.len() != args.len() {
            return Err(err(format!(
                "kernel expects {} arguments, got {}",
                value_params.len(),
                args.len()
            )));
        }
        for (&p, &a) in value_params.iter().zip(args) {
            self.regs[p as usize] = a;
        }
        if kernel.has_item_param {
            self.regs[*params.last().unwrap() as usize] = RtValue::Item(item);
        }
        Ok(())
    }

    /// Run until the next barrier or completion. Monomorphized over the
    /// profiling and limit-metering switches exactly like the plan
    /// interpreter, so the default run carries no per-instruction branch.
    fn run(
        &mut self,
        jit: &JitKernel,
        plan: &KernelPlan,
        ctx: &mut PlanExecCtx<'_, '_>,
        pctx: &mut PlanCtx,
    ) -> Result<Stop, SimError> {
        match (pctx.profile.is_some(), pctx.limits.is_some()) {
            (false, false) => self.run_impl::<false, false>(jit, plan, ctx, pctx),
            (false, true) => self.run_impl::<false, true>(jit, plan, ctx, pctx),
            (true, false) => self.run_impl::<true, false>(jit, plan, ctx, pctx),
            (true, true) => self.run_impl::<true, true>(jit, plan, ctx, pctx),
        }
    }

    fn run_impl<const PROFILE: bool, const LIMITED: bool>(
        &mut self,
        jit: &JitKernel,
        plan: &KernelPlan,
        ctx: &mut PlanExecCtx<'_, '_>,
        pctx: &mut PlanCtx,
    ) -> Result<Stop, SimError> {
        if self.finished {
            return Ok(Stop::Finished);
        }
        // Local copies of the hot frame fields; flushed on calls/returns.
        let mut frame = self.frames.len() - 1;
        let mut func = self.frames[frame].func as usize;
        let mut jf = &jit.funcs[func];
        let mut pc = self.frames[frame].pc as usize;
        let mut lane = Lane {
            base: self.frames[frame].base as usize,
            regs: &mut self.regs,
            visits: &mut self.visits,
            item: &self.item,
            ret: &mut self.ret,
            ctx,
            pctx,
            plan,
        };
        loop {
            self.steps += 1;
            if self.steps > MAX_STEPS {
                return Err(err("work-item exceeded the step budget (runaway loop?)"));
            }
            if PROFILE {
                let pb = lane.pctx.profile.as_mut().expect("profiled PlanCtx");
                pb.counts[(pb.starts[func] + pc as u32) as usize] += 1;
            }
            if LIMITED {
                let meter = lane.pctx.limits.as_deref_mut().expect("limited PlanCtx");
                meter.charge(jf.weights[pc])?;
            }
            let op = &jf.ops[pc];
            pc += 1;
            match op(&mut lane)? {
                Ctl::Next => {}
                Ctl::Jump(t) => pc = t as usize,
                Ctl::Barrier => {
                    self.frames[frame].pc = pc as u32;
                    return Ok(Stop::Barrier);
                }
                Ctl::Call(callee) => {
                    // The closure appended and seeded the callee's window.
                    let rc = jit.funcs[callee as usize].reg_count as usize;
                    let new_base = lane.regs.len() - rc;
                    // Flush the caller frame (pc already past the call).
                    self.frames[frame].pc = pc as u32;
                    self.frames.push(JitFrame {
                        func: callee,
                        pc: 0,
                        base: new_base as u32,
                    });
                    frame += 1;
                    func = callee as usize;
                    jf = &jit.funcs[func];
                    lane.base = new_base;
                    pc = 0;
                }
                Ctl::Ret(small) => {
                    if frame == 0 {
                        self.finished = true;
                        return Ok(Stop::Finished);
                    }
                    lane.regs.truncate(lane.base);
                    self.frames.pop();
                    frame -= 1;
                    let caller = &self.frames[frame];
                    func = caller.func as usize;
                    jf = &jit.funcs[func];
                    lane.base = caller.base as usize;
                    pc = caller.pc as usize;
                    // The instruction before `pc` is the call.
                    let Instr::Call { results, .. } = &plan.funcs[func].code[pc - 1] else {
                        return Err(err("return without a pending call"));
                    };
                    if small {
                        for (i, &r) in results.iter().enumerate() {
                            let v = lane.ret[i];
                            lane.regs[lane.base + r as usize] = v;
                        }
                    } else {
                        for (&r, i) in results.iter().zip(0..lane.ret.len()) {
                            let v = lane.ret[i];
                            lane.regs[lane.base + r as usize] = v;
                        }
                    }
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Compilation
// ----------------------------------------------------------------------

/// Compile a decoded (and fused) plan into its closure-JIT form. Pure
/// and infallible: every plan instruction has a compiled counterpart, so
/// a plan that decoded successfully always compiles.
pub fn compile(plan: &KernelPlan) -> JitKernel {
    JitKernel {
        funcs: plan
            .funcs
            .iter()
            .map(|f| JitFunc {
                ops: f.code.iter().map(|i| compile_instr(plan, i)).collect(),
                weights: f.code.iter().map(|i| i.op_weight()).collect(),
                reg_count: f.reg_count,
            })
            .collect(),
    }
}

/// One specialized closure per instruction. Every arm replicates the
/// plan interpreter's arm exactly — statistics bumps, check order and
/// error strings included. Operand fields are captured by value; selector
/// enums (`IntBin`, `FloatBin`, `ItemQ`) are monomorphized into distinct
/// closures so the executed code carries no opcode dispatch at all.
fn compile_instr(plan: &KernelPlan, instr: &Instr) -> JitOp {
    // Integer binary op: bump, convert both operands, combine.
    macro_rules! bin_int {
        ($l:expr, $r:expr, $dst:expr, |$a:ident, $b:ident| $body:expr) => {{
            let (l, r, dst) = ($l, $r, $dst);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let $a = ln.int(l, "int op on non-int")?;
                let $b = ln.int(r, "int op on non-int")?;
                let out = $body;
                ln.set(dst, RtValue::Int(out));
                Ok(Ctl::Next)
            })
        }};
    }
    // Float binary op: bump, convert, combine, optionally narrow.
    macro_rules! bin_flt {
        ($l:expr, $r:expr, $dst:expr, $f32:expr, |$a:ident, $b:ident| $body:expr) => {{
            let (l, r, dst, f32_out) = ($l, $r, $dst, $f32);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let $a = ln.flt(l, "float op on non-float")?;
                let $b = ln.flt(r, "float op on non-float")?;
                let out = $body;
                ln.set(dst, narrow(out, f32_out));
                Ok(Ctl::Next)
            })
        }};
    }
    // Work-item position query: bump, resolve the dimension, read.
    macro_rules! item_q {
        ($dst:expr, $dim:expr, |$it:ident, $d:ident| $body:expr) => {{
            let (dst, dim) = ($dst, $dim);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let $d = ln.dim(dim)?;
                let $it = ln.item;
                let v = $body;
                ln.set(dst, RtValue::Int(v));
                Ok(Ctl::Next)
            })
        }};
    }
    // Fused load-accumulate (`LoadBinFloat`): the Load arm, then the
    // BinFloat arm with the loaded value in its original position.
    macro_rules! load_bin_flt {
        ($i:expr, |$a:ident, $b:ident| $body:expr) => {{
            let (dst, other, loaded_is_lhs, f32_out) = ($i.0, $i.1, $i.2, $i.3);
            let (mem, idx, rank, site) = ($i.4, $i.5, $i.6, $i.7);
            boxed(move |ln| {
                let (mr, addr) = ln.load_addr(mem, &idx, rank, site, "load from non-memref")?;
                let loaded = ln.pool_load(site, mr.mem, addr);
                ln.ctx.stats.arith_ops += 1;
                let loaded = loaded
                    .as_f64()
                    .ok_or_else(|| err("float op on non-float"))?;
                let ($a, $b) = if loaded_is_lhs {
                    (loaded, ln.flt(other, "float op on non-float")?)
                } else {
                    (ln.flt(other, "float op on non-float")?, loaded)
                };
                let out = $body;
                ln.set(dst, narrow(out, f32_out));
                Ok(Ctl::Next)
            })
        }};
    }

    match instr {
        Instr::Const { dst, val } => {
            let (dst, val) = (*dst, *val);
            boxed(move |ln| {
                ln.set(dst, val);
                Ok(Ctl::Next)
            })
        }
        Instr::ConstDense { dst, idx } => {
            let (dst, idx) = (*dst, *idx);
            boxed(move |ln| {
                let mr = materialize_dense(ln.plan, ln.ctx, ln.pctx, idx)?;
                ln.set(dst, RtValue::MemRef(mr));
                Ok(Ctl::Next)
            })
        }
        Instr::Copy { dst, src } => {
            let (dst, src) = (*dst, *src);
            boxed(move |ln| {
                let v = ln.reg(src);
                ln.set(dst, v);
                Ok(Ctl::Next)
            })
        }
        Instr::BinInt { op, dst, l, r } => match op {
            IntBin::Add => bin_int!(*l, *r, *dst, |a, b| a.wrapping_add(b)),
            IntBin::Sub => bin_int!(*l, *r, *dst, |a, b| a.wrapping_sub(b)),
            IntBin::Mul => bin_int!(*l, *r, *dst, |a, b| a.wrapping_mul(b)),
            IntBin::DivS => bin_int!(*l, *r, *dst, |a, b| {
                if b == 0 {
                    return Err(err("division by zero"));
                }
                a.wrapping_div(b)
            }),
            IntBin::RemS => bin_int!(*l, *r, *dst, |a, b| {
                if b == 0 {
                    return Err(err("remainder by zero"));
                }
                a.wrapping_rem(b)
            }),
            IntBin::And => bin_int!(*l, *r, *dst, |a, b| a & b),
            IntBin::Or => bin_int!(*l, *r, *dst, |a, b| a | b),
            IntBin::Xor => bin_int!(*l, *r, *dst, |a, b| a ^ b),
            IntBin::MinS => bin_int!(*l, *r, *dst, |a, b| a.min(b)),
            IntBin::MaxS => bin_int!(*l, *r, *dst, |a, b| a.max(b)),
        },
        Instr::BinFloat {
            op,
            dst,
            l,
            r,
            f32_out,
        } => match op {
            FloatBin::Add => bin_flt!(*l, *r, *dst, *f32_out, |a, b| a + b),
            FloatBin::Sub => bin_flt!(*l, *r, *dst, *f32_out, |a, b| a - b),
            FloatBin::Mul => bin_flt!(*l, *r, *dst, *f32_out, |a, b| a * b),
            FloatBin::Div => bin_flt!(*l, *r, *dst, *f32_out, |a, b| a / b),
            FloatBin::Min => bin_flt!(*l, *r, *dst, *f32_out, |a, b| a.min(b)),
            FloatBin::Max => bin_flt!(*l, *r, *dst, *f32_out, |a, b| a.max(b)),
        },
        Instr::NegF { dst, x } => {
            let (dst, x) = (*dst, *x);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let v = match ln.reg(x) {
                    RtValue::F32(v) => RtValue::F32(-v),
                    RtValue::F64(v) => RtValue::F64(-v),
                    _ => return Err(err("negf on non-float")),
                };
                ln.set(dst, v);
                Ok(Ctl::Next)
            })
        }
        Instr::CmpI { pred, dst, l, r } => {
            let (pred, dst, l, r) = (*pred, *dst, *l, *r);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let lv = ln.int(l, "cmpi on non-int")?;
                let rv = ln.int(r, "cmpi on non-int")?;
                ln.set(dst, RtValue::Int(pred.eval_int(lv, rv) as i64));
                Ok(Ctl::Next)
            })
        }
        Instr::CmpF { pred, dst, l, r } => {
            let (pred, dst, l, r) = (*pred, *dst, *l, *r);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let lv = ln.flt(l, "cmpf on non-float")?;
                let rv = ln.flt(r, "cmpf on non-float")?;
                ln.set(dst, RtValue::Int(pred.eval_float(lv, rv) as i64));
                Ok(Ctl::Next)
            })
        }
        Instr::Select { dst, c, t, f } => {
            let (dst, c, t, f) = (*dst, *c, *t, *f);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let cv = ln.reg(c).as_bool().ok_or_else(|| err("select cond"))?;
                let v = if cv { ln.reg(t) } else { ln.reg(f) };
                ln.set(dst, v);
                Ok(Ctl::Next)
            })
        }
        Instr::SiToFp { dst, x, f32_out } => {
            let (dst, x, f32_out) = (*dst, *x, *f32_out);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let v = ln.int(x, "sitofp")?;
                ln.set(
                    dst,
                    if f32_out {
                        RtValue::F32(v as f32)
                    } else {
                        RtValue::F64(v as f64)
                    },
                );
                Ok(Ctl::Next)
            })
        }
        Instr::FpToSi { dst, x } => {
            let (dst, x) = (*dst, *x);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let v = ln.flt(x, "fptosi")?;
                ln.set(dst, RtValue::Int(v as i64));
                Ok(Ctl::Next)
            })
        }
        Instr::TruncF { dst, x } => {
            let (dst, x) = (*dst, *x);
            boxed(move |ln| {
                let v = ln.flt(x, "truncf")?;
                ln.set(dst, RtValue::F32(v as f32));
                Ok(Ctl::Next)
            })
        }
        Instr::ExtF { dst, x } => {
            let (dst, x) = (*dst, *x);
            boxed(move |ln| {
                let v = ln.flt(x, "extf")?;
                ln.set(dst, RtValue::F64(v));
                Ok(Ctl::Next)
            })
        }
        Instr::Math {
            op,
            dst,
            x,
            y,
            f32_out,
        } => {
            let (op, dst, x, y, f32_out) = (*op, *dst, *x, *y, *f32_out);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 4; // transcendental ops are pricier
                let xv = ln.flt(x, "math on non-float")?;
                let out = match op {
                    MathOp::Sqrt => xv.sqrt(),
                    MathOp::Exp => xv.exp(),
                    MathOp::Log => xv.ln(),
                    MathOp::Absf => xv.abs(),
                    MathOp::Sin => xv.sin(),
                    MathOp::Cos => xv.cos(),
                    MathOp::Floor => xv.floor(),
                    MathOp::Rsqrt => 1.0 / xv.sqrt(),
                    MathOp::Powf => {
                        let yv = ln.flt(y, "powf")?;
                        xv.powf(yv)
                    }
                };
                ln.set(dst, narrow(out, f32_out));
                Ok(Ctl::Next)
            })
        }
        Instr::Alloca {
            dst,
            elem,
            shape,
            rank,
            len,
        } => {
            let (dst, elem, shape, rank, len) = (*dst, elem.clone(), *shape, *rank, *len);
            boxed(move |ln| {
                let mem = ln.ctx.pool.alloc_zeroed(&elem, len)?;
                ln.set(
                    dst,
                    RtValue::MemRef(MemRefVal {
                        mem,
                        offset: 0,
                        shape,
                        rank,
                        space: Space::Private,
                    }),
                );
                Ok(Ctl::Next)
            })
        }
        Instr::LocalAlloca {
            dst,
            site,
            elem,
            shape,
            rank,
            len,
        } => {
            let (dst, site, elem, shape, rank, len) =
                (*dst, *site, elem.clone(), *shape, *rank, *len);
            boxed(move |ln| {
                let mr = match ln.pctx.local_allocs[site as usize] {
                    Some(existing) => existing,
                    None => {
                        let mem = ln.ctx.pool.alloc_zeroed(&elem, len)?;
                        let mr = MemRefVal {
                            mem,
                            offset: 0,
                            shape,
                            rank,
                            space: Space::Local,
                        };
                        ln.pctx.local_allocs[site as usize] = Some(mr);
                        mr
                    }
                };
                ln.set(dst, RtValue::MemRef(mr));
                Ok(Ctl::Next)
            })
        }
        Instr::Load {
            dst,
            mem,
            idx,
            rank,
            site,
        } => {
            let (dst, mem, idx, rank, site) = (*dst, *mem, *idx, *rank, *site);
            boxed(move |ln| {
                let (mr, addr) = ln.load_addr(mem, &idx, rank, site, "load from non-memref")?;
                let v = ln.pool_load(site, mr.mem, addr);
                ln.set(dst, v);
                Ok(Ctl::Next)
            })
        }
        Instr::Store {
            val,
            mem,
            idx,
            rank,
            site,
        } => {
            let (val, mem, idx, rank, site) = (*val, *mem, *idx, *rank, *site);
            boxed(move |ln| {
                let v = ln.reg(val);
                let (mr, addr) = ln.load_addr(mem, &idx, rank, site, "store to non-memref")?;
                ln.pool_store(site, mr.mem, addr, v);
                Ok(Ctl::Next)
            })
        }
        Instr::VecCtor { dst, comps, rank } => {
            let (dst, comps, rank) = (*dst, *comps, *rank);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let mut data = [0_i64; 3];
                for d in 0..rank as usize {
                    data[d] = ln.int(comps[d], "id component")?;
                }
                ln.set(
                    dst,
                    RtValue::Vec(VecVal {
                        data,
                        rank: rank as u32,
                    }),
                );
                Ok(Ctl::Next)
            })
        }
        Instr::NdRangeCtor { dst, g, l } => {
            let (dst, g, l) = (*dst, *g, *l);
            boxed(move |ln| {
                let gv = ln.reg(g).as_vec().ok_or_else(|| err("nd_range global"))?;
                let lv = ln.reg(l).as_vec().ok_or_else(|| err("nd_range local"))?;
                ln.set(dst, RtValue::NdRange(gv, lv));
                Ok(Ctl::Next)
            })
        }
        Instr::VecGet { dst, v, dim } => {
            let (dst, v, dim) = (*dst, *v, *dim);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let vv = ln.reg(v).as_vec().ok_or_else(|| err("id.get"))?;
                let d = ln.dim(dim)?;
                ln.set(dst, RtValue::Int(vv.data[d]));
                Ok(Ctl::Next)
            })
        }
        Instr::RangeSize { dst, v } => {
            let (dst, v) = (*dst, *v);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let vv = ln.reg(v).as_vec().ok_or_else(|| err("range.size"))?;
                let size: i64 = vv.data[..vv.rank as usize].iter().product();
                ln.set(dst, RtValue::Int(size));
                Ok(Ctl::Next)
            })
        }
        Instr::ItemQuery { dst, q, dim } => match q {
            ItemQ::GlobalId => item_q!(*dst, *dim, |it, d| it.global_id[d]),
            ItemQ::LocalId => item_q!(*dst, *dim, |it, d| it.local_id[d]),
            ItemQ::GroupId => item_q!(*dst, *dim, |it, d| it.group_id[d]),
            ItemQ::GlobalRange => item_q!(*dst, *dim, |it, d| it.global_range[d]),
            ItemQ::LocalRange => item_q!(*dst, *dim, |it, d| it.local_range[d]),
            ItemQ::GroupRange => item_q!(*dst, *dim, |it, d| it.group_range(d)),
        },
        Instr::GlobalLinearId { dst } => {
            let dst = *dst;
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let v = ln.item.global_linear_id();
                ln.set(dst, RtValue::Int(v));
                Ok(Ctl::Next)
            })
        }
        Instr::LocalLinearId { dst } => {
            let dst = *dst;
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let v = ln.item.local_linear_id();
                ln.set(dst, RtValue::Int(v));
                Ok(Ctl::Next)
            })
        }
        Instr::ItemSelf { dst } => {
            let dst = *dst;
            boxed(move |ln| {
                let v = RtValue::Item(*ln.item);
                ln.set(dst, v);
                Ok(Ctl::Next)
            })
        }
        Instr::AccSubscript { dst, acc, id } => {
            let (dst, acc, id) = (*dst, *acc, *id);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let a = ln
                    .reg(acc)
                    .as_accessor()
                    .ok_or_else(|| err("subscript of non-accessor"))?;
                let idv = ln.reg(id).as_vec().ok_or_else(|| err("subscript id"))?;
                let offset = a.linearize(&idv.data[..idv.rank as usize]);
                let space = if a.constant {
                    Space::Constant
                } else {
                    Space::Global
                };
                ln.set(
                    dst,
                    RtValue::MemRef(MemRefVal {
                        mem: a.mem,
                        offset,
                        shape: [-1, 1, 1],
                        rank: 1,
                        space,
                    }),
                );
                Ok(Ctl::Next)
            })
        }
        Instr::AccRange { dst, acc, dim } => {
            let (dst, acc, dim) = (*dst, *acc, *dim);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let a = ln.reg(acc).as_accessor().ok_or_else(|| err("get_range"))?;
                let d = ln.dim(dim)?;
                ln.set(dst, RtValue::Int(a.range[d]));
                Ok(Ctl::Next)
            })
        }
        Instr::AccBase { dst, acc } => {
            let (dst, acc) = (*dst, *acc);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let a = ln
                    .reg(acc)
                    .as_accessor()
                    .ok_or_else(|| err("accessor.base"))?;
                let b = ((a.mem.0 as i64) << 32) | a.linearize(&[0, 0, 0]);
                ln.set(dst, RtValue::Int(b));
                Ok(Ctl::Next)
            })
        }
        Instr::Barrier => boxed(move |ln| {
            ln.ctx.stats.barriers += 1;
            Ok(Ctl::Barrier)
        }),
        Instr::Jump { target } => {
            let target = *target;
            boxed(move |_ln| Ok(Ctl::Jump(target)))
        }
        Instr::BranchIfFalse { cond, target } => {
            let (cond, target) = (*cond, *target);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let c = ln
                    .reg(cond)
                    .as_bool()
                    .ok_or_else(|| err("non-boolean if condition"))?;
                Ok(if c { Ctl::Next } else { Ctl::Jump(target) })
            })
        }
        Instr::ForEnter {
            lb,
            ub,
            step,
            iv,
            exit,
        } => {
            let (lb, ub, step, iv, exit) = (*lb, *ub, *step, *iv, *exit);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 1;
                let lbv = ln.int(lb, "bad lb")?;
                let ubv = ln.int(ub, "bad ub")?;
                let stepv = ln.int(step, "bad step")?;
                if stepv <= 0 {
                    return Err(err("non-positive loop step"));
                }
                ln.set(iv, RtValue::Int(lbv));
                Ok(if lbv >= ubv {
                    Ctl::Jump(exit)
                } else {
                    Ctl::Next
                })
            })
        }
        Instr::ForNext { iv, step, ub, body } => {
            let (iv, step, ub, body) = (*iv, *step, *ub, *body);
            boxed(move |ln| {
                let cur = ln.int(iv, "bad iv")?;
                let stepv = ln.int(step, "bad step")?;
                let ubv = ln.int(ub, "bad ub")?;
                // Deliberately non-wrapping: a debug-mode overflow panics
                // exactly like the plan interpreter's back-edge.
                let next = cur + stepv;
                Ok(if next < ubv {
                    ln.set(iv, RtValue::Int(next));
                    Ctl::Jump(body)
                } else {
                    Ctl::Next
                })
            })
        }
        Instr::Call {
            func: callee,
            args,
            results: _,
        } => {
            let callee_plan = &plan.funcs[*callee as usize];
            let callee = *callee;
            let args = args.clone();
            let params: Box<[Reg]> = callee_plan.params.clone().into_boxed_slice();
            let rc = callee_plan.reg_count as usize;
            boxed(move |ln| {
                let new_base = ln.regs.len();
                ln.regs.resize(new_base + rc, RtValue::Unit);
                for (i, &a) in args.iter().enumerate() {
                    let v = ln.regs[ln.base + a as usize];
                    ln.regs[new_base + params[i] as usize] = v;
                }
                Ok(Ctl::Call(callee))
            })
        }
        Instr::Return { vals } => {
            let vals = vals.clone();
            boxed(move |ln| {
                // Stage the return values; the driver copies them into the
                // caller's result registers after popping the frame. At
                // frame 0 the staged values are simply discarded, matching
                // the interpreter's early Finished return.
                ln.ret.clear();
                let small = vals.len() <= 4;
                for &v in vals.iter() {
                    let rv = ln.regs[ln.base + v as usize];
                    ln.ret.push(rv);
                }
                if small {
                    while ln.ret.len() < 4 {
                        ln.ret.push(RtValue::Unit);
                    }
                }
                Ok(Ctl::Ret(small))
            })
        }
        Instr::LoadBinFloat {
            op,
            dst,
            other,
            loaded_is_lhs,
            f32_out,
            mem,
            idx,
            rank,
            site,
        } => {
            let i = (
                *dst,
                *other,
                *loaded_is_lhs,
                *f32_out,
                *mem,
                *idx,
                *rank,
                *site,
            );
            match op {
                FloatBin::Add => load_bin_flt!(i, |a, b| a + b),
                FloatBin::Mul => load_bin_flt!(i, |a, b| a * b),
                // Only Add/Mul are ever fused (see `try_fuse`); replicate
                // the interpreter's post-conversion error for the rest.
                _ => {
                    let (other, mem, idx, rank, site) = (i.1, i.4, i.5, i.6, i.7);
                    boxed(move |ln| {
                        let (mr, addr) =
                            ln.load_addr(mem, &idx, rank, site, "load from non-memref")?;
                        let loaded = ln.pool_load(site, mr.mem, addr);
                        ln.ctx.stats.arith_ops += 1;
                        loaded
                            .as_f64()
                            .ok_or_else(|| err("float op on non-float"))?;
                        // Both operand orders convert `other` before the
                        // interpreter's op match rejects the fusion.
                        ln.flt(other, "float op on non-float")?;
                        Err(err("unfusable float op in LoadBinFloat"))
                    })
                }
            }
        }
        Instr::MulAddInt { dst, a, b, c } => {
            let (dst, a, b, c) = (*dst, *a, *b, *c);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 2; // the muli and the addi
                let av = ln.int(a, "int op on non-int")?;
                let bv = ln.int(b, "int op on non-int")?;
                let cv = ln.int(c, "int op on non-int")?;
                ln.set(dst, RtValue::Int(av.wrapping_mul(bv).wrapping_add(cv)));
                Ok(Ctl::Next)
            })
        }
        Instr::CmpIBranch { pred, l, r, target } => {
            let (pred, l, r, target) = (*pred, *l, *r, *target);
            boxed(move |ln| {
                ln.ctx.stats.arith_ops += 2; // the cmpi and the branch
                let lv = ln.int(l, "cmpi on non-int")?;
                let rv = ln.int(r, "cmpi on non-int")?;
                Ok(if pred.eval_int(lv, rv) {
                    Ctl::Next
                } else {
                    Ctl::Jump(target)
                })
            })
        }
        Instr::AccLoadIndexed {
            dst,
            acc,
            comps,
            comps_rank,
            idx,
            rank,
            site,
        } => {
            let (dst, acc, comps, comps_rank, idx, rank, site) =
                (*dst, *acc, *comps, *comps_rank, *idx, *rank, *site);
            boxed(move |ln| {
                // Exactly the VecCtor arm…
                ln.ctx.stats.arith_ops += 1;
                let mut id = [0_i64; 3];
                for d in 0..comps_rank as usize {
                    id[d] = ln.int(comps[d], "id component")?;
                }
                // …then the AccSubscript arm…
                ln.ctx.stats.arith_ops += 1;
                let a = ln
                    .reg(acc)
                    .as_accessor()
                    .ok_or_else(|| err("subscript of non-accessor"))?;
                let offset = a.linearize(&id[..comps_rank as usize]);
                let space = if a.constant {
                    Space::Constant
                } else {
                    Space::Global
                };
                let mr = MemRefVal {
                    mem: a.mem,
                    offset,
                    shape: [-1, 1, 1],
                    rank: 1,
                    space,
                };
                // …then the Load arm through the elided view.
                let mut indices = [0_i64; 3];
                for d in 0..rank as usize {
                    indices[d] = ln.int(idx[d], "non-int index")?;
                }
                let addr = mr.linearize(&indices[..rank as usize]);
                ln.mem_event(site, &mr, addr)?;
                let v = ln.pool_load(site, mr.mem, addr);
                ln.set(dst, v);
                Ok(Ctl::Next)
            })
        }
        Instr::AccStoreIndexed {
            val,
            acc,
            comps,
            comps_rank,
            idx,
            rank,
            site,
        } => {
            let (val, acc, comps, comps_rank, idx, rank, site) =
                (*val, *acc, *comps, *comps_rank, *idx, *rank, *site);
            boxed(move |ln| {
                // VecCtor, then AccSubscript, then the Store arm —
                // identical sequencing to the unfused chain.
                ln.ctx.stats.arith_ops += 1;
                let mut id = [0_i64; 3];
                for d in 0..comps_rank as usize {
                    id[d] = ln.int(comps[d], "id component")?;
                }
                ln.ctx.stats.arith_ops += 1;
                let a = ln
                    .reg(acc)
                    .as_accessor()
                    .ok_or_else(|| err("subscript of non-accessor"))?;
                let offset = a.linearize(&id[..comps_rank as usize]);
                let space = if a.constant {
                    Space::Constant
                } else {
                    Space::Global
                };
                let mr = MemRefVal {
                    mem: a.mem,
                    offset,
                    shape: [-1, 1, 1],
                    rank: 1,
                    space,
                };
                let v = ln.reg(val);
                let mut indices = [0_i64; 3];
                for d in 0..rank as usize {
                    indices[d] = ln.int(idx[d], "non-int index")?;
                }
                let addr = mr.linearize(&indices[..rank as usize]);
                ln.mem_event(site, &mr, addr)?;
                ln.pool_store(site, mr.mem, addr, v);
                Ok(Ctl::Next)
            })
        }
        Instr::LoadMulAddF {
            dst,
            mem,
            idx,
            rank,
            site,
            b,
            loaded_is_lhs,
            mul_f32,
            c,
            prod_is_lhs,
            f32_out,
        } => {
            let (dst, mem, idx, rank, site) = (*dst, *mem, *idx, *rank, *site);
            let (b, loaded_is_lhs, mul_f32, c, prod_is_lhs, f32_out) =
                (*b, *loaded_is_lhs, *mul_f32, *c, *prod_is_lhs, *f32_out);
            boxed(move |ln| {
                // The Load arm…
                let (mr, addr) = ln.load_addr(mem, &idx, rank, site, "load from non-memref")?;
                let loaded = ln.pool_load(site, mr.mem, addr);
                // …then the mulf arm with the original operand order,
                // narrowing the elided product exactly as its register
                // write would have…
                ln.ctx.stats.arith_ops += 1;
                let loaded = loaded
                    .as_f64()
                    .ok_or_else(|| err("float op on non-float"))?;
                let bv = ln.flt(b, "float op on non-float")?;
                let (ml, mr2) = if loaded_is_lhs {
                    (loaded, bv)
                } else {
                    (bv, loaded)
                };
                let mut prod = ml * mr2;
                if mul_f32 {
                    prod = prod as f32 as f64;
                }
                // …then the addf arm.
                ln.ctx.stats.arith_ops += 1;
                let cv = ln.flt(c, "float op on non-float")?;
                let (al, ar) = if prod_is_lhs { (prod, cv) } else { (cv, prod) };
                let out = al + ar;
                ln.set(dst, narrow(out, f32_out));
                Ok(Ctl::Next)
            })
        }
        Instr::StoreBinFloat {
            op,
            l,
            r,
            f32_out,
            mem,
            idx,
            rank,
            site,
        } => {
            let (op, l, r, f32_out) = (*op, *l, *r, *f32_out);
            let (mem, idx, rank, site) = (*mem, *idx, *rank, *site);
            boxed(move |ln| {
                // The BinFloat arm…
                ln.ctx.stats.arith_ops += 1;
                let lv = ln.flt(l, "float op on non-float")?;
                let rv = ln.flt(r, "float op on non-float")?;
                let out = match op {
                    FloatBin::Add => lv + rv,
                    FloatBin::Sub => lv - rv,
                    FloatBin::Mul => lv * rv,
                    FloatBin::Div => lv / rv,
                    FloatBin::Min => lv.min(rv),
                    FloatBin::Max => lv.max(rv),
                };
                let v = narrow(out, f32_out);
                // …then the Store arm with the elided value register.
                let (mr, addr) = ln.load_addr(mem, &idx, rank, site, "store to non-memref")?;
                ln.pool_store(site, mr.mem, addr, v);
                Ok(Ctl::Next)
            })
        }
        Instr::AccLoadQuad {
            dst,
            acc,
            comps,
            comps_rank,
            id,
            view,
            cst,
            cst_val,
            site,
        } => {
            let (dst, acc, comps, comps_rank, site) = (*dst, *acc, *comps, *comps_rank, *site);
            let (id, view, cst, cst_val) = (*id, *view, *cst, *cst_val);
            boxed(move |ln| {
                // The VecCtor arm, keeping the id register write…
                ln.ctx.stats.arith_ops += 1;
                let mut data = [0_i64; 3];
                for d in 0..comps_rank as usize {
                    data[d] = ln.int(comps[d], "id component")?;
                }
                ln.set(
                    id,
                    RtValue::Vec(VecVal {
                        data,
                        rank: comps_rank as u32,
                    }),
                );
                // …the AccSubscript arm, keeping the view write…
                ln.ctx.stats.arith_ops += 1;
                let a = ln
                    .reg(acc)
                    .as_accessor()
                    .ok_or_else(|| err("subscript of non-accessor"))?;
                let idv = ln.reg(id).as_vec().ok_or_else(|| err("subscript id"))?;
                let offset = a.linearize(&idv.data[..idv.rank as usize]);
                let space = if a.constant {
                    Space::Constant
                } else {
                    Space::Global
                };
                ln.set(
                    view,
                    RtValue::MemRef(MemRefVal {
                        mem: a.mem,
                        offset,
                        shape: [-1, 1, 1],
                        rank: 1,
                        space,
                    }),
                );
                // …the Const arm (no stats, like the Const opcode)…
                ln.set(cst, cst_val);
                // …then the Load arm, re-reading the kept registers so
                // even degenerate register aliasing replays exactly.
                let mr = ln
                    .reg(view)
                    .as_memref()
                    .ok_or_else(|| err("load from non-memref"))?;
                let i0 = ln.int(cst, "non-int index")?;
                let addr = mr.linearize(&[i0]);
                ln.mem_event(site, &mr, addr)?;
                let v = ln.pool_load(site, mr.mem, addr);
                ln.set(dst, v);
                Ok(Ctl::Next)
            })
        }
        Instr::AccStoreQuad {
            val,
            acc,
            comps,
            comps_rank,
            id,
            view,
            cst,
            cst_val,
            site,
        } => {
            let (val, acc, comps, comps_rank, site) = (*val, *acc, *comps, *comps_rank, *site);
            let (id, view, cst, cst_val) = (*id, *view, *cst, *cst_val);
            boxed(move |ln| {
                // VecCtor, AccSubscript and Const arms with all three
                // register writes kept, then the Store arm — identical
                // sequencing to the unfused quad.
                ln.ctx.stats.arith_ops += 1;
                let mut data = [0_i64; 3];
                for d in 0..comps_rank as usize {
                    data[d] = ln.int(comps[d], "id component")?;
                }
                ln.set(
                    id,
                    RtValue::Vec(VecVal {
                        data,
                        rank: comps_rank as u32,
                    }),
                );
                ln.ctx.stats.arith_ops += 1;
                let a = ln
                    .reg(acc)
                    .as_accessor()
                    .ok_or_else(|| err("subscript of non-accessor"))?;
                let idv = ln.reg(id).as_vec().ok_or_else(|| err("subscript id"))?;
                let offset = a.linearize(&idv.data[..idv.rank as usize]);
                let space = if a.constant {
                    Space::Constant
                } else {
                    Space::Global
                };
                ln.set(
                    view,
                    RtValue::MemRef(MemRefVal {
                        mem: a.mem,
                        offset,
                        shape: [-1, 1, 1],
                        rank: 1,
                        space,
                    }),
                );
                ln.set(cst, cst_val);
                let v = ln.reg(val);
                let mr = ln
                    .reg(view)
                    .as_memref()
                    .ok_or_else(|| err("store to non-memref"))?;
                let i0 = ln.int(cst, "non-int index")?;
                let addr = mr.linearize(&[i0]);
                ln.mem_event(site, &mr, addr)?;
                ln.pool_store(site, mr.mem, addr, v);
                Ok(Ctl::Next)
            })
        }
        Instr::AccLoadIdxWt {
            dst,
            acc,
            comps,
            comps_rank,
            id,
            view,
            idx,
            rank,
            site,
        } => {
            let (dst, acc, comps, comps_rank) = (*dst, *acc, *comps, *comps_rank);
            let (id, view, idx, rank, site) = (*id, *view, *idx, *rank, *site);
            boxed(move |ln| {
                // The VecCtor arm with the id write kept…
                ln.ctx.stats.arith_ops += 1;
                let mut data = [0_i64; 3];
                for d in 0..comps_rank as usize {
                    data[d] = ln.int(comps[d], "id component")?;
                }
                ln.set(
                    id,
                    RtValue::Vec(VecVal {
                        data,
                        rank: comps_rank as u32,
                    }),
                );
                // …the AccSubscript arm with the view write kept (a later
                // store re-reads it — that is why this variant exists)…
                ln.ctx.stats.arith_ops += 1;
                let a = ln
                    .reg(acc)
                    .as_accessor()
                    .ok_or_else(|| err("subscript of non-accessor"))?;
                let idv = ln.reg(id).as_vec().ok_or_else(|| err("subscript id"))?;
                let offset = a.linearize(&idv.data[..idv.rank as usize]);
                let space = if a.constant {
                    Space::Constant
                } else {
                    Space::Global
                };
                ln.set(
                    view,
                    RtValue::MemRef(MemRefVal {
                        mem: a.mem,
                        offset,
                        shape: [-1, 1, 1],
                        rank: 1,
                        space,
                    }),
                );
                // …then the Load arm through the kept view.
                let mr = ln
                    .reg(view)
                    .as_memref()
                    .ok_or_else(|| err("load from non-memref"))?;
                let mut indices = [0_i64; 3];
                for d in 0..rank as usize {
                    indices[d] = ln.int(idx[d], "non-int index")?;
                }
                let addr = mr.linearize(&indices[..rank as usize]);
                ln.mem_event(site, &mr, addr)?;
                let v = ln.pool_load(site, mr.mem, addr);
                ln.set(dst, v);
                Ok(Ctl::Next)
            })
        }
        Instr::AccStoreIdxWt {
            val,
            acc,
            comps,
            comps_rank,
            id,
            view,
            idx,
            rank,
            site,
        } => {
            let (val, acc, comps, comps_rank) = (*val, *acc, *comps, *comps_rank);
            let (id, view, idx, rank, site) = (*id, *view, *idx, *rank, *site);
            boxed(move |ln| {
                // VecCtor and AccSubscript arms with both writes kept,
                // then the Store arm.
                ln.ctx.stats.arith_ops += 1;
                let mut data = [0_i64; 3];
                for d in 0..comps_rank as usize {
                    data[d] = ln.int(comps[d], "id component")?;
                }
                ln.set(
                    id,
                    RtValue::Vec(VecVal {
                        data,
                        rank: comps_rank as u32,
                    }),
                );
                ln.ctx.stats.arith_ops += 1;
                let a = ln
                    .reg(acc)
                    .as_accessor()
                    .ok_or_else(|| err("subscript of non-accessor"))?;
                let idv = ln.reg(id).as_vec().ok_or_else(|| err("subscript id"))?;
                let offset = a.linearize(&idv.data[..idv.rank as usize]);
                let space = if a.constant {
                    Space::Constant
                } else {
                    Space::Global
                };
                ln.set(
                    view,
                    RtValue::MemRef(MemRefVal {
                        mem: a.mem,
                        offset,
                        shape: [-1, 1, 1],
                        rank: 1,
                        space,
                    }),
                );
                let v = ln.reg(val);
                let mr = ln
                    .reg(view)
                    .as_memref()
                    .ok_or_else(|| err("store to non-memref"))?;
                let mut indices = [0_i64; 3];
                for d in 0..rank as usize {
                    indices[d] = ln.int(idx[d], "non-int index")?;
                }
                let addr = mr.linearize(&indices[..rank as usize]);
                ln.mem_event(site, &mr, addr)?;
                ln.pool_store(site, mr.mem, addr, v);
                Ok(Ctl::Next)
            })
        }
        Instr::StoreBinFloatWt {
            op,
            l,
            r,
            f32_out,
            t,
            mem,
            idx,
            rank,
            site,
        } => {
            let (op, l, r, f32_out, t) = (*op, *l, *r, *f32_out, *t);
            let (mem, idx, rank, site) = (*mem, *idx, *rank, *site);
            boxed(move |ln| {
                // The BinFloat arm, keeping the accumulator write…
                ln.ctx.stats.arith_ops += 1;
                let lv = ln.flt(l, "float op on non-float")?;
                let rv = ln.flt(r, "float op on non-float")?;
                let out = match op {
                    FloatBin::Add => lv + rv,
                    FloatBin::Sub => lv - rv,
                    FloatBin::Mul => lv * rv,
                    FloatBin::Div => lv / rv,
                    FloatBin::Min => lv.min(rv),
                    FloatBin::Max => lv.max(rv),
                };
                ln.set(t, narrow(out, f32_out));
                // …then the Store arm re-reading the kept value.
                let v = ln.reg(t);
                let mr = ln
                    .reg(mem)
                    .as_memref()
                    .ok_or_else(|| err("store to non-memref"))?;
                let mut indices = [0_i64; 3];
                for d in 0..rank as usize {
                    indices[d] = ln.int(idx[d], "non-int index")?;
                }
                let addr = mr.linearize(&indices[..rank as usize]);
                ln.mem_event(site, &mr, addr)?;
                ln.pool_store(site, mr.mem, addr, v);
                Ok(Ctl::Next)
            })
        }
    }
}

/// Narrow a float result exactly like the interpreter's register writes.
#[inline(always)]
fn narrow(out: f64, f32_out: bool) -> RtValue {
    if f32_out {
        RtValue::F32(out as f32)
    } else {
        RtValue::F64(out)
    }
}

// ----------------------------------------------------------------------
// Group driver
// ----------------------------------------------------------------------

/// Per-worker reusable work-item slots for the closure tier (registers,
/// frames, visit counters survive across work-groups and launches, so the
/// steady state allocates nothing per item).
#[derive(Default)]
pub(crate) struct JitScratch {
    items: Vec<JitItem>,
}

/// Execute one work-group through the compiled closure chain — the
/// closure-tier counterpart of the plan engine's `run_group`, driving the
/// same co-operative rounds with the same divergent-barrier detection.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_group_jit(
    jit: &JitKernel,
    plan: &KernelPlan,
    args: &[RtValue],
    nd: NdRangeSpec,
    group: [i64; 3],
    ctx: &mut PlanExecCtx<'_, '_>,
    pctx: &mut PlanCtx,
    scratch: &mut JitScratch,
) -> Result<(), SimError> {
    let positions = items_of_group(nd, group);
    let n = positions.len();
    if scratch.items.len() < n {
        scratch.items.resize_with(n, JitItem::empty);
    }
    for (slot, item) in scratch.items[..n].iter_mut().zip(positions) {
        slot.reset(plan, args, item)?;
    }
    if pctx.uniform {
        cooperative_rounds_uniform(&mut scratch.items[..n], |wi| wi.run(jit, plan, ctx, pctx))
    } else {
        cooperative_rounds(&mut scratch.items[..n], group, |wi| {
            wi.run(jit, plan, ctx, pctx)
        })
    }
}
