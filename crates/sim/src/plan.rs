//! Pre-decoded kernel execution plans: a register-file bytecode shared by
//! every work-item of a launch.
//!
//! The tree-walk interpreter in [`crate::interp`] re-resolves *everything*
//! on every step of every work-item: op names through `Rc<str>` string
//! dispatch, operands through `ValueId` environment lookups, attributes
//! through linear key scans, and loop re-entry through fresh `to_vec()`
//! allocations. A launch touching millions of dynamic ops pays those costs
//! millions of times for structure that never changes.
//!
//! This module lowers the structured IR of a kernel (and its callees)
//! **once per launch** into a [`KernelPlan`]:
//!
//! * every operation becomes an [`Instr`] — a plain Rust enum with an
//!   integer opcode, no strings anywhere on the execution path;
//! * every SSA value gets a dense **register slot**, assigned per function
//!   at decode time; work-items execute against a flat `Vec<RtValue>`
//!   register file instead of a `ValueId`-keyed environment;
//! * constants are pre-materialized ([`Instr::Const`]), `cmpi`/`cmpf`
//!   predicates and dimension operands are pre-parsed, and `func.call`
//!   targets are pre-resolved to plan-internal function indices;
//! * `scf.for`/`scf.if` structure is lowered to explicit jump and loop
//!   instructions ([`Instr::ForEnter`]/[`Instr::ForNext`]/
//!   [`Instr::BranchIfFalse`]), so loop back-edges are two integer ops.
//!
//! The plan is immutable and shared by reference across all work-items and
//! work-groups of the launch. Decoding is itself string-free on the hot
//! path: a private `OpKindTable` maps interned [`OpName`] ids to opcodes once per
//! decode, and attribute keys are resolved through the pre-interned
//! [`sycl_mlir_ir::CommonKeys`].
//!
//! Any op the decoder does not understand aborts the decode with
//! [`DecodeError`]; the device then falls back to the tree-walk reference
//! interpreter, which stays behaviourally authoritative (the differential
//! suite in `tests/differential.rs` holds the two engines bit-identical).

use crate::interp::{enclosing_module, SimError, Stop};
use crate::memory::DataVec;
use crate::pool::PlanExecCtx;
use crate::value::{MemRefVal, NdItemVal, RtValue, Space, VecVal};
use std::collections::HashMap;
use sycl_mlir_ir::{Attribute, Module, OpId, OpName, Type, TypeKind, ValueId};

/// Dense register slot within one function frame.
pub type Reg = u32;

pub(crate) fn err(msg: impl Into<String>) -> SimError {
    SimError::msg(msg)
}

/// Why a kernel could not be decoded (the caller falls back to the
/// tree-walk interpreter).
#[derive(Debug, Clone)]
pub struct DecodeError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan decode error: {}", self.message)
    }
}

fn dec_err(msg: impl Into<String>) -> DecodeError {
    DecodeError {
        message: msg.into(),
    }
}

/// A decode failure as a structured simulator error (`"plan decode
/// error: …"`, position `None` until the launch layer stamps its
/// submission index) — what strict verification surfaces instead of the
/// silent tree-walk fallback.
impl From<DecodeError> for SimError {
    fn from(e: DecodeError) -> SimError {
        SimError::msg(e.to_string())
    }
}

// ----------------------------------------------------------------------
// Instruction set
// ----------------------------------------------------------------------

/// Integer binary ops (`arith.addi` family).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntBin {
    /// `arith.addi`.
    Add,
    /// `arith.subi`.
    Sub,
    /// `arith.muli`.
    Mul,
    /// `arith.divsi` (signed).
    DivS,
    /// `arith.remsi` (signed).
    RemS,
    /// `arith.andi`.
    And,
    /// `arith.ori`.
    Or,
    /// `arith.xori`.
    Xor,
    /// `arith.minsi` (signed).
    MinS,
    /// `arith.maxsi` (signed).
    MaxS,
}

/// Float binary ops (`arith.addf` family).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FloatBin {
    /// `arith.addf`.
    Add,
    /// `arith.subf`.
    Sub,
    /// `arith.mulf`.
    Mul,
    /// `arith.divf`.
    Div,
    /// `arith.minf`.
    Min,
    /// `arith.maxf`.
    Max,
}

/// Pre-parsed `arith.cmpi`/`arith.cmpf` predicate. Mirrors the tree-walk
/// interpreter: a missing attribute means `Eq`, an unknown spelling `Sge`.
#[derive(Clone, Copy, Debug)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
}

impl CmpPred {
    fn of_attr(attr: Option<&Attribute>) -> CmpPred {
        match attr.and_then(|a| a.as_str()).unwrap_or("eq") {
            "eq" => CmpPred::Eq,
            "ne" => CmpPred::Ne,
            "slt" => CmpPred::Slt,
            "sle" => CmpPred::Sle,
            "sgt" => CmpPred::Sgt,
            _ => CmpPred::Sge,
        }
    }

    #[inline]
    pub(crate) fn eval_int(self, l: i64, r: i64) -> bool {
        match self {
            CmpPred::Eq => l == r,
            CmpPred::Ne => l != r,
            CmpPred::Slt => l < r,
            CmpPred::Sle => l <= r,
            CmpPred::Sgt => l > r,
            CmpPred::Sge => l >= r,
        }
    }

    #[inline]
    pub(crate) fn eval_float(self, l: f64, r: f64) -> bool {
        match self {
            CmpPred::Eq => l == r,
            CmpPred::Ne => l != r,
            CmpPred::Slt => l < r,
            CmpPred::Sle => l <= r,
            CmpPred::Sgt => l > r,
            CmpPred::Sge => l >= r,
        }
    }
}

/// `math.*` unary functions, plus `powf`, resolved at decode time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MathOp {
    /// `math.sqrt`.
    Sqrt,
    /// `math.exp`.
    Exp,
    /// `math.log`.
    Log,
    /// `math.absf`.
    Absf,
    /// `math.sin`.
    Sin,
    /// `math.cos`.
    Cos,
    /// `math.floor`.
    Floor,
    /// `math.rsqrt`.
    Rsqrt,
    /// `math.powf` (binary).
    Powf,
}

/// A dimension operand: pre-folded to a constant when its defining op is an
/// integer constant (the overwhelmingly common case), otherwise read from a
/// register at run time.
#[derive(Clone, Copy, Debug)]
pub enum DimSrc {
    /// A compile-time-constant dimension.
    Const(u8),
    /// A dimension read from a register at run time.
    Reg(Reg),
}

/// Work-item position queries with a dimension operand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ItemQ {
    /// Global id along a dimension.
    GlobalId,
    /// Id within the work-group.
    LocalId,
    /// Work-group id.
    GroupId,
    /// Global extent.
    GlobalRange,
    /// Work-group extent.
    LocalRange,
    /// Work-group count.
    GroupRange,
}

/// One decoded instruction. Operands are register slots; `pc` targets are
/// indices into the owning [`FuncPlan::code`].
#[derive(Clone, Debug)]
pub enum Instr {
    /// Pre-materialized scalar constant.
    Const {
        /// Destination register.
        dst: Reg,
        /// The constant value.
        val: RtValue,
    },
    /// Dense-data constant memref, materialized once per launch into the
    /// pool and cached in the worker state ([`PlanCtx`]) under `idx`.
    ConstDense {
        /// Destination register.
        dst: Reg,
        /// Index into [`KernelPlan::dense_consts`].
        idx: u32,
    },
    /// Register-to-register move (casts that are value-preserving here).
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// Integer binary op.
    BinInt {
        /// Operation selector.
        op: IntBin,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        l: Reg,
        /// Right operand register.
        r: Reg,
    },
    /// Float binary op (computed in `f64`, optionally narrowed).
    BinFloat {
        /// Operation selector.
        op: FloatBin,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        l: Reg,
        /// Right operand register.
        r: Reg,
        /// Whether the result narrows to `f32`.
        f32_out: bool,
    },
    /// `arith.negf`.
    NegF {
        /// Destination register.
        dst: Reg,
        /// Operand register.
        x: Reg,
    },
    /// `arith.cmpi`.
    CmpI {
        /// Pre-parsed comparison predicate.
        pred: CmpPred,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        l: Reg,
        /// Right operand register.
        r: Reg,
    },
    /// `arith.cmpf`.
    CmpF {
        /// Pre-parsed comparison predicate.
        pred: CmpPred,
        /// Destination register.
        dst: Reg,
        /// Left operand register.
        l: Reg,
        /// Right operand register.
        r: Reg,
    },
    /// `arith.select`.
    Select {
        /// Destination register.
        dst: Reg,
        /// Condition register.
        c: Reg,
        /// True-value register.
        t: Reg,
        /// False-value register.
        f: Reg,
    },
    /// `arith.sitofp`.
    SiToFp {
        /// Destination register.
        dst: Reg,
        /// Operand register.
        x: Reg,
        /// Whether the result narrows to `f32`.
        f32_out: bool,
    },
    /// `arith.fptosi`.
    FpToSi {
        /// Destination register.
        dst: Reg,
        /// Operand register.
        x: Reg,
    },
    /// `arith.truncf` (`f64` to `f32`).
    TruncF {
        /// Destination register.
        dst: Reg,
        /// Operand register.
        x: Reg,
    },
    /// `arith.extf` (`f32` to `f64`).
    ExtF {
        /// Destination register.
        dst: Reg,
        /// Operand register.
        x: Reg,
    },
    /// `math.*` function application.
    Math {
        /// Operation selector.
        op: MathOp,
        /// Destination register.
        dst: Reg,
        /// Operand register.
        x: Reg,
        /// Second operand register (`powf` only; `0` otherwise).
        y: Reg,
        /// Whether the result narrows to `f32`.
        f32_out: bool,
    },
    /// Per-work-item private allocation (fresh storage on every execution,
    /// like the tree-walk interpreter).
    Alloca {
        /// Destination register.
        dst: Reg,
        /// Element type of the allocation.
        elem: Type,
        /// Static shape, padded with 1s to rank 3.
        shape: [i64; 3],
        /// Number of valid indices.
        rank: u32,
        /// Total element count.
        len: usize,
    },
    /// Work-group-shared allocation, cached per `site` in the group ctx.
    LocalAlloca {
        /// Destination register.
        dst: Reg,
        /// Memory-access site id (keys the coalescing tracker).
        site: u32,
        /// Element type of the allocation.
        elem: Type,
        /// Static shape, padded with 1s to rank 3.
        shape: [i64; 3],
        /// Number of valid indices.
        rank: u32,
        /// Total element count.
        len: usize,
    },
    /// Memory load through a memref view.
    Load {
        /// Destination register.
        dst: Reg,
        /// Memref operand register.
        mem: Reg,
        /// Index operand registers (first `rank` entries are valid).
        idx: [Reg; 3],
        /// Number of valid indices.
        rank: u8,
        /// Memory-access site id (keys the coalescing tracker).
        site: u32,
    },
    /// Memory store through a memref view.
    Store {
        /// Value register to store.
        val: Reg,
        /// Memref operand register.
        mem: Reg,
        /// Index operand registers (first `rank` entries are valid).
        idx: [Reg; 3],
        /// Number of valid indices.
        rank: u8,
        /// Memory-access site id (keys the coalescing tracker).
        site: u32,
    },
    /// `sycl.id`/`sycl.range` construction from components.
    VecCtor {
        /// Destination register.
        dst: Reg,
        /// Component registers (first `rank` entries are valid).
        comps: [Reg; 3],
        /// Number of valid indices.
        rank: u8,
    },
    /// `!sycl.nd_range` construction from global and local ranges.
    NdRangeCtor {
        /// Destination register.
        dst: Reg,
        /// Global-range vector register.
        g: Reg,
        /// Local-range vector register.
        l: Reg,
    },
    /// Component read of an id/range vector.
    VecGet {
        /// Destination register.
        dst: Reg,
        /// Vector operand register.
        v: Reg,
        /// Dimension operand.
        dim: DimSrc,
    },
    /// `sycl.range.size`: product of the extents.
    RangeSize {
        /// Destination register.
        dst: Reg,
        /// Vector operand register.
        v: Reg,
    },
    /// Work-item position query.
    ItemQuery {
        /// Destination register.
        dst: Reg,
        /// Which position query to answer.
        q: ItemQ,
        /// Dimension operand.
        dim: DimSrc,
    },
    /// `sycl.item.get_linear_id` and the nd_item equivalent.
    GlobalLinearId {
        /// Destination register.
        dst: Reg,
    },
    /// `sycl.nd_item.get_local_linear_id`.
    LocalLinearId {
        /// Destination register.
        dst: Reg,
    },
    /// `sycl.nd_item.get_group`: the item value itself.
    ItemSelf {
        /// Destination register.
        dst: Reg,
    },
    /// `sycl.accessor.subscript`: a memref view into the accessor.
    AccSubscript {
        /// Destination register.
        dst: Reg,
        /// Accessor operand register.
        acc: Reg,
        /// Id vector register.
        id: Reg,
    },
    /// `sycl.accessor.get_range` along a dimension.
    AccRange {
        /// Destination register.
        dst: Reg,
        /// Accessor operand register.
        acc: Reg,
        /// Dimension operand.
        dim: DimSrc,
    },
    /// `sycl.accessor.base`: an opaque integer identifying the storage.
    AccBase {
        /// Destination register.
        dst: Reg,
        /// Accessor operand register.
        acc: Reg,
    },
    /// `sycl.group.barrier`: suspend until the whole group arrives.
    Barrier,
    /// Unconditional jump.
    Jump {
        /// Jump target pc.
        target: u32,
    },
    /// `scf.if` dispatch: falls through into the then-arm, jumps to
    /// `target` (the else-arm) on a false condition.
    BranchIfFalse {
        /// Condition register.
        cond: Reg,
        /// Jump target pc.
        target: u32,
    },
    /// Loop entry: validates the step, sets `iv := lb` and jumps to
    /// `exit` when the trip count is zero.
    ForEnter {
        /// Lower-bound register.
        lb: Reg,
        /// Upper-bound register.
        ub: Reg,
        /// Step register.
        step: Reg,
        /// Induction-variable register.
        iv: Reg,
        /// Pc of the first instruction after the loop.
        exit: u32,
    },
    /// Loop back-edge: `iv += step`, jumping to `body` while `iv < ub`.
    ForNext {
        /// Induction-variable register.
        iv: Reg,
        /// Step register.
        step: Reg,
        /// Upper-bound register.
        ub: Reg,
        /// Pc of the first body instruction.
        body: u32,
    },
    /// `func.call` into another plan function.
    Call {
        /// Callee plan-function index.
        func: u32,
        /// Argument registers, in callee parameter order.
        args: Box<[Reg]>,
        /// Registers receiving the callee’s results.
        results: Box<[Reg]>,
    },
    /// `func.return`: pop the frame (kernel exit at frame 0).
    Return {
        /// Returned value registers.
        vals: Box<[Reg]>,
    },
    /// Fused `Load` + float accumulate ([`fuse_plan`]): loads one element
    /// and immediately combines it with `other` — the load-accumulate
    /// pattern of reduction and stencil inner loops. `loaded_is_lhs`
    /// preserves the original operand order (relevant for error messages
    /// and non-commutative extensions).
    LoadBinFloat {
        /// Operation selector.
        op: FloatBin,
        /// Destination register.
        dst: Reg,
        /// The non-loaded operand register.
        other: Reg,
        /// Whether the loaded value was the left operand.
        loaded_is_lhs: bool,
        /// Whether the result narrows to `f32`.
        f32_out: bool,
        /// Memref operand register.
        mem: Reg,
        /// Index operand registers (first `rank` entries are valid).
        idx: [Reg; 3],
        /// Number of valid indices.
        rank: u8,
        /// Memory-access site id (keys the coalescing tracker).
        site: u32,
    },
    /// Fused `muli` + `addi` ([`fuse_plan`]): `dst = a*b + c`, the linear
    /// addressing chain of every row-major index computation.
    MulAddInt {
        /// Destination register.
        dst: Reg,
        /// First factor register.
        a: Reg,
        /// Second factor register.
        b: Reg,
        /// Addend register.
        c: Reg,
    },
    /// Fused `cmpi` + `BranchIfFalse` ([`fuse_plan`]): jumps to `target`
    /// when the predicate over `l`, `r` is false.
    CmpIBranch {
        /// Pre-parsed comparison predicate.
        pred: CmpPred,
        /// Left operand register.
        l: Reg,
        /// Right operand register.
        r: Reg,
        /// Jump target pc.
        target: u32,
    },
    /// Fused `VecCtor` + `AccSubscript` + `Load` chain ([`fuse_plan`]):
    /// the accessor addressing chain `a[id...]` of every accessor read —
    /// the `--profile` mode's top-ranked fusion candidate. Builds the id
    /// vector, subscripts the accessor and loads through the resulting
    /// view in one dispatch, bumping exactly the statistics and raising
    /// exactly the errors of the three instructions it replaces.
    AccLoadIndexed {
        /// Destination register.
        dst: Reg,
        /// Accessor operand register.
        acc: Reg,
        /// Id component registers (first `comps_rank` entries are valid).
        comps: [Reg; 3],
        /// Number of valid id components.
        comps_rank: u8,
        /// Index operand registers of the elided load (first `rank`
        /// entries are valid).
        idx: [Reg; 3],
        /// Number of valid indices.
        rank: u8,
        /// Memory-access site id (keys the coalescing tracker).
        site: u32,
    },
    /// Store-side twin of [`Instr::AccLoadIndexed`]: fused `VecCtor` +
    /// `AccSubscript` + `Store` — the accessor addressing chain of every
    /// accessor write.
    AccStoreIndexed {
        /// Value register to store.
        val: Reg,
        /// Accessor operand register.
        acc: Reg,
        /// Id component registers (first `comps_rank` entries are valid).
        comps: [Reg; 3],
        /// Number of valid id components.
        comps_rank: u8,
        /// Index operand registers of the elided store (first `rank`
        /// entries are valid).
        idx: [Reg; 3],
        /// Number of valid indices.
        rank: u8,
        /// Memory-access site id (keys the coalescing tracker).
        site: u32,
    },
    /// Fused `Load` + `mulf` + `addf` chain ([`fuse_plan`]): the
    /// multiply-accumulate inner loop of GEMM-shaped kernels,
    /// `dst = (loaded ⊙ b) ⊕ c` with the original operand orders
    /// preserved on both the multiply and the add.
    LoadMulAddF {
        /// Destination register.
        dst: Reg,
        /// Memref operand register.
        mem: Reg,
        /// Index operand registers (first `rank` entries are valid).
        idx: [Reg; 3],
        /// Number of valid indices.
        rank: u8,
        /// Memory-access site id (keys the coalescing tracker).
        site: u32,
        /// The non-loaded multiply operand register.
        b: Reg,
        /// Whether the loaded value was the multiply's left operand.
        loaded_is_lhs: bool,
        /// Whether the elided product narrowed to `f32` before the add.
        mul_f32: bool,
        /// The non-product add operand register.
        c: Reg,
        /// Whether the product was the add's left operand.
        prod_is_lhs: bool,
        /// Whether the result narrows to `f32`.
        f32_out: bool,
    },
    /// Fused float binary op + `Store` ([`fuse_plan`]): the
    /// accumulate-then-store tail of map-style kernels, `mem[idx...] =
    /// l ⊕ r` without materializing the result register.
    StoreBinFloat {
        /// Operation selector.
        op: FloatBin,
        /// Left operand register.
        l: Reg,
        /// Right operand register.
        r: Reg,
        /// Whether the stored value narrows to `f32`.
        f32_out: bool,
        /// Memref operand register.
        mem: Reg,
        /// Index operand registers (first `rank` entries are valid).
        idx: [Reg; 3],
        /// Number of valid indices.
        rank: u8,
        /// Memory-access site id (keys the coalescing tracker).
        site: u32,
    },
    /// Fused `VecCtor` + `AccSubscript` + `Const` + `Load` quad
    /// ([`fuse_plan`]): the **un-CSE'd** accessor addressing chain the
    /// DPC++ flow emits — the builder's zero constant of `load_via_id`
    /// still interposed between the subscript and the load. A
    /// **write-through** superinstruction: the id vector, the subscript
    /// view and the constant keep their register writes (later
    /// un-deduplicated chains re-read them), so the rewrite needs no
    /// read-count legality — replaying all four arms in order is
    /// bit-identical by construction.
    AccLoadQuad {
        /// Destination register.
        dst: Reg,
        /// Accessor operand register.
        acc: Reg,
        /// Id component registers (first `comps_rank` entries are valid).
        comps: [Reg; 3],
        /// Number of valid id components.
        comps_rank: u8,
        /// Write-through register of the id vector.
        id: Reg,
        /// Write-through register of the subscript view.
        view: Reg,
        /// Write-through register of the index constant.
        cst: Reg,
        /// The index constant's value (checked int at run time, exactly
        /// as the elided `Load` would).
        cst_val: RtValue,
        /// Memory-access site id (keys the coalescing tracker).
        site: u32,
    },
    /// Store-side twin of [`Instr::AccLoadQuad`]: fused `VecCtor` +
    /// `AccSubscript` + `Const` + `Store`, with all three intermediate
    /// register writes kept.
    AccStoreQuad {
        /// Value register to store.
        val: Reg,
        /// Accessor operand register.
        acc: Reg,
        /// Id component registers (first `comps_rank` entries are valid).
        comps: [Reg; 3],
        /// Number of valid id components.
        comps_rank: u8,
        /// Write-through register of the id vector.
        id: Reg,
        /// Write-through register of the subscript view.
        view: Reg,
        /// Write-through register of the index constant.
        cst: Reg,
        /// The index constant's value.
        cst_val: RtValue,
        /// Memory-access site id (keys the coalescing tracker).
        site: u32,
    },
    /// Write-through variant of [`Instr::AccLoadIndexed`]
    /// ([`fuse_plan`]): fuses the `VecCtor` + `AccSubscript` + `Load`
    /// chain even when the id vector or the view is multiply-read (GEMM's
    /// `c[i,j]` view feeds both its load and its store) by keeping both
    /// intermediate register writes. Later readers observe exactly the
    /// unfused register-file state.
    AccLoadIdxWt {
        /// Destination register.
        dst: Reg,
        /// Accessor operand register.
        acc: Reg,
        /// Id component registers (first `comps_rank` entries are valid).
        comps: [Reg; 3],
        /// Number of valid id components.
        comps_rank: u8,
        /// Write-through register of the id vector.
        id: Reg,
        /// Write-through register of the subscript view.
        view: Reg,
        /// Index operand registers of the load (first `rank` entries are
        /// valid).
        idx: [Reg; 3],
        /// Number of valid indices.
        rank: u8,
        /// Memory-access site id (keys the coalescing tracker).
        site: u32,
    },
    /// Store-side twin of [`Instr::AccLoadIdxWt`]: fused `VecCtor` +
    /// `AccSubscript` + `Store` with both intermediate register writes
    /// kept.
    AccStoreIdxWt {
        /// Value register to store.
        val: Reg,
        /// Accessor operand register.
        acc: Reg,
        /// Id component registers (first `comps_rank` entries are valid).
        comps: [Reg; 3],
        /// Number of valid id components.
        comps_rank: u8,
        /// Write-through register of the id vector.
        id: Reg,
        /// Write-through register of the subscript view.
        view: Reg,
        /// Index operand registers of the store (first `rank` entries are
        /// valid).
        idx: [Reg; 3],
        /// Number of valid indices.
        rank: u8,
        /// Memory-access site id (keys the coalescing tracker).
        site: u32,
    },
    /// Write-through variant of [`Instr::StoreBinFloat`]
    /// ([`fuse_plan`]): fuses the float-op + `Store` pair even when the
    /// accumulated value is multiply-read by keeping its register write.
    StoreBinFloatWt {
        /// Operation selector.
        op: FloatBin,
        /// Left operand register.
        l: Reg,
        /// Right operand register.
        r: Reg,
        /// Whether the stored value narrows to `f32`.
        f32_out: bool,
        /// Write-through register of the accumulated value.
        t: Reg,
        /// Memref operand register.
        mem: Reg,
        /// Index operand registers (first `rank` entries are valid).
        idx: [Reg; 3],
        /// Number of valid indices.
        rank: u8,
        /// Memory-access site id (keys the coalescing tracker).
        site: u32,
    },
}

impl Instr {
    /// Short static mnemonic of the instruction, used by the `--profile`
    /// execution-count dump to aggregate counts per opcode.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::Const { .. } => "const",
            Instr::ConstDense { .. } => "const.dense",
            Instr::Copy { .. } => "copy",
            Instr::BinInt { op, .. } => match op {
                IntBin::Add => "addi",
                IntBin::Sub => "subi",
                IntBin::Mul => "muli",
                IntBin::DivS => "divsi",
                IntBin::RemS => "remsi",
                IntBin::And => "andi",
                IntBin::Or => "ori",
                IntBin::Xor => "xori",
                IntBin::MinS => "minsi",
                IntBin::MaxS => "maxsi",
            },
            Instr::BinFloat { op, .. } => match op {
                FloatBin::Add => "addf",
                FloatBin::Sub => "subf",
                FloatBin::Mul => "mulf",
                FloatBin::Div => "divf",
                FloatBin::Min => "minf",
                FloatBin::Max => "maxf",
            },
            Instr::NegF { .. } => "negf",
            Instr::CmpI { .. } => "cmpi",
            Instr::CmpF { .. } => "cmpf",
            Instr::Select { .. } => "select",
            Instr::SiToFp { .. } => "sitofp",
            Instr::FpToSi { .. } => "fptosi",
            Instr::TruncF { .. } => "truncf",
            Instr::ExtF { .. } => "extf",
            Instr::Math { op, .. } => match op {
                MathOp::Sqrt => "sqrt",
                MathOp::Exp => "exp",
                MathOp::Log => "log",
                MathOp::Absf => "absf",
                MathOp::Sin => "sin",
                MathOp::Cos => "cos",
                MathOp::Floor => "floor",
                MathOp::Rsqrt => "rsqrt",
                MathOp::Powf => "powf",
            },
            Instr::Alloca { .. } => "alloca",
            Instr::LocalAlloca { .. } => "local.alloca",
            Instr::Load { .. } => "load",
            Instr::Store { .. } => "store",
            Instr::VecCtor { .. } => "vec.ctor",
            Instr::NdRangeCtor { .. } => "ndrange.ctor",
            Instr::VecGet { .. } => "vec.get",
            Instr::RangeSize { .. } => "range.size",
            Instr::ItemQuery { q, .. } => match q {
                ItemQ::GlobalId => "item.global_id",
                ItemQ::LocalId => "item.local_id",
                ItemQ::GroupId => "item.group_id",
                ItemQ::GlobalRange => "item.global_range",
                ItemQ::LocalRange => "item.local_range",
                ItemQ::GroupRange => "item.group_range",
            },
            Instr::GlobalLinearId { .. } => "item.global_linear_id",
            Instr::LocalLinearId { .. } => "item.local_linear_id",
            Instr::ItemSelf { .. } => "item.self",
            Instr::AccSubscript { .. } => "acc.subscript",
            Instr::AccRange { .. } => "acc.range",
            Instr::AccBase { .. } => "acc.base",
            Instr::Barrier => "barrier",
            Instr::Jump { .. } => "jump",
            Instr::BranchIfFalse { .. } => "br.false",
            Instr::ForEnter { .. } => "for.enter",
            Instr::ForNext { .. } => "for.next",
            Instr::Call { .. } => "call",
            Instr::Return { .. } => "return",
            Instr::LoadBinFloat { op, .. } => match op {
                FloatBin::Add => "load.addf",
                FloatBin::Mul => "load.mulf",
                _ => "load.binf",
            },
            Instr::MulAddInt { .. } => "muladd",
            Instr::CmpIBranch { .. } => "cmpi.br",
            Instr::AccLoadIndexed { .. } => "acc.load.idx",
            Instr::AccStoreIndexed { .. } => "acc.store.idx",
            Instr::LoadMulAddF { .. } => "load.fma",
            Instr::StoreBinFloat { op, .. } => match op {
                FloatBin::Add => "addf.store",
                FloatBin::Mul => "mulf.store",
                _ => "binf.store",
            },
            Instr::AccLoadQuad { .. } => "acc.load.quad",
            Instr::AccStoreQuad { .. } => "acc.store.quad",
            Instr::AccLoadIdxWt { .. } => "acc.load.idx.wt",
            Instr::AccStoreIdxWt { .. } => "acc.store.idx.wt",
            Instr::StoreBinFloatWt { op, .. } => match op {
                FloatBin::Add => "addf.store.wt",
                FloatBin::Mul => "mulf.store.wt",
                _ => "binf.store.wt",
            },
        }
    }

    /// Weighted operation count charged against an execution budget
    /// (`--max-ops`). Superinstructions charge the number of instructions
    /// they replaced, so a budget trips at the same point — with the same
    /// [`crate::LimitKind`] — under every fusion level.
    pub(crate) fn op_weight(&self) -> u64 {
        match self {
            Instr::LoadBinFloat { .. }
            | Instr::MulAddInt { .. }
            | Instr::CmpIBranch { .. }
            | Instr::StoreBinFloat { .. }
            | Instr::StoreBinFloatWt { .. } => 2,
            Instr::AccLoadIndexed { .. }
            | Instr::AccStoreIndexed { .. }
            | Instr::LoadMulAddF { .. }
            | Instr::AccLoadIdxWt { .. }
            | Instr::AccStoreIdxWt { .. } => 3,
            Instr::AccLoadQuad { .. } | Instr::AccStoreQuad { .. } => 4,
            _ => 1,
        }
    }

    /// The single register this instruction defines, if any (`Call` writes
    /// several; control flow writes none). Drives the dataflow-adjacency
    /// filter of the fusion-candidate profile.
    fn dst_reg(&self) -> Option<Reg> {
        match self {
            Instr::Const { dst, .. }
            | Instr::ConstDense { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::BinInt { dst, .. }
            | Instr::BinFloat { dst, .. }
            | Instr::NegF { dst, .. }
            | Instr::CmpI { dst, .. }
            | Instr::CmpF { dst, .. }
            | Instr::Select { dst, .. }
            | Instr::SiToFp { dst, .. }
            | Instr::FpToSi { dst, .. }
            | Instr::TruncF { dst, .. }
            | Instr::ExtF { dst, .. }
            | Instr::Math { dst, .. }
            | Instr::Alloca { dst, .. }
            | Instr::LocalAlloca { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::VecCtor { dst, .. }
            | Instr::NdRangeCtor { dst, .. }
            | Instr::VecGet { dst, .. }
            | Instr::RangeSize { dst, .. }
            | Instr::ItemQuery { dst, .. }
            | Instr::GlobalLinearId { dst }
            | Instr::LocalLinearId { dst }
            | Instr::ItemSelf { dst }
            | Instr::AccSubscript { dst, .. }
            | Instr::AccRange { dst, .. }
            | Instr::AccBase { dst, .. }
            | Instr::LoadBinFloat { dst, .. }
            | Instr::MulAddInt { dst, .. }
            | Instr::AccLoadIndexed { dst, .. }
            // Write-through fusions also define their kept intermediates,
            // but the profile's adjacency filter only cares about the
            // primary result.
            | Instr::AccLoadQuad { dst, .. }
            | Instr::AccLoadIdxWt { dst, .. }
            | Instr::LoadMulAddF { dst, .. } => Some(*dst),
            Instr::Store { .. }
            | Instr::AccStoreIndexed { .. }
            | Instr::AccStoreQuad { .. }
            | Instr::AccStoreIdxWt { .. }
            | Instr::StoreBinFloat { .. }
            | Instr::StoreBinFloatWt { .. }
            | Instr::Barrier
            | Instr::Jump { .. }
            | Instr::BranchIfFalse { .. }
            | Instr::ForEnter { .. }
            | Instr::ForNext { .. }
            | Instr::Call { .. }
            | Instr::Return { .. }
            | Instr::CmpIBranch { .. } => None,
        }
    }

    /// Visit every pc this instruction may transfer control to.
    /// Delegates to [`for_each_target`] on a scratch clone so the two can
    /// never drift apart when a new control-flow instruction is added
    /// (profiling is a cold path; the clone is irrelevant there).
    fn jump_targets(&self, mut f: impl FnMut(u32)) {
        let mut scratch = self.clone();
        for_each_target(&mut scratch, |t| f(*t));
    }
}

// ----------------------------------------------------------------------
// Plans
// ----------------------------------------------------------------------

/// One decoded function: flat code plus its register-file size.
#[derive(Clone, Debug)]
pub struct FuncPlan {
    /// Flat instruction stream.
    pub code: Vec<Instr>,
    /// Size of the register file a frame of this function needs.
    pub reg_count: u32,
    /// Registers of the entry block's parameters (kernel arguments for the
    /// entry function, call parameters otherwise).
    pub params: Vec<Reg>,
    /// Whether the trailing parameter is the SYCL item (kernels only).
    pub has_item_param: bool,
}

/// A dense-constant template, cloned into the pool on first use.
#[derive(Clone, Debug)]
pub struct DenseConst {
    /// The constant data, cloned into an arena on materialization.
    pub data: DataVec,
    /// Static shape, padded with 1s to rank 3.
    pub shape: [i64; 3],
    /// Number of meaningful dimensions.
    pub rank: u32,
}

/// The immutable decode of one kernel launch: the kernel function at index
/// 0 plus every transitively called function.
///
/// A plan is fully self-contained at run time (interned `Type` handles are
/// `Arc`-backed) and is shared by reference across all work-items, all
/// work-groups and — under `--threads=N` — all worker threads of a launch,
/// as well as across launches through the device's plan cache.
#[derive(Clone, Debug)]
pub struct KernelPlan {
    /// Decoded functions; index 0 is the kernel.
    pub funcs: Vec<FuncPlan>,
    /// Dense-constant templates referenced by `Instr::ConstDense`.
    pub dense_consts: Vec<DenseConst>,
    /// Number of memory-access sites (load/store instrs) across all
    /// functions; sizes the per-work-item visit counters that feed the
    /// coalescing tracker.
    pub mem_sites: u32,
    /// Number of `sycl.local.alloca` sites across all functions.
    pub local_sites: u32,
    /// Number of two-instruction pairs rewritten into superinstructions
    /// by [`fuse_plan`] (`0` for a freshly decoded, unfused plan).
    pub fused_pairs: u32,
    /// Number of three-instruction chains rewritten into
    /// superinstructions by [`fuse_plan`] (`0` for a freshly decoded,
    /// unfused plan).
    pub fused_chains: u32,
    /// Number of four-instruction un-CSE'd accessor chains rewritten
    /// into [`Instr::AccLoadQuad`] / [`Instr::AccStoreQuad`] by
    /// [`fuse_plan`].
    pub fused_quads: u32,
    /// Number of write-through windows ([`Instr::AccLoadIdxWt`],
    /// [`Instr::AccStoreIdxWt`], [`Instr::StoreBinFloatWt`]) rewritten
    /// by [`fuse_plan`].
    pub fused_wt: u32,
}

/// [`KernelPlan`] must stay `Send + Sync`: the parallel work-group
/// scheduler shares one plan by reference across worker threads, and the
/// device's cross-launch cache hands out `Arc<KernelPlan>`. This assertion
/// fails to compile if a non-thread-safe handle (an `Rc`, a `RefCell`)
/// ever sneaks back into the plan representation.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KernelPlan>();
};

// ----------------------------------------------------------------------
// Opcode table: interned-OpName dispatch for the decoder
// ----------------------------------------------------------------------

/// Decoder-level opcode of a source operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpKind {
    Constant,
    IntBin(IntBin),
    FloatBin(FloatBin),
    NegF,
    CmpI,
    CmpF,
    Select,
    CopyCast,
    SiToFp,
    FpToSi,
    TruncF,
    ExtF,
    Math(MathOp),
    Alloca,
    LocalAlloca,
    Load,
    Store,
    MemRefCast,
    IdCtor,
    NdRangeCtor,
    VecGet,
    RangeSize,
    Item(ItemQ),
    GlobalLinearId,
    LocalLinearId,
    ItemSelf,
    AccSubscript,
    AccRange,
    AccBase,
    Undef,
    Barrier,
    If,
    For,
    Call,
    Return,
    Yield,
}

/// Maps interned [`OpName`] ids to decoder opcodes. Built once per decode
/// from the context's registry — after construction, dispatch is a single
/// integer-keyed hash lookup and the decoder never touches an op-name
/// string.
struct OpKindTable {
    map: HashMap<OpName, OpKind>,
}

impl OpKindTable {
    fn new(m: &Module) -> OpKindTable {
        use OpKind::*;
        let entries: &[(&str, OpKind)] = &[
            ("arith.constant", Constant),
            ("arith.addi", IntBin(self::IntBin::Add)),
            ("arith.subi", IntBin(self::IntBin::Sub)),
            ("arith.muli", IntBin(self::IntBin::Mul)),
            ("arith.divsi", IntBin(self::IntBin::DivS)),
            ("arith.remsi", IntBin(self::IntBin::RemS)),
            ("arith.andi", IntBin(self::IntBin::And)),
            ("arith.ori", IntBin(self::IntBin::Or)),
            ("arith.xori", IntBin(self::IntBin::Xor)),
            ("arith.minsi", IntBin(self::IntBin::MinS)),
            ("arith.maxsi", IntBin(self::IntBin::MaxS)),
            ("arith.addf", FloatBin(self::FloatBin::Add)),
            ("arith.subf", FloatBin(self::FloatBin::Sub)),
            ("arith.mulf", FloatBin(self::FloatBin::Mul)),
            ("arith.divf", FloatBin(self::FloatBin::Div)),
            ("arith.minf", FloatBin(self::FloatBin::Min)),
            ("arith.maxf", FloatBin(self::FloatBin::Max)),
            ("arith.negf", NegF),
            ("arith.cmpi", CmpI),
            ("arith.cmpf", CmpF),
            ("arith.select", Select),
            ("arith.index_cast", CopyCast),
            ("arith.extsi", CopyCast),
            ("arith.trunci", CopyCast),
            ("arith.sitofp", SiToFp),
            ("arith.fptosi", FpToSi),
            ("arith.truncf", TruncF),
            ("arith.extf", ExtF),
            ("math.sqrt", Math(MathOp::Sqrt)),
            ("math.exp", Math(MathOp::Exp)),
            ("math.log", Math(MathOp::Log)),
            ("math.absf", Math(MathOp::Absf)),
            ("math.sin", Math(MathOp::Sin)),
            ("math.cos", Math(MathOp::Cos)),
            ("math.floor", Math(MathOp::Floor)),
            ("math.rsqrt", Math(MathOp::Rsqrt)),
            ("math.powf", Math(MathOp::Powf)),
            ("memref.alloca", Alloca),
            ("sycl.local.alloca", LocalAlloca),
            ("memref.load", Load),
            ("affine.load", Load),
            ("memref.store", Store),
            ("affine.store", Store),
            ("memref.cast", MemRefCast),
            ("sycl.id.constructor", IdCtor),
            ("sycl.range.constructor", IdCtor),
            ("sycl.nd_range.constructor", NdRangeCtor),
            ("sycl.id.get", VecGet),
            ("sycl.range.get", VecGet),
            ("sycl.range.size", RangeSize),
            ("sycl.item.get_id", Item(ItemQ::GlobalId)),
            ("sycl.nd_item.get_global_id", Item(ItemQ::GlobalId)),
            ("sycl.nd_item.get_local_id", Item(ItemQ::LocalId)),
            ("sycl.nd_item.get_group_id", Item(ItemQ::GroupId)),
            ("sycl.group.get_id", Item(ItemQ::GroupId)),
            ("sycl.item.get_range", Item(ItemQ::GlobalRange)),
            ("sycl.nd_item.get_global_range", Item(ItemQ::GlobalRange)),
            ("sycl.nd_item.get_local_range", Item(ItemQ::LocalRange)),
            ("sycl.group.get_local_range", Item(ItemQ::LocalRange)),
            ("sycl.nd_item.get_group_range", Item(ItemQ::GroupRange)),
            ("sycl.item.get_linear_id", GlobalLinearId),
            ("sycl.nd_item.get_global_linear_id", GlobalLinearId),
            ("sycl.nd_item.get_local_linear_id", LocalLinearId),
            ("sycl.nd_item.get_group", ItemSelf),
            ("sycl.accessor.subscript", AccSubscript),
            ("sycl.accessor.get_range", AccRange),
            ("sycl.accessor.base", AccBase),
            ("llvm.undef", Undef),
            ("sycl.group.barrier", Barrier),
            ("scf.if", If),
            ("scf.for", For),
            ("affine.for", For),
            ("func.call", Call),
            ("func.return", Return),
            ("scf.yield", Yield),
            ("affine.yield", Yield),
        ];
        let ctx = m.ctx();
        let mut map = HashMap::with_capacity(entries.len());
        for (name, kind) in entries {
            // Unregistered dialects simply cannot appear in the module.
            if let Some(id) = ctx.lookup_op(name) {
                map.insert(id, *kind);
            }
        }
        OpKindTable { map }
    }

    #[inline]
    fn get(&self, name: OpName) -> Option<OpKind> {
        self.map.get(&name).copied()
    }
}

// ----------------------------------------------------------------------
// Decoder
// ----------------------------------------------------------------------

struct Decoder<'a> {
    m: &'a Module,
    kinds: OpKindTable,
    keys: sycl_mlir_ir::CommonKeys,
    /// Decoded functions (index 0 = the kernel) and the queue of source
    /// functions still to decode.
    funcs: Vec<FuncPlan>,
    func_ids: HashMap<OpId, u32>,
    pending: Vec<OpId>,
    dense_consts: Vec<DenseConst>,
    dense_ids: HashMap<OpId, u32>,
    mem_sites: u32,
    local_sites: u32,
}

/// Per-function decode state: the value→register map and emitted code.
struct FuncDecode {
    regs: HashMap<ValueId, Reg>,
    next_reg: Reg,
    code: Vec<Instr>,
}

impl FuncDecode {
    fn reg_of(&mut self, v: ValueId) -> Reg {
        *self.regs.entry(v).or_insert_with(|| {
            let r = self.next_reg;
            self.next_reg += 1;
            r
        })
    }

    fn fresh(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn pc(&self) -> u32 {
        self.code.len() as u32
    }
}

/// Decode `kernel` (and its callees) into an immutable [`KernelPlan`].
pub fn decode_kernel(m: &Module, kernel: OpId) -> Result<KernelPlan, DecodeError> {
    let mut d = Decoder {
        m,
        kinds: OpKindTable::new(m),
        keys: m.ctx().common_keys(),
        funcs: Vec::new(),
        func_ids: HashMap::new(),
        pending: Vec::new(),
        dense_consts: Vec::new(),
        dense_ids: HashMap::new(),
        mem_sites: 0,
        local_sites: 0,
    };
    d.func_id(kernel);
    while let Some(f) = d.pending.pop() {
        let plan = d.decode_func(f)?;
        let idx = d.func_ids[&f] as usize;
        d.funcs[idx] = plan;
    }
    Ok(KernelPlan {
        funcs: d.funcs,
        dense_consts: d.dense_consts,
        mem_sites: d.mem_sites,
        local_sites: d.local_sites,
        fused_pairs: 0,
        fused_chains: 0,
        fused_quads: 0,
        fused_wt: 0,
    })
}

impl<'a> Decoder<'a> {
    /// Plan-internal id for a source function, queueing it for decoding on
    /// first reference.
    fn func_id(&mut self, f: OpId) -> u32 {
        if let Some(&id) = self.func_ids.get(&f) {
            return id;
        }
        let id = self.funcs.len() as u32;
        self.func_ids.insert(f, id);
        // Placeholder; patched when the pending queue drains.
        self.funcs.push(FuncPlan {
            code: Vec::new(),
            reg_count: 0,
            params: Vec::new(),
            has_item_param: false,
        });
        self.pending.push(f);
        id
    }

    fn decode_func(&mut self, func: OpId) -> Result<FuncPlan, DecodeError> {
        let m = self.m;
        let entry = m.op_region_block(func, 0);
        let mut fd = FuncDecode {
            regs: HashMap::new(),
            next_reg: 0,
            code: Vec::new(),
        };
        let params: Vec<Reg> = m.block_args(entry).iter().map(|&a| fd.reg_of(a)).collect();
        let has_item_param = m
            .block_args(entry)
            .last()
            .map(|&p| sycl_mlir_sycl::types::is_item_like(&m.value_type(p)))
            .unwrap_or(false);
        self.decode_block(&mut fd, entry)?;
        // A body that falls off the end without a terminator behaves like a
        // void return (mirrors the tree-walk frame pop).
        fd.code.push(Instr::Return { vals: Box::new([]) });
        Ok(FuncPlan {
            code: fd.code,
            reg_count: fd.next_reg,
            params,
            has_item_param,
        })
    }

    /// Decode every op of `block` into `fd.code`. Yields terminate decoding
    /// of the block and are handled by the enclosing structure's decoder.
    fn decode_block(
        &mut self,
        fd: &mut FuncDecode,
        block: sycl_mlir_ir::BlockId,
    ) -> Result<(), DecodeError> {
        let m = self.m;
        for &op in m.block_ops(block) {
            let kind = self.kinds.get(m.op_name(op)).ok_or_else(|| {
                dec_err(format!("op `{}` is not plan-decodable", m.op_name_str(op)))
            })?;
            self.decode_op(fd, op, kind)?;
        }
        Ok(())
    }

    fn operand_reg(&self, fd: &mut FuncDecode, op: OpId, index: usize) -> Reg {
        fd.reg_of(self.m.op_operand(op, index))
    }

    fn result_reg(&self, fd: &mut FuncDecode, op: OpId) -> Reg {
        fd.reg_of(self.m.op_result(op, 0))
    }

    /// A dimension operand: folded to `DimSrc::Const` when it is a
    /// compile-time integer constant.
    fn dim_src(&self, fd: &mut FuncDecode, op: OpId) -> DimSrc {
        let v = self.m.op_operand(op, 1);
        if let Some(def) = self.m.def_op(v) {
            if self.kinds.get(self.m.op_name(def)) == Some(OpKind::Constant) {
                if let Some(Attribute::Int(d)) = self.m.attr_by_id(def, self.keys.value) {
                    if (0..3).contains(d) {
                        return DimSrc::Const(*d as u8);
                    }
                }
            }
        }
        DimSrc::Reg(fd.reg_of(v))
    }

    fn index_regs(
        &self,
        fd: &mut FuncDecode,
        op: OpId,
        from: usize,
    ) -> Result<([Reg; 3], u8), DecodeError> {
        let operands = self.m.op_operands(op);
        let n = operands.len() - from;
        if n > 3 {
            return Err(dec_err("more than 3 index operands"));
        }
        let mut idx = [0 as Reg; 3];
        for (i, &v) in operands[from..].iter().enumerate() {
            idx[i] = fd.reg_of(v);
        }
        Ok((idx, n as u8))
    }

    /// Copy `srcs` into `dsts` with parallel-copy semantics: when a source
    /// register is also a destination (loop-carried swaps), route through
    /// fresh scratch registers.
    fn emit_parallel_copy(&self, fd: &mut FuncDecode, dsts: &[Reg], srcs: &[Reg]) {
        let overlap = srcs.iter().any(|s| dsts.contains(s));
        if overlap {
            let scratch: Vec<Reg> = srcs.iter().map(|_| fd.fresh()).collect();
            for (&t, &s) in scratch.iter().zip(srcs) {
                fd.code.push(Instr::Copy { dst: t, src: s });
            }
            for (&d, &t) in dsts.iter().zip(&scratch) {
                fd.code.push(Instr::Copy { dst: d, src: t });
            }
        } else {
            for (&d, &s) in dsts.iter().zip(srcs) {
                if d != s {
                    fd.code.push(Instr::Copy { dst: d, src: s });
                }
            }
        }
    }

    /// The yield operand registers of `block`'s terminator (which must be a
    /// yield for structured regions).
    fn yield_regs(
        &self,
        fd: &mut FuncDecode,
        block: sycl_mlir_ir::BlockId,
    ) -> Result<Vec<Reg>, DecodeError> {
        let m = self.m;
        let term = m
            .block_terminator(block)
            .ok_or_else(|| dec_err("structured region block has no terminator"))?;
        match self.kinds.get(m.op_name(term)) {
            Some(OpKind::Yield) => Ok(m.op_operands(term).iter().map(|&v| fd.reg_of(v)).collect()),
            _ => Err(dec_err("structured region does not end in a yield")),
        }
    }

    /// Decode the ops of a structured-region block, stopping before the
    /// trailing yield (the caller wires the yield's copies).
    fn decode_region_body(
        &mut self,
        fd: &mut FuncDecode,
        block: sycl_mlir_ir::BlockId,
    ) -> Result<(), DecodeError> {
        let m = self.m;
        let ops = m.block_ops(block);
        let Some((&term, body)) = ops.split_last() else {
            return Err(dec_err("empty structured region block"));
        };
        if self.kinds.get(m.op_name(term)) != Some(OpKind::Yield) {
            return Err(dec_err("structured region does not end in a yield"));
        }
        for &op in body {
            let kind = self.kinds.get(m.op_name(op)).ok_or_else(|| {
                dec_err(format!("op `{}` is not plan-decodable", m.op_name_str(op)))
            })?;
            self.decode_op(fd, op, kind)?;
        }
        Ok(())
    }

    fn decode_op(
        &mut self,
        fd: &mut FuncDecode,
        op: OpId,
        kind: OpKind,
    ) -> Result<(), DecodeError> {
        let m = self.m;
        match kind {
            OpKind::Constant => {
                let attr = m
                    .attr_by_id(op, self.keys.value)
                    .ok_or_else(|| dec_err("constant without value"))?;
                let ty = m.value_type(m.op_result(op, 0));
                let dst = self.result_reg(fd, op);
                match (attr, ty.kind()) {
                    (Attribute::Int(x), _) => fd.code.push(Instr::Const {
                        dst,
                        val: RtValue::Int(*x),
                    }),
                    (Attribute::Bool(b), _) => fd.code.push(Instr::Const {
                        dst,
                        val: RtValue::Int(*b as i64),
                    }),
                    (Attribute::Float(f), TypeKind::F32) => fd.code.push(Instr::Const {
                        dst,
                        val: RtValue::F32(*f as f32),
                    }),
                    (Attribute::Float(f), _) => fd.code.push(Instr::Const {
                        dst,
                        val: RtValue::F64(*f),
                    }),
                    (Attribute::DenseF64(_) | Attribute::DenseI64(_), TypeKind::MemRef { .. }) => {
                        let idx = self.dense_const_id(op, attr, &ty)?;
                        fd.code.push(Instr::ConstDense { dst, idx });
                    }
                    _ => return Err(dec_err("unsupported constant kind")),
                }
            }
            OpKind::IntBin(b) => {
                let (l, r) = (self.operand_reg(fd, op, 0), self.operand_reg(fd, op, 1));
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::BinInt { op: b, dst, l, r });
            }
            OpKind::FloatBin(b) => {
                let (l, r) = (self.operand_reg(fd, op, 0), self.operand_reg(fd, op, 1));
                let dst = self.result_reg(fd, op);
                let f32_out = matches!(m.value_type(m.op_result(op, 0)).kind(), TypeKind::F32);
                fd.code.push(Instr::BinFloat {
                    op: b,
                    dst,
                    l,
                    r,
                    f32_out,
                });
            }
            OpKind::NegF => {
                let x = self.operand_reg(fd, op, 0);
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::NegF { dst, x });
            }
            OpKind::CmpI | OpKind::CmpF => {
                let pred = CmpPred::of_attr(m.attr_by_id(op, self.keys.predicate));
                let (l, r) = (self.operand_reg(fd, op, 0), self.operand_reg(fd, op, 1));
                let dst = self.result_reg(fd, op);
                fd.code.push(if kind == OpKind::CmpI {
                    Instr::CmpI { pred, dst, l, r }
                } else {
                    Instr::CmpF { pred, dst, l, r }
                });
            }
            OpKind::Select => {
                let c = self.operand_reg(fd, op, 0);
                let t = self.operand_reg(fd, op, 1);
                let f = self.operand_reg(fd, op, 2);
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::Select { dst, c, t, f });
            }
            OpKind::CopyCast | OpKind::MemRefCast => {
                let src = self.operand_reg(fd, op, 0);
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::Copy { dst, src });
            }
            OpKind::SiToFp => {
                let x = self.operand_reg(fd, op, 0);
                let dst = self.result_reg(fd, op);
                let f32_out = matches!(m.value_type(m.op_result(op, 0)).kind(), TypeKind::F32);
                fd.code.push(Instr::SiToFp { dst, x, f32_out });
            }
            OpKind::FpToSi => {
                let x = self.operand_reg(fd, op, 0);
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::FpToSi { dst, x });
            }
            OpKind::TruncF => {
                let x = self.operand_reg(fd, op, 0);
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::TruncF { dst, x });
            }
            OpKind::ExtF => {
                let x = self.operand_reg(fd, op, 0);
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::ExtF { dst, x });
            }
            OpKind::Math(mop) => {
                let x = self.operand_reg(fd, op, 0);
                let y = if matches!(mop, MathOp::Powf) {
                    self.operand_reg(fd, op, 1)
                } else {
                    0
                };
                let dst = self.result_reg(fd, op);
                let f32_out = matches!(m.value_type(m.op_result(op, 0)).kind(), TypeKind::F32);
                fd.code.push(Instr::Math {
                    op: mop,
                    dst,
                    x,
                    y,
                    f32_out,
                });
            }
            OpKind::Alloca | OpKind::LocalAlloca => {
                let ty = m.value_type(m.op_result(op, 0));
                let shape_v = ty
                    .memref_shape()
                    .ok_or_else(|| dec_err("alloca of non-memref"))?
                    .to_vec();
                let elem = ty
                    .memref_elem()
                    .ok_or_else(|| dec_err("alloca of non-memref"))?;
                let len: i64 = shape_v.iter().product();
                let mut shape = [1_i64; 3];
                for (i, &s) in shape_v.iter().enumerate() {
                    if i >= 3 {
                        return Err(dec_err("alloca rank > 3"));
                    }
                    shape[i] = s;
                }
                let dst = self.result_reg(fd, op);
                let rank = shape_v.len() as u32;
                let len = len.max(0) as usize;
                if kind == OpKind::Alloca {
                    fd.code.push(Instr::Alloca {
                        dst,
                        elem,
                        shape,
                        rank,
                        len,
                    });
                } else {
                    let site = self.local_sites;
                    self.local_sites += 1;
                    fd.code.push(Instr::LocalAlloca {
                        dst,
                        site,
                        elem,
                        shape,
                        rank,
                        len,
                    });
                }
            }
            OpKind::Load => {
                let mem = self.operand_reg(fd, op, 0);
                let (idx, rank) = self.index_regs(fd, op, 1)?;
                let dst = self.result_reg(fd, op);
                let site = self.mem_sites;
                self.mem_sites += 1;
                fd.code.push(Instr::Load {
                    dst,
                    mem,
                    idx,
                    rank,
                    site,
                });
            }
            OpKind::Store => {
                let val = self.operand_reg(fd, op, 0);
                let mem = self.operand_reg(fd, op, 1);
                let (idx, rank) = self.index_regs(fd, op, 2)?;
                let site = self.mem_sites;
                self.mem_sites += 1;
                fd.code.push(Instr::Store {
                    val,
                    mem,
                    idx,
                    rank,
                    site,
                });
            }
            OpKind::IdCtor => {
                let operands = m.op_operands(op);
                if operands.len() > 3 {
                    return Err(dec_err("id constructor rank > 3"));
                }
                let mut comps = [0 as Reg; 3];
                for (i, &v) in operands.iter().enumerate() {
                    comps[i] = fd.reg_of(v);
                }
                let rank = operands.len() as u8;
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::VecCtor { dst, comps, rank });
            }
            OpKind::NdRangeCtor => {
                let g = self.operand_reg(fd, op, 0);
                let l = self.operand_reg(fd, op, 1);
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::NdRangeCtor { dst, g, l });
            }
            OpKind::VecGet => {
                let v = self.operand_reg(fd, op, 0);
                let dim = self.dim_src(fd, op);
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::VecGet { dst, v, dim });
            }
            OpKind::RangeSize => {
                let v = self.operand_reg(fd, op, 0);
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::RangeSize { dst, v });
            }
            OpKind::Item(q) => {
                let dim = self.dim_src(fd, op);
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::ItemQuery { dst, q, dim });
            }
            OpKind::GlobalLinearId => {
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::GlobalLinearId { dst });
            }
            OpKind::LocalLinearId => {
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::LocalLinearId { dst });
            }
            OpKind::ItemSelf => {
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::ItemSelf { dst });
            }
            OpKind::AccSubscript => {
                let acc = self.operand_reg(fd, op, 0);
                let id = self.operand_reg(fd, op, 1);
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::AccSubscript { dst, acc, id });
            }
            OpKind::AccRange => {
                let acc = self.operand_reg(fd, op, 0);
                let dim = self.dim_src(fd, op);
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::AccRange { dst, acc, dim });
            }
            OpKind::AccBase => {
                let acc = self.operand_reg(fd, op, 0);
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::AccBase { dst, acc });
            }
            OpKind::Undef => {
                let dst = self.result_reg(fd, op);
                fd.code.push(Instr::Const {
                    dst,
                    val: RtValue::Int(0),
                });
            }
            OpKind::Barrier => fd.code.push(Instr::Barrier),
            OpKind::If => {
                let cond = self.operand_reg(fd, op, 0);
                let results: Vec<Reg> = m.op_results(op).iter().map(|&r| fd.reg_of(r)).collect();
                if m.op_regions(op).len() < 2 {
                    return Err(dec_err("scf.if without else region"));
                }
                let branch_pc = fd.pc();
                fd.code.push(Instr::BranchIfFalse { cond, target: 0 }); // patched
                let then_blk = m.op_region_block(op, 0);
                self.decode_region_body(fd, then_blk)?;
                let then_yields = self.yield_regs(fd, then_blk)?;
                self.emit_parallel_copy(fd, &results, &then_yields);
                let jump_pc = fd.pc();
                fd.code.push(Instr::Jump { target: 0 }); // patched
                let else_start = fd.pc();
                let else_blk = m.op_region_block(op, 1);
                self.decode_region_body(fd, else_blk)?;
                let else_yields = self.yield_regs(fd, else_blk)?;
                self.emit_parallel_copy(fd, &results, &else_yields);
                let end = fd.pc();
                if let Instr::BranchIfFalse { target, .. } = &mut fd.code[branch_pc as usize] {
                    *target = else_start;
                }
                if let Instr::Jump { target } = &mut fd.code[jump_pc as usize] {
                    *target = end;
                }
            }
            OpKind::For => {
                let lb = self.operand_reg(fd, op, 0);
                let ub = self.operand_reg(fd, op, 1);
                let step = self.operand_reg(fd, op, 2);
                let inits: Vec<Reg> = m.op_operands(op)[3..]
                    .iter()
                    .map(|&v| fd.reg_of(v))
                    .collect();
                let body_blk = m.op_region_block(op, 0);
                let body_args = m.block_args(body_blk);
                if body_args.len() != inits.len() + 1 {
                    return Err(dec_err("loop body arity mismatch"));
                }
                let iv = fd.reg_of(body_args[0]);
                let carries: Vec<Reg> = body_args[1..].iter().map(|&a| fd.reg_of(a)).collect();
                let results: Vec<Reg> = m.op_results(op).iter().map(|&r| fd.reg_of(r)).collect();
                // carries := inits (also the zero-trip result values).
                self.emit_parallel_copy(fd, &carries, &inits);
                let enter_pc = fd.pc();
                fd.code.push(Instr::ForEnter {
                    lb,
                    ub,
                    step,
                    iv,
                    exit: 0,
                }); // patched
                let body_pc = fd.pc();
                self.decode_region_body(fd, body_blk)?;
                let yields = self.yield_regs(fd, body_blk)?;
                self.emit_parallel_copy(fd, &carries, &yields);
                fd.code.push(Instr::ForNext {
                    iv,
                    step,
                    ub,
                    body: body_pc,
                });
                let exit = fd.pc();
                if let Instr::ForEnter { exit: e, .. } = &mut fd.code[enter_pc as usize] {
                    *e = exit;
                }
                self.emit_parallel_copy(fd, &results, &carries);
            }
            OpKind::Call => {
                let scope = enclosing_module(m, op);
                let callee = sycl_mlir_dialects::func::resolve_callee(m, op, scope)
                    .ok_or_else(|| dec_err("unresolved call"))?;
                let func = self.func_id(callee);
                let args: Box<[Reg]> = m.op_operands(op).iter().map(|&v| fd.reg_of(v)).collect();
                let results: Box<[Reg]> = m.op_results(op).iter().map(|&r| fd.reg_of(r)).collect();
                fd.code.push(Instr::Call {
                    func,
                    args,
                    results,
                });
            }
            OpKind::Return => {
                let vals: Box<[Reg]> = m.op_operands(op).iter().map(|&v| fd.reg_of(v)).collect();
                fd.code.push(Instr::Return { vals });
            }
            OpKind::Yield => {
                // Yields are consumed by the enclosing If/For decoder; a
                // yield here means malformed structure.
                return Err(dec_err("yield outside of an if/loop"));
            }
        }
        Ok(())
    }

    fn dense_const_id(
        &mut self,
        op: OpId,
        attr: &Attribute,
        ty: &Type,
    ) -> Result<u32, DecodeError> {
        if let Some(&idx) = self.dense_ids.get(&op) {
            return Ok(idx);
        }
        let elem = ty
            .memref_elem()
            .ok_or_else(|| dec_err("dense constant must be memref"))?;
        let data = match (attr, elem.kind()) {
            (Attribute::DenseF64(v), TypeKind::F32) => {
                DataVec::F32(v.iter().map(|&x| x as f32).collect())
            }
            (Attribute::DenseF64(v), _) => DataVec::F64(v.clone()),
            (Attribute::DenseI64(v), TypeKind::Int(w)) if *w <= 32 => {
                DataVec::I32(v.iter().map(|&x| x as i32).collect())
            }
            (Attribute::DenseI64(v), _) => DataVec::I64(v.clone()),
            _ => return Err(dec_err("unsupported dense constant")),
        };
        let shape_v = ty.memref_shape().unwrap();
        if shape_v.len() > 3 {
            return Err(dec_err("dense constant rank > 3"));
        }
        let mut shape = [1_i64; 3];
        for (i, &s) in shape_v.iter().enumerate() {
            shape[i] = s;
        }
        let idx = self.dense_consts.len() as u32;
        self.dense_consts.push(DenseConst {
            data,
            shape,
            rank: shape_v.len() as u32,
        });
        self.dense_ids.insert(op, idx);
        Ok(idx)
    }
}

// ----------------------------------------------------------------------
// Peephole fusion
// ----------------------------------------------------------------------

/// Call `f` on every register an instruction *reads*.
pub(crate) fn for_each_read(instr: &Instr, mut f: impl FnMut(Reg)) {
    fn dim(d: &DimSrc, f: &mut impl FnMut(Reg)) {
        if let DimSrc::Reg(r) = d {
            f(*r);
        }
    }
    match instr {
        Instr::Const { .. }
        | Instr::ConstDense { .. }
        | Instr::Alloca { .. }
        | Instr::LocalAlloca { .. }
        | Instr::GlobalLinearId { .. }
        | Instr::LocalLinearId { .. }
        | Instr::ItemSelf { .. }
        | Instr::Barrier
        | Instr::Jump { .. } => {}
        Instr::Copy { src, .. } => f(*src),
        Instr::BinInt { l, r, .. }
        | Instr::BinFloat { l, r, .. }
        | Instr::CmpI { l, r, .. }
        | Instr::CmpF { l, r, .. }
        | Instr::CmpIBranch { l, r, .. } => {
            f(*l);
            f(*r);
        }
        Instr::NegF { x, .. }
        | Instr::SiToFp { x, .. }
        | Instr::FpToSi { x, .. }
        | Instr::TruncF { x, .. }
        | Instr::ExtF { x, .. } => f(*x),
        Instr::Select { c, t, f: fv, .. } => {
            f(*c);
            f(*t);
            f(*fv);
        }
        Instr::Math { op, x, y, .. } => {
            f(*x);
            if matches!(op, MathOp::Powf) {
                f(*y);
            }
        }
        Instr::Load { mem, idx, rank, .. } => {
            f(*mem);
            idx[..*rank as usize].iter().for_each(|&r| f(r));
        }
        Instr::Store {
            val,
            mem,
            idx,
            rank,
            ..
        } => {
            f(*val);
            f(*mem);
            idx[..*rank as usize].iter().for_each(|&r| f(r));
        }
        Instr::LoadBinFloat {
            other,
            mem,
            idx,
            rank,
            ..
        } => {
            f(*other);
            f(*mem);
            idx[..*rank as usize].iter().for_each(|&r| f(r));
        }
        Instr::MulAddInt { a, b, c, .. } => {
            f(*a);
            f(*b);
            f(*c);
        }
        Instr::AccLoadIndexed {
            acc,
            comps,
            comps_rank,
            idx,
            rank,
            ..
        } => {
            f(*acc);
            comps[..*comps_rank as usize].iter().for_each(|&r| f(r));
            idx[..*rank as usize].iter().for_each(|&r| f(r));
        }
        Instr::AccStoreIndexed {
            val,
            acc,
            comps,
            comps_rank,
            idx,
            rank,
            ..
        } => {
            f(*val);
            f(*acc);
            comps[..*comps_rank as usize].iter().for_each(|&r| f(r));
            idx[..*rank as usize].iter().for_each(|&r| f(r));
        }
        Instr::LoadMulAddF {
            mem,
            idx,
            rank,
            b,
            c,
            ..
        } => {
            f(*mem);
            idx[..*rank as usize].iter().for_each(|&r| f(r));
            f(*b);
            f(*c);
        }
        Instr::StoreBinFloat {
            l,
            r,
            mem,
            idx,
            rank,
            ..
        } => {
            f(*l);
            f(*r);
            f(*mem);
            idx[..*rank as usize].iter().for_each(|&r| f(r));
        }
        // Write-through fusions: the kept intermediate registers (id,
        // view, constant, accumulated value) are *defined* by the
        // superinstruction, not consumed from outside — only operands
        // external to the elided window count as reads.
        Instr::AccLoadQuad {
            acc,
            comps,
            comps_rank,
            ..
        } => {
            f(*acc);
            comps[..*comps_rank as usize].iter().for_each(|&r| f(r));
        }
        Instr::AccStoreQuad {
            val,
            acc,
            comps,
            comps_rank,
            ..
        } => {
            f(*val);
            f(*acc);
            comps[..*comps_rank as usize].iter().for_each(|&r| f(r));
        }
        Instr::AccLoadIdxWt {
            acc,
            comps,
            comps_rank,
            idx,
            rank,
            ..
        } => {
            f(*acc);
            comps[..*comps_rank as usize].iter().for_each(|&r| f(r));
            idx[..*rank as usize].iter().for_each(|&r| f(r));
        }
        Instr::AccStoreIdxWt {
            val,
            acc,
            comps,
            comps_rank,
            idx,
            rank,
            ..
        } => {
            f(*val);
            f(*acc);
            comps[..*comps_rank as usize].iter().for_each(|&r| f(r));
            idx[..*rank as usize].iter().for_each(|&r| f(r));
        }
        Instr::StoreBinFloatWt {
            l,
            r,
            mem,
            idx,
            rank,
            ..
        } => {
            f(*l);
            f(*r);
            f(*mem);
            idx[..*rank as usize].iter().for_each(|&r| f(r));
        }
        Instr::VecCtor { comps, rank, .. } => {
            comps[..*rank as usize].iter().for_each(|&r| f(r));
        }
        Instr::NdRangeCtor { g, l, .. } => {
            f(*g);
            f(*l);
        }
        Instr::VecGet { v, dim: d, .. } => {
            f(*v);
            dim(d, &mut f);
        }
        Instr::RangeSize { v, .. } => f(*v),
        Instr::ItemQuery { dim: d, .. } => dim(d, &mut f),
        Instr::AccSubscript { acc, id, .. } => {
            f(*acc);
            f(*id);
        }
        Instr::AccRange { acc, dim: d, .. } => {
            f(*acc);
            dim(d, &mut f);
        }
        Instr::AccBase { acc, .. } => f(*acc),
        Instr::BranchIfFalse { cond, .. } => f(*cond),
        Instr::ForEnter { lb, ub, step, .. } => {
            f(*lb);
            f(*ub);
            f(*step);
        }
        Instr::ForNext { iv, step, ub, .. } => {
            f(*iv);
            f(*step);
            f(*ub);
        }
        Instr::Call { args, .. } => args.iter().for_each(|&r| f(r)),
        Instr::Return { vals } => vals.iter().for_each(|&r| f(r)),
    }
}

/// Call `f` on a mutable reference to every `pc` target an instruction
/// carries.
fn for_each_target(instr: &mut Instr, mut f: impl FnMut(&mut u32)) {
    match instr {
        Instr::Jump { target }
        | Instr::BranchIfFalse { target, .. }
        | Instr::CmpIBranch { target, .. } => f(target),
        Instr::ForEnter { exit, .. } => f(exit),
        Instr::ForNext { body, .. } => f(body),
        _ => {}
    }
}

/// How aggressively the peephole pass ([`fuse_plan_with`]) rewrites a
/// decoded plan. Part of the device's plan-cache key: plans fused at
/// different levels are distinct cache entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuseLevel {
    /// No rewriting: execute the decoder's output as-is.
    Off,
    /// Adjacent two-instruction pairs only (the PR 3 rule set plus the
    /// accumulate-store pair).
    Pairs,
    /// Pairs plus bounded three-instruction chains (indexed accessor
    /// loads/stores, fused multiply-accumulate) — the default.
    Chains,
}

impl FuseLevel {
    /// Canonical knob spelling (`"on"` / `"pairs"` / `"off"`), shared by
    /// the `--fuse` flag, the environment variable and every report line.
    pub fn name(self) -> &'static str {
        match self {
            FuseLevel::Off => "off",
            FuseLevel::Pairs => "pairs",
            FuseLevel::Chains => "on",
        }
    }

    /// Parse a knob spelling; `None` for unknown values (callers decide
    /// whether to warn-and-default or abort).
    pub fn parse(s: &str) -> Option<FuseLevel> {
        match s {
            "on" | "1" | "true" | "chains" => Some(FuseLevel::Chains),
            "pairs" => Some(FuseLevel::Pairs),
            "off" | "0" | "false" => Some(FuseLevel::Off),
            _ => None,
        }
    }
}

/// The reified fusion pass over one function: the dataflow facts a legal
/// rewrite depends on — function-wide register read counts and the
/// jump-target set — plus the pattern table matching bounded windows of
/// adjacent instructions against them.
///
/// **Legality.** A window of `w` instructions may collapse into one
/// superinstruction when
///
/// * every **elided intermediate** (a register written by one member and
///   consumed by the next) has exactly one read in the whole function —
///   that read always observes the producer's write, so skipping the
///   register file is unobservable. Read counting also subsumes every
///   aliasing hazard: an operand of any member that re-reads an
///   intermediate (or an intermediate doubling as another member's
///   operand) pushes its count past one and blocks the rewrite;
/// * no member after the head is a **jump target** — control flow
///   entering mid-window would skip the elided producers. (The head may
///   be a target: the whole window maps to the superinstruction's pc.)
///
/// **Write-through windows** relax the first condition: a pattern that
/// *keeps* every intermediate's register write (the `*.wt` variants and
/// the un-CSE'd quads) replays the window's arms in exact order against
/// the real register file, so later readers of a multiply-read
/// intermediate observe precisely the unfused state — only the
/// mid-window jump-target rule remains. The elided form is still
/// preferred where legal (one fewer register write per dispatch); the
/// write-through form fires exactly where read counts used to block.
///
/// **Overlap resolution.** Competing patterns are resolved
/// deterministically: the scan is greedy left-to-right, and at each
/// position the longest window wins (a chain beats the pair sharing its
/// head). Once matched, a window's members are consumed — decode order,
/// never scheduling, decides the outcome.
struct ChainMatcher {
    /// How often each register is read anywhere in the function.
    reads: Vec<u32>,
    /// Positions control flow can enter other than by fall-through.
    is_target: Vec<bool>,
    /// Whether three-instruction chains are enabled ([`FuseLevel`]).
    chains: bool,
}

impl ChainMatcher {
    fn new(f: &FuncPlan, level: FuseLevel) -> ChainMatcher {
        let mut reads = vec![0_u32; f.reg_count as usize];
        for instr in &f.code {
            for_each_read(instr, |r| reads[r as usize] += 1);
        }
        let mut is_target = vec![false; f.code.len() + 1];
        for instr in &f.code {
            instr.jump_targets(|t| is_target[t as usize] = true);
        }
        ChainMatcher {
            reads,
            is_target,
            chains: level == FuseLevel::Chains,
        }
    }

    /// Whether `r` is a pure intermediate whose write the rewrite may
    /// elide: read exactly once in the whole function.
    #[inline]
    fn elidable(&self, r: Reg) -> bool {
        self.reads[r as usize] == 1
    }

    /// Whether a `len`-instruction window starting at `i` stays inside
    /// the code and is entered only through its head.
    fn window_open(&self, i: usize, len: usize, n: usize) -> bool {
        i + len <= n && (i + 1..i + len).all(|k| !self.is_target[k])
    }

    /// The longest legal rewrite starting at `i`, with the window length
    /// it consumes. Longer windows are tried before shorter ones so
    /// overlapping patterns (e.g. `Load`+`mulf` inside
    /// `Load`+`mulf`+`addf`) resolve deterministically to the longer
    /// fusion, and at equal length the elided form is tried before the
    /// write-through form. The quad and write-through patterns are
    /// [`FuseLevel::Chains`]-only: `Pairs` stays the frozen PR 3 rule
    /// set.
    fn fuse_at(&self, code: &[Instr], i: usize) -> Option<(Instr, usize)> {
        if self.chains {
            if self.window_open(i, 4, code.len()) {
                if let Some(s) = self.try_quad(&code[i], &code[i + 1], &code[i + 2], &code[i + 3]) {
                    return Some((s, 4));
                }
            }
            if self.window_open(i, 3, code.len()) {
                if let Some(s) = self.try_chain(&code[i], &code[i + 1], &code[i + 2]) {
                    return Some((s, 3));
                }
                if let Some(s) = self.try_chain_wt(&code[i], &code[i + 1], &code[i + 2]) {
                    return Some((s, 3));
                }
            }
        }
        if self.window_open(i, 2, code.len()) {
            if let Some(s) = self.try_pair(&code[i], &code[i + 1]) {
                return Some((s, 2));
            }
            if self.chains {
                if let Some(s) = self.try_pair_wt(&code[i], &code[i + 1]) {
                    return Some((s, 2));
                }
            }
        }
        None
    }

    /// Four-instruction un-CSE'd accessor chains: the builder's zero
    /// constant of `load_via_id`/`store_via_id` interposed between the
    /// subscript and the memory op, as the DPC++ flow (no CSE across the
    /// chain) emits it. Write-through — legality is shape plus window
    /// openness, never read counts.
    fn try_quad(&self, a: &Instr, b: &Instr, c: &Instr, d: &Instr) -> Option<Instr> {
        match (a, b, c, d) {
            // id = vec.ctor comps; view = acc[id]; cst = const;
            // dst = load view[cst].
            (
                Instr::VecCtor {
                    dst: id,
                    comps,
                    rank: comps_rank,
                },
                Instr::AccSubscript {
                    dst: view,
                    acc,
                    id: sub_id,
                },
                Instr::Const { dst: cst, val },
                Instr::Load {
                    dst,
                    mem,
                    idx,
                    rank,
                    site,
                },
            ) if sub_id == id && mem == view && *rank == 1 && idx[0] == *cst => {
                Some(Instr::AccLoadQuad {
                    dst: *dst,
                    acc: *acc,
                    comps: *comps,
                    comps_rank: *comps_rank,
                    id: *id,
                    view: *view,
                    cst: *cst,
                    cst_val: *val,
                    site: *site,
                })
            }
            // id = vec.ctor comps; view = acc[id]; cst = const;
            // store val, view[cst].
            (
                Instr::VecCtor {
                    dst: id,
                    comps,
                    rank: comps_rank,
                },
                Instr::AccSubscript {
                    dst: view,
                    acc,
                    id: sub_id,
                },
                Instr::Const { dst: cst, val },
                Instr::Store {
                    val: sval,
                    mem,
                    idx,
                    rank,
                    site,
                },
            ) if sub_id == id && mem == view && *rank == 1 && idx[0] == *cst => {
                Some(Instr::AccStoreQuad {
                    val: *sval,
                    acc: *acc,
                    comps: *comps,
                    comps_rank: *comps_rank,
                    id: *id,
                    view: *view,
                    cst: *cst,
                    cst_val: *val,
                    site: *site,
                })
            }
            _ => None,
        }
    }

    /// Write-through accessor chains: same shapes as the elided
    /// `AccLoadIndexed`/`AccStoreIndexed` patterns but with the id and
    /// view register writes kept, so a multiply-read intermediate (GEMM's
    /// shared `c[i,j]` view) no longer blocks fusion. Tried only after
    /// [`ChainMatcher::try_chain`] declined, so the elided form wins
    /// where both are legal.
    fn try_chain_wt(&self, a: &Instr, b: &Instr, c: &Instr) -> Option<Instr> {
        match (a, b, c) {
            (
                Instr::VecCtor {
                    dst: id,
                    comps,
                    rank: comps_rank,
                },
                Instr::AccSubscript {
                    dst: view,
                    acc,
                    id: sub_id,
                },
                Instr::Load {
                    dst,
                    mem,
                    idx,
                    rank,
                    site,
                },
            ) if sub_id == id && mem == view => Some(Instr::AccLoadIdxWt {
                dst: *dst,
                acc: *acc,
                comps: *comps,
                comps_rank: *comps_rank,
                id: *id,
                view: *view,
                idx: *idx,
                rank: *rank,
                site: *site,
            }),
            (
                Instr::VecCtor {
                    dst: id,
                    comps,
                    rank: comps_rank,
                },
                Instr::AccSubscript {
                    dst: view,
                    acc,
                    id: sub_id,
                },
                Instr::Store {
                    val,
                    mem,
                    idx,
                    rank,
                    site,
                },
            ) if sub_id == id && mem == view => Some(Instr::AccStoreIdxWt {
                val: *val,
                acc: *acc,
                comps: *comps,
                comps_rank: *comps_rank,
                id: *id,
                view: *view,
                idx: *idx,
                rank: *rank,
                site: *site,
            }),
            _ => None,
        }
    }

    /// Write-through accumulate-store pair: float op + `Store` where the
    /// accumulated value is multiply-read, keeping its register write.
    /// Tried only after [`ChainMatcher::try_pair`] declined.
    fn try_pair_wt(&self, a: &Instr, b: &Instr) -> Option<Instr> {
        match (a, b) {
            (
                Instr::BinFloat {
                    op,
                    dst: t,
                    l,
                    r,
                    f32_out,
                },
                Instr::Store {
                    val,
                    mem,
                    idx,
                    rank,
                    site,
                },
            ) if val == t => Some(Instr::StoreBinFloatWt {
                op: *op,
                l: *l,
                r: *r,
                f32_out: *f32_out,
                t: *t,
                mem: *mem,
                idx: *idx,
                rank: *rank,
                site: *site,
            }),
            _ => None,
        }
    }

    /// Three-instruction chain patterns.
    fn try_chain(&self, a: &Instr, b: &Instr, c: &Instr) -> Option<Instr> {
        match (a, b, c) {
            // id = vec.ctor comps; view = acc[id]; dst = load view[idx].
            (
                Instr::VecCtor {
                    dst: id,
                    comps,
                    rank: comps_rank,
                },
                Instr::AccSubscript {
                    dst: view,
                    acc,
                    id: sub_id,
                },
                Instr::Load {
                    dst,
                    mem,
                    idx,
                    rank,
                    site,
                },
            ) if sub_id == id && mem == view && self.elidable(*id) && self.elidable(*view) => {
                Some(Instr::AccLoadIndexed {
                    dst: *dst,
                    acc: *acc,
                    comps: *comps,
                    comps_rank: *comps_rank,
                    idx: *idx,
                    rank: *rank,
                    site: *site,
                })
            }
            // id = vec.ctor comps; view = acc[id]; store val, view[idx].
            (
                Instr::VecCtor {
                    dst: id,
                    comps,
                    rank: comps_rank,
                },
                Instr::AccSubscript {
                    dst: view,
                    acc,
                    id: sub_id,
                },
                Instr::Store {
                    val,
                    mem,
                    idx,
                    rank,
                    site,
                },
            ) if sub_id == id && mem == view && self.elidable(*id) && self.elidable(*view) => {
                Some(Instr::AccStoreIndexed {
                    val: *val,
                    acc: *acc,
                    comps: *comps,
                    comps_rank: *comps_rank,
                    idx: *idx,
                    rank: *rank,
                    site: *site,
                })
            }
            // t = load; u = t*b (or b*t); dst = u + c (or c + u).
            (
                Instr::Load {
                    dst: t,
                    mem,
                    idx,
                    rank,
                    site,
                },
                Instr::BinFloat {
                    op: FloatBin::Mul,
                    dst: u,
                    l: ml,
                    r: mr,
                    f32_out: mul_f32,
                },
                Instr::BinFloat {
                    op: FloatBin::Add,
                    dst,
                    l: al,
                    r: ar,
                    f32_out,
                },
            ) if self.elidable(*t)
                && ((ml == t) != (mr == t))
                && self.elidable(*u)
                && ((al == u) != (ar == u)) =>
            {
                let loaded_is_lhs = ml == t;
                let prod_is_lhs = al == u;
                Some(Instr::LoadMulAddF {
                    dst: *dst,
                    mem: *mem,
                    idx: *idx,
                    rank: *rank,
                    site: *site,
                    b: if loaded_is_lhs { *mr } else { *ml },
                    loaded_is_lhs,
                    mul_f32: *mul_f32,
                    c: if prod_is_lhs { *ar } else { *al },
                    prod_is_lhs,
                    f32_out: *f32_out,
                })
            }
            _ => None,
        }
    }

    /// Two-instruction pair patterns.
    fn try_pair(&self, a: &Instr, b: &Instr) -> Option<Instr> {
        match (a, b) {
            // load t; dst = t ⊕ other (or other ⊕ t) for commutative ⊕.
            (
                Instr::Load {
                    dst: t,
                    mem,
                    idx,
                    rank,
                    site,
                },
                Instr::BinFloat {
                    op: op @ (FloatBin::Add | FloatBin::Mul),
                    dst,
                    l,
                    r,
                    f32_out,
                },
            ) if self.elidable(*t) && ((l == t) != (r == t)) => {
                let loaded_is_lhs = l == t;
                Some(Instr::LoadBinFloat {
                    op: *op,
                    dst: *dst,
                    other: if loaded_is_lhs { *r } else { *l },
                    loaded_is_lhs,
                    f32_out: *f32_out,
                    mem: *mem,
                    idx: *idx,
                    rank: *rank,
                    site: *site,
                })
            }
            // t = a*b; dst = t + c (or c + t): linear addressing.
            (
                Instr::BinInt {
                    op: IntBin::Mul,
                    dst: t,
                    l: ma,
                    r: mb,
                },
                Instr::BinInt {
                    op: IntBin::Add,
                    dst,
                    l,
                    r,
                },
            ) if self.elidable(*t) && ((l == t) != (r == t)) => Some(Instr::MulAddInt {
                dst: *dst,
                a: *ma,
                b: *mb,
                c: if l == t { *r } else { *l },
            }),
            // t = cmpi l, r; branch-if-false t.
            (Instr::CmpI { pred, dst: t, l, r }, Instr::BranchIfFalse { cond, target })
                if self.elidable(*t) && cond == t =>
            {
                Some(Instr::CmpIBranch {
                    pred: *pred,
                    l: *l,
                    r: *r,
                    target: *target,
                })
            }
            // t = l ⊕ r; store t, mem[idx]: accumulate-then-store.
            (
                Instr::BinFloat {
                    op,
                    dst: t,
                    l,
                    r,
                    f32_out,
                },
                Instr::Store {
                    val,
                    mem,
                    idx,
                    rank,
                    site,
                },
            ) if val == t && self.elidable(*t) => Some(Instr::StoreBinFloat {
                op: *op,
                l: *l,
                r: *r,
                f32_out: *f32_out,
                mem: *mem,
                idx: *idx,
                rank: *rank,
                site: *site,
            }),
            _ => None,
        }
    }
}

/// Per-function fusion tally, split by rewrite class.
#[derive(Clone, Copy, Default)]
struct FuseCounts {
    pairs: u32,
    chains: u32,
    quads: u32,
    wt: u32,
}

/// Fuse one function's code in place; returns the per-class tally.
fn fuse_func(f: &mut FuncPlan, level: FuseLevel) -> FuseCounts {
    let mut counts = FuseCounts::default();
    if level == FuseLevel::Off {
        return counts;
    }
    let matcher = ChainMatcher::new(f, level);
    let n = f.code.len();
    let mut new_code: Vec<Instr> = Vec::with_capacity(n);
    // Old pc -> new pc (every member of a fused window maps to the
    // superinstruction, so jumps to the window head land on the fusion).
    let mut remap = vec![0_u32; n + 1];
    let mut i = 0;
    while i < n {
        if let Some((superinstr, w)) = matcher.fuse_at(&f.code, i) {
            for k in 0..w {
                remap[i + k] = new_code.len() as u32;
            }
            match superinstr {
                Instr::AccLoadQuad { .. } | Instr::AccStoreQuad { .. } => counts.quads += 1,
                Instr::AccLoadIdxWt { .. }
                | Instr::AccStoreIdxWt { .. }
                | Instr::StoreBinFloatWt { .. } => counts.wt += 1,
                _ if w == 3 => counts.chains += 1,
                _ => counts.pairs += 1,
            }
            new_code.push(superinstr);
            i += w;
            continue;
        }
        remap[i] = new_code.len() as u32;
        new_code.push(f.code[i].clone());
        i += 1;
    }
    remap[n] = new_code.len() as u32;
    for instr in &mut new_code {
        for_each_target(instr, |t| *t = remap[*t as usize]);
    }
    f.code = new_code;
    counts
}

/// Peephole-fuse hot instruction windows of a decoded plan into
/// superinstructions, in place, up to the given [`FuseLevel`].
///
/// Pair patterns (see `ChainMatcher::try_pair` for the exact safety
/// conditions): **load-accumulate** (`Load` feeding an `addf`/`mulf`),
/// **linear addressing** (`muli` feeding an `addi`), **compare-branch**
/// (`cmpi` feeding a conditional branch) and **accumulate-store** (a
/// float binary op feeding a `Store`). Chain patterns
/// (`ChainMatcher::try_chain`, [`FuseLevel::Chains`] only): the
/// **indexed accessor load/store** (`vec.ctor` + `acc.subscript` +
/// `Load`/`Store` — the accessor addressing chain the `--profile` mode
/// ranks first by ~2x) and the **fused multiply-accumulate** (`Load` +
/// `mulf` + `addf`). On top of these, `Chains` enables the
/// **write-through** rewrites (`ChainMatcher::try_quad`,
/// `try_chain_wt`, `try_pair_wt`): the un-CSE'd four-instruction
/// accessor chain (`vec.ctor` + `acc.subscript` + `Const` +
/// `Load`/`Store`, the DPC++-flow shape) and variants of the accessor
/// chain and accumulate-store pair that keep every intermediate's
/// register write, firing where multiply-read intermediates block the
/// elided forms. Every superinstruction bumps the same statistics
/// counters and raises the same errors, in the same order, as the window
/// it replaces, so fused execution is bit-identical to unfused execution
/// — the differential suite holds both against the tree-walk reference.
///
/// Returns the number of windows fused (also recorded in
/// [`KernelPlan::fused_pairs`] / [`KernelPlan::fused_chains`] /
/// [`KernelPlan::fused_quads`] / [`KernelPlan::fused_wt`]).
pub fn fuse_plan_with(plan: &mut KernelPlan, level: FuseLevel) -> u32 {
    let mut total = FuseCounts::default();
    for f in &mut plan.funcs {
        let c = fuse_func(f, level);
        total.pairs += c.pairs;
        total.chains += c.chains;
        total.quads += c.quads;
        total.wt += c.wt;
    }
    plan.fused_pairs += total.pairs;
    plan.fused_chains += total.chains;
    plan.fused_quads += total.quads;
    plan.fused_wt += total.wt;
    total.pairs + total.chains + total.quads + total.wt
}

/// [`fuse_plan_with`] at the default [`FuseLevel::Chains`].
pub fn fuse_plan(plan: &mut KernelPlan) -> u32 {
    fuse_plan_with(plan, FuseLevel::Chains)
}

/// Fold flat per-instruction execution counts (a profiled [`PlanCtx`]
/// drained by [`PlanCtx::take_profile`], merged across workers) into the
/// accumulators of the `--profile` dump:
///
/// * `ops` — total executions per opcode mnemonic;
/// * `pairs` — executions of **dataflow-adjacent** instruction pairs:
///   consecutive instructions where the second reads the first's result
///   and is not a jump target — precisely the shape [`fuse_plan`]'s
///   peephole patterns require, so the hottest pairs here are the ranked
///   candidates for the next superinstruction.
pub fn profile_summary(
    plan: &KernelPlan,
    counts: &[u64],
    ops: &mut std::collections::BTreeMap<&'static str, u64>,
    pairs: &mut std::collections::BTreeMap<(&'static str, &'static str), u64>,
) {
    let mut off = 0_usize;
    for f in &plan.funcs {
        let mut is_target = vec![false; f.code.len() + 1];
        for instr in &f.code {
            instr.jump_targets(|t| is_target[t as usize] = true);
        }
        for (i, instr) in f.code.iter().enumerate() {
            let c = counts[off + i];
            if c == 0 {
                continue;
            }
            *ops.entry(instr.mnemonic()).or_insert(0) += c;
            let Some(d) = instr.dst_reg() else { continue };
            if i + 1 >= f.code.len() || is_target[i + 1] {
                continue;
            }
            let next = &f.code[i + 1];
            let c2 = counts[off + i + 1];
            if c2 == 0 {
                continue;
            }
            let mut reads_d = false;
            for_each_read(next, |r| reads_d |= r == d);
            if reads_d {
                *pairs
                    .entry((instr.mnemonic(), next.mnemonic()))
                    .or_insert(0) += c.min(c2);
            }
        }
        off += f.code.len();
    }
}

// ----------------------------------------------------------------------
// Executor
// ----------------------------------------------------------------------

/// Per-worker mutable state of the plan engine, layered on the worker's
/// [`PlanExecCtx`] (memory interface, cost model, stats, work-group
/// tracker).
pub struct PlanCtx {
    /// Materialized dense constants, shared across the worker's groups
    /// (mirrors the tree-walk `const_pool`; under parallel execution each
    /// worker materializes its own arena copy).
    pub(crate) dense_cache: Vec<Option<MemRefVal>>,
    /// Work-group-shared `sycl.local.alloca` results, reset per group.
    pub(crate) local_allocs: Vec<Option<MemRefVal>>,
    /// Per-instruction execution counters (`--profile` runs only; `None`
    /// keeps the executor's hot loop on a single predictable branch).
    pub(crate) profile: Option<ProfileBuf>,
    /// Execution-limit meter (limited runs only; `None` — the default —
    /// monomorphizes all metering out of the executor).
    pub(crate) limits: Option<Box<crate::limits::OpMeter>>,
    /// Per-site proven-in-bounds bitset from the decode-time verifier,
    /// instantiated against the current launch (empty = no fast paths;
    /// see [`crate::verify::PlanFacts::instantiate`]). Proven sites take
    /// the unchecked pool path; unproven sites keep the checked path and
    /// its exact error text.
    pub(crate) proven: std::sync::Arc<[u64]>,
    /// Every barrier in the plan is statically uniform (skip per-group
    /// divergence bookkeeping; bit-identical — a statically-uniform
    /// barrier cannot trip the divergence check).
    pub(crate) uniform: bool,
}

/// Flat execution counters over every function of one plan: `counts[i]`
/// is how often the instruction at flat index `i` (functions concatenated
/// in [`KernelPlan::funcs`] order) executed.
pub(crate) struct ProfileBuf {
    /// Start offset of each function's code in `counts`.
    pub(crate) starts: Box<[u32]>,
    pub(crate) counts: Box<[u64]>,
}

impl ProfileBuf {
    fn new(plan: &KernelPlan) -> ProfileBuf {
        let mut starts = Vec::with_capacity(plan.funcs.len());
        let mut off = 0_u32;
        for f in &plan.funcs {
            starts.push(off);
            off += f.code.len() as u32;
        }
        ProfileBuf {
            starts: starts.into_boxed_slice(),
            counts: vec![0; off as usize].into_boxed_slice(),
        }
    }
}

impl PlanCtx {
    /// Per-worker state sized for `plan` (dense cache, local-alloca sites).
    pub fn new(plan: &KernelPlan) -> PlanCtx {
        PlanCtx {
            dense_cache: vec![None; plan.dense_consts.len()],
            local_allocs: vec![None; plan.local_sites as usize],
            profile: None,
            limits: None,
            proven: std::sync::Arc::from(Vec::new().into_boxed_slice()),
            uniform: false,
        }
    }

    /// Attach the launch-instantiated static facts: the proven-site
    /// bitset selecting unchecked pool paths and the all-barriers-uniform
    /// flag (see [`crate::verify::PlanFacts`]).
    pub fn set_facts(&mut self, proven: std::sync::Arc<[u64]>, uniform: bool) {
        self.proven = proven;
        self.uniform = uniform;
    }

    /// Whether memory site `site` was proven in-bounds for this launch.
    #[inline(always)]
    pub(crate) fn site_proven(&self, site: u32) -> bool {
        let w = self.proven.get((site >> 6) as usize).copied().unwrap_or(0);
        (w >> (site & 63)) & 1 != 0
    }

    /// Attach an execution-limit meter: subsequent runs through this
    /// context charge every instruction's weight against it.
    pub(crate) fn set_meter(&mut self, meter: crate::limits::OpMeter) {
        self.limits = Some(Box::new(meter));
    }

    /// Like [`PlanCtx::new`], additionally counting every executed
    /// instruction (drained with [`PlanCtx::take_profile`]).
    pub fn profiled(plan: &KernelPlan) -> PlanCtx {
        PlanCtx {
            profile: Some(ProfileBuf::new(plan)),
            ..PlanCtx::new(plan)
        }
    }

    /// The flat per-instruction execution counts accumulated so far, if
    /// this context was built with [`PlanCtx::profiled`]. Counts are plain
    /// sums, so per-worker buffers merge by element-wise addition in any
    /// order.
    pub fn take_profile(&mut self) -> Option<Box<[u64]>> {
        self.profile.take().map(|p| p.counts)
    }

    /// Reset work-group-shared state (call between work-groups). Also the
    /// meter's settle point: unspent op-budget grant returns to the
    /// launch's shared budget and the fault countdown re-arms.
    pub fn next_work_group(&mut self) {
        self.local_allocs.iter_mut().for_each(|s| *s = None);
        if let Some(m) = self.limits.as_deref_mut() {
            m.begin_group();
        }
    }
}

struct PlanFrame {
    func: u32,
    pc: u32,
    /// Base of this frame's registers in the flat register file.
    base: u32,
}

/// One work-item's resumable execution state over a [`KernelPlan`].
pub struct PlanWorkItem {
    /// All frames' registers, contiguous; frames address `regs[base..]`.
    regs: Vec<RtValue>,
    frames: Vec<PlanFrame>,
    /// Per-site visit counters feeding the coalescing tracker (same
    /// instance numbering as the tree-walk interpreter's per-op visits).
    visits: Vec<u32>,
    /// The work-item’s position bundle.
    pub item: NdItemVal,
    /// Whether the work-item ran to completion.
    pub finished: bool,
    steps: u64,
}

pub(crate) const MAX_STEPS: u64 = 500_000_000;

impl PlanWorkItem {
    /// Prepare execution of the plan's kernel with `args` bound to all
    /// parameters except the trailing item-like one, which gets `item`.
    pub fn new(
        plan: &KernelPlan,
        args: &[RtValue],
        item: NdItemVal,
    ) -> Result<PlanWorkItem, SimError> {
        let kernel = &plan.funcs[0];
        let mut s = PlanWorkItem {
            regs: vec![RtValue::Unit; kernel.reg_count as usize],
            frames: vec![PlanFrame {
                func: 0,
                pc: 0,
                base: 0,
            }],
            visits: vec![0; plan.mem_sites as usize],
            item,
            finished: false,
            steps: 0,
        };
        let params = &kernel.params;
        let value_params = if kernel.has_item_param {
            &params[..params.len() - 1]
        } else {
            &params[..]
        };
        if value_params.len() != args.len() {
            return Err(err(format!(
                "kernel expects {} arguments, got {}",
                value_params.len(),
                args.len()
            )));
        }
        for (&p, &a) in value_params.iter().zip(args) {
            s.regs[p as usize] = a;
        }
        if kernel.has_item_param {
            s.regs[*params.last().unwrap() as usize] = RtValue::Item(item);
        }
        Ok(s)
    }

    /// Run until the next barrier or completion.
    pub fn run(
        &mut self,
        plan: &KernelPlan,
        ctx: &mut PlanExecCtx<'_, '_>,
        pctx: &mut PlanCtx,
    ) -> Result<Stop, SimError> {
        // Monomorphize the interpreter loop over the profiling and
        // limit-metering switches so the default run (neither) carries no
        // per-instruction branch.
        match (pctx.profile.is_some(), pctx.limits.is_some()) {
            (false, false) => self.run_impl::<false, false>(plan, ctx, pctx),
            (false, true) => self.run_impl::<false, true>(plan, ctx, pctx),
            (true, false) => self.run_impl::<true, false>(plan, ctx, pctx),
            (true, true) => self.run_impl::<true, true>(plan, ctx, pctx),
        }
    }

    fn run_impl<const PROFILE: bool, const LIMITED: bool>(
        &mut self,
        plan: &KernelPlan,
        ctx: &mut PlanExecCtx<'_, '_>,
        pctx: &mut PlanCtx,
    ) -> Result<Stop, SimError> {
        if self.finished {
            return Ok(Stop::Finished);
        }
        // Local copies of the hot frame fields; flushed on calls/returns.
        let mut frame = self.frames.len() - 1;
        let mut func = self.frames[frame].func as usize;
        let mut code: &[Instr] = &plan.funcs[func].code;
        let mut base = self.frames[frame].base as usize;
        let mut pc = self.frames[frame].pc as usize;

        macro_rules! reg {
            ($r:expr) => {
                self.regs[base + $r as usize]
            };
        }
        macro_rules! int {
            ($r:expr, $what:expr) => {
                reg!($r).as_int().ok_or_else(|| err($what))?
            };
        }
        macro_rules! flt {
            ($r:expr, $what:expr) => {
                reg!($r).as_f64().ok_or_else(|| err($what))?
            };
        }
        // Per-site elision of the pool's bounds check: sites the
        // decode-time verifier proved in-bounds for this launch take the
        // unchecked path; every other site keeps the checked path and
        // with it the exact out-of-bounds panic text and position.
        macro_rules! pool_load {
            ($site:expr, $mem:expr, $addr:expr) => {
                if pctx.site_proven($site) {
                    ctx.pool.load_proven($mem, $addr)
                } else {
                    ctx.pool.load($mem, $addr)
                }
            };
        }
        macro_rules! pool_store {
            ($site:expr, $mem:expr, $addr:expr, $v:expr) => {
                if pctx.site_proven($site) {
                    ctx.pool.store_proven($mem, $addr, $v)
                } else {
                    ctx.pool.store($mem, $addr, $v)
                }
            };
        }

        loop {
            self.steps += 1;
            if self.steps > MAX_STEPS {
                return Err(err("work-item exceeded the step budget (runaway loop?)"));
            }
            let instr = &code[pc];
            if PROFILE {
                let pb = pctx.profile.as_mut().expect("profiled PlanCtx");
                pb.counts[(pb.starts[func] + pc as u32) as usize] += 1;
            }
            if LIMITED {
                let meter = pctx.limits.as_deref_mut().expect("limited PlanCtx");
                meter.charge(instr.op_weight())?;
            }
            pc += 1;
            match instr {
                Instr::Const { dst, val } => reg!(*dst) = *val,
                Instr::ConstDense { dst, idx } => {
                    let mr = materialize_dense(plan, ctx, pctx, *idx)?;
                    reg!(*dst) = RtValue::MemRef(mr);
                }
                Instr::Copy { dst, src } => reg!(*dst) = reg!(*src),
                Instr::BinInt { op, dst, l, r } => {
                    ctx.stats.arith_ops += 1;
                    let l = int!(*l, "int op on non-int");
                    let r = int!(*r, "int op on non-int");
                    let out = match op {
                        IntBin::Add => l.wrapping_add(r),
                        IntBin::Sub => l.wrapping_sub(r),
                        IntBin::Mul => l.wrapping_mul(r),
                        IntBin::DivS => {
                            if r == 0 {
                                return Err(err("division by zero"));
                            }
                            l.wrapping_div(r)
                        }
                        IntBin::RemS => {
                            if r == 0 {
                                return Err(err("remainder by zero"));
                            }
                            l.wrapping_rem(r)
                        }
                        IntBin::And => l & r,
                        IntBin::Or => l | r,
                        IntBin::Xor => l ^ r,
                        IntBin::MinS => l.min(r),
                        IntBin::MaxS => l.max(r),
                    };
                    reg!(*dst) = RtValue::Int(out);
                }
                Instr::BinFloat {
                    op,
                    dst,
                    l,
                    r,
                    f32_out,
                } => {
                    ctx.stats.arith_ops += 1;
                    let l = flt!(*l, "float op on non-float");
                    let r = flt!(*r, "float op on non-float");
                    let out = match op {
                        FloatBin::Add => l + r,
                        FloatBin::Sub => l - r,
                        FloatBin::Mul => l * r,
                        FloatBin::Div => l / r,
                        FloatBin::Min => l.min(r),
                        FloatBin::Max => l.max(r),
                    };
                    reg!(*dst) = if *f32_out {
                        RtValue::F32(out as f32)
                    } else {
                        RtValue::F64(out)
                    };
                }
                Instr::NegF { dst, x } => {
                    ctx.stats.arith_ops += 1;
                    reg!(*dst) = match reg!(*x) {
                        RtValue::F32(v) => RtValue::F32(-v),
                        RtValue::F64(v) => RtValue::F64(-v),
                        _ => return Err(err("negf on non-float")),
                    };
                }
                Instr::CmpI { pred, dst, l, r } => {
                    ctx.stats.arith_ops += 1;
                    let l = int!(*l, "cmpi on non-int");
                    let r = int!(*r, "cmpi on non-int");
                    reg!(*dst) = RtValue::Int(pred.eval_int(l, r) as i64);
                }
                Instr::CmpF { pred, dst, l, r } => {
                    ctx.stats.arith_ops += 1;
                    let l = flt!(*l, "cmpf on non-float");
                    let r = flt!(*r, "cmpf on non-float");
                    reg!(*dst) = RtValue::Int(pred.eval_float(l, r) as i64);
                }
                Instr::Select { dst, c, t, f } => {
                    ctx.stats.arith_ops += 1;
                    let c = reg!(*c).as_bool().ok_or_else(|| err("select cond"))?;
                    reg!(*dst) = if c { reg!(*t) } else { reg!(*f) };
                }
                Instr::SiToFp { dst, x, f32_out } => {
                    ctx.stats.arith_ops += 1;
                    let v = int!(*x, "sitofp");
                    reg!(*dst) = if *f32_out {
                        RtValue::F32(v as f32)
                    } else {
                        RtValue::F64(v as f64)
                    };
                }
                Instr::FpToSi { dst, x } => {
                    ctx.stats.arith_ops += 1;
                    let v = flt!(*x, "fptosi");
                    reg!(*dst) = RtValue::Int(v as i64);
                }
                Instr::TruncF { dst, x } => {
                    let v = flt!(*x, "truncf");
                    reg!(*dst) = RtValue::F32(v as f32);
                }
                Instr::ExtF { dst, x } => {
                    let v = flt!(*x, "extf");
                    reg!(*dst) = RtValue::F64(v);
                }
                Instr::Math {
                    op,
                    dst,
                    x,
                    y,
                    f32_out,
                } => {
                    ctx.stats.arith_ops += 4; // transcendental ops are pricier
                    let xv = flt!(*x, "math on non-float");
                    let out = match op {
                        MathOp::Sqrt => xv.sqrt(),
                        MathOp::Exp => xv.exp(),
                        MathOp::Log => xv.ln(),
                        MathOp::Absf => xv.abs(),
                        MathOp::Sin => xv.sin(),
                        MathOp::Cos => xv.cos(),
                        MathOp::Floor => xv.floor(),
                        MathOp::Rsqrt => 1.0 / xv.sqrt(),
                        MathOp::Powf => {
                            let yv = flt!(*y, "powf");
                            xv.powf(yv)
                        }
                    };
                    reg!(*dst) = if *f32_out {
                        RtValue::F32(out as f32)
                    } else {
                        RtValue::F64(out)
                    };
                }
                Instr::Alloca {
                    dst,
                    elem,
                    shape,
                    rank,
                    len,
                } => {
                    let mem = ctx.pool.alloc_zeroed(elem, *len)?;
                    reg!(*dst) = RtValue::MemRef(MemRefVal {
                        mem,
                        offset: 0,
                        shape: *shape,
                        rank: *rank,
                        space: Space::Private,
                    });
                }
                Instr::LocalAlloca {
                    dst,
                    site,
                    elem,
                    shape,
                    rank,
                    len,
                } => {
                    let mr = match pctx.local_allocs[*site as usize] {
                        Some(existing) => existing,
                        None => {
                            let mem = ctx.pool.alloc_zeroed(elem, *len)?;
                            let mr = MemRefVal {
                                mem,
                                offset: 0,
                                shape: *shape,
                                rank: *rank,
                                space: Space::Local,
                            };
                            pctx.local_allocs[*site as usize] = Some(mr);
                            mr
                        }
                    };
                    reg!(*dst) = RtValue::MemRef(mr);
                }
                Instr::Load {
                    dst,
                    mem,
                    idx,
                    rank,
                    site,
                } => {
                    let mr = reg!(*mem)
                        .as_memref()
                        .ok_or_else(|| err("load from non-memref"))?;
                    let mut indices = [0_i64; 3];
                    for d in 0..*rank as usize {
                        indices[d] = int!(idx[d], "non-int index");
                    }
                    let addr = mr.linearize(&indices[..*rank as usize]);
                    self.mem_event(ctx, *site, &mr, addr)?;
                    let v = pool_load!(*site, mr.mem, addr);
                    reg!(*dst) = v;
                }
                Instr::Store {
                    val,
                    mem,
                    idx,
                    rank,
                    site,
                } => {
                    let v = reg!(*val);
                    let mr = reg!(*mem)
                        .as_memref()
                        .ok_or_else(|| err("store to non-memref"))?;
                    let mut indices = [0_i64; 3];
                    for d in 0..*rank as usize {
                        indices[d] = int!(idx[d], "non-int index");
                    }
                    let addr = mr.linearize(&indices[..*rank as usize]);
                    self.mem_event(ctx, *site, &mr, addr)?;
                    pool_store!(*site, mr.mem, addr, v);
                }
                Instr::VecCtor { dst, comps, rank } => {
                    ctx.stats.arith_ops += 1;
                    let mut data = [0_i64; 3];
                    for d in 0..*rank as usize {
                        data[d] = int!(comps[d], "id component");
                    }
                    reg!(*dst) = RtValue::Vec(VecVal {
                        data,
                        rank: *rank as u32,
                    });
                }
                Instr::NdRangeCtor { dst, g, l } => {
                    let g = reg!(*g).as_vec().ok_or_else(|| err("nd_range global"))?;
                    let l = reg!(*l).as_vec().ok_or_else(|| err("nd_range local"))?;
                    reg!(*dst) = RtValue::NdRange(g, l);
                }
                Instr::VecGet { dst, v, dim } => {
                    ctx.stats.arith_ops += 1;
                    let v = reg!(*v).as_vec().ok_or_else(|| err("id.get"))?;
                    let d = self.dim(base, *dim)?;
                    reg!(*dst) = RtValue::Int(v.data[d]);
                }
                Instr::RangeSize { dst, v } => {
                    ctx.stats.arith_ops += 1;
                    let v = reg!(*v).as_vec().ok_or_else(|| err("range.size"))?;
                    let size: i64 = v.data[..v.rank as usize].iter().product();
                    reg!(*dst) = RtValue::Int(size);
                }
                Instr::ItemQuery { dst, q, dim } => {
                    ctx.stats.arith_ops += 1;
                    let d = self.dim(base, *dim)?;
                    let v = match q {
                        ItemQ::GlobalId => self.item.global_id[d],
                        ItemQ::LocalId => self.item.local_id[d],
                        ItemQ::GroupId => self.item.group_id[d],
                        ItemQ::GlobalRange => self.item.global_range[d],
                        ItemQ::LocalRange => self.item.local_range[d],
                        ItemQ::GroupRange => self.item.group_range(d),
                    };
                    reg!(*dst) = RtValue::Int(v);
                }
                Instr::GlobalLinearId { dst } => {
                    ctx.stats.arith_ops += 1;
                    reg!(*dst) = RtValue::Int(self.item.global_linear_id());
                }
                Instr::LocalLinearId { dst } => {
                    ctx.stats.arith_ops += 1;
                    reg!(*dst) = RtValue::Int(self.item.local_linear_id());
                }
                Instr::ItemSelf { dst } => reg!(*dst) = RtValue::Item(self.item),
                Instr::AccSubscript { dst, acc, id } => {
                    ctx.stats.arith_ops += 1;
                    let acc = reg!(*acc)
                        .as_accessor()
                        .ok_or_else(|| err("subscript of non-accessor"))?;
                    let id = reg!(*id).as_vec().ok_or_else(|| err("subscript id"))?;
                    let offset = acc.linearize(&id.data[..id.rank as usize]);
                    let space = if acc.constant {
                        Space::Constant
                    } else {
                        Space::Global
                    };
                    reg!(*dst) = RtValue::MemRef(MemRefVal {
                        mem: acc.mem,
                        offset,
                        shape: [-1, 1, 1],
                        rank: 1,
                        space,
                    });
                }
                Instr::AccRange { dst, acc, dim } => {
                    ctx.stats.arith_ops += 1;
                    let acc = reg!(*acc).as_accessor().ok_or_else(|| err("get_range"))?;
                    let d = self.dim(base, *dim)?;
                    reg!(*dst) = RtValue::Int(acc.range[d]);
                }
                Instr::AccBase { dst, acc } => {
                    ctx.stats.arith_ops += 1;
                    let acc = reg!(*acc)
                        .as_accessor()
                        .ok_or_else(|| err("accessor.base"))?;
                    let b = ((acc.mem.0 as i64) << 32) | acc.linearize(&[0, 0, 0]);
                    reg!(*dst) = RtValue::Int(b);
                }
                Instr::Barrier => {
                    ctx.stats.barriers += 1;
                    self.frames[frame].pc = pc as u32;
                    return Ok(Stop::Barrier);
                }
                Instr::Jump { target } => pc = *target as usize,
                Instr::BranchIfFalse { cond, target } => {
                    ctx.stats.arith_ops += 1;
                    let c = reg!(*cond)
                        .as_bool()
                        .ok_or_else(|| err("non-boolean if condition"))?;
                    if !c {
                        pc = *target as usize;
                    }
                }
                Instr::ForEnter {
                    lb,
                    ub,
                    step,
                    iv,
                    exit,
                } => {
                    ctx.stats.arith_ops += 1;
                    let lb = int!(*lb, "bad lb");
                    let ub = int!(*ub, "bad ub");
                    let step = int!(*step, "bad step");
                    if step <= 0 {
                        return Err(err("non-positive loop step"));
                    }
                    reg!(*iv) = RtValue::Int(lb);
                    if lb >= ub {
                        pc = *exit as usize;
                    }
                }
                Instr::ForNext { iv, step, ub, body } => {
                    let cur = int!(*iv, "bad iv");
                    let step = int!(*step, "bad step");
                    let ub = int!(*ub, "bad ub");
                    let next = cur + step;
                    if next < ub {
                        reg!(*iv) = RtValue::Int(next);
                        pc = *body as usize;
                    }
                }
                Instr::Call {
                    func: callee,
                    args,
                    results: _,
                } => {
                    let callee_plan = &plan.funcs[*callee as usize];
                    let new_base = self.regs.len();
                    self.regs
                        .resize(new_base + callee_plan.reg_count as usize, RtValue::Unit);
                    for (i, &a) in args.iter().enumerate() {
                        self.regs[new_base + callee_plan.params[i] as usize] =
                            self.regs[base + a as usize];
                    }
                    // Flush the caller frame (pc already past the call).
                    self.frames[frame].pc = pc as u32;
                    self.frames.push(PlanFrame {
                        func: *callee,
                        pc: 0,
                        base: new_base as u32,
                    });
                    frame += 1;
                    func = *callee as usize;
                    code = &plan.funcs[func].code;
                    base = new_base;
                    pc = 0;
                }
                Instr::LoadBinFloat {
                    op,
                    dst,
                    other,
                    loaded_is_lhs,
                    f32_out,
                    mem,
                    idx,
                    rank,
                    site,
                } => {
                    // Exactly the Load arm…
                    let mr = reg!(*mem)
                        .as_memref()
                        .ok_or_else(|| err("load from non-memref"))?;
                    let mut indices = [0_i64; 3];
                    for d in 0..*rank as usize {
                        indices[d] = int!(idx[d], "non-int index");
                    }
                    let addr = mr.linearize(&indices[..*rank as usize]);
                    self.mem_event(ctx, *site, &mr, addr)?;
                    let loaded = pool_load!(*site, mr.mem, addr);
                    // …then exactly the BinFloat arm, with the loaded value
                    // in its original operand position.
                    ctx.stats.arith_ops += 1;
                    let loaded = loaded
                        .as_f64()
                        .ok_or_else(|| err("float op on non-float"))?;
                    let (l, r) = if *loaded_is_lhs {
                        (loaded, flt!(*other, "float op on non-float"))
                    } else {
                        (flt!(*other, "float op on non-float"), loaded)
                    };
                    let out = match op {
                        FloatBin::Add => l + r,
                        FloatBin::Mul => l * r,
                        // Only Add/Mul are ever fused (see `try_fuse`).
                        _ => return Err(err("unfusable float op in LoadBinFloat")),
                    };
                    reg!(*dst) = if *f32_out {
                        RtValue::F32(out as f32)
                    } else {
                        RtValue::F64(out)
                    };
                }
                Instr::MulAddInt { dst, a, b, c } => {
                    ctx.stats.arith_ops += 2; // the muli and the addi
                    let a = int!(*a, "int op on non-int");
                    let b = int!(*b, "int op on non-int");
                    let c = int!(*c, "int op on non-int");
                    reg!(*dst) = RtValue::Int(a.wrapping_mul(b).wrapping_add(c));
                }
                Instr::CmpIBranch { pred, l, r, target } => {
                    ctx.stats.arith_ops += 2; // the cmpi and the branch
                    let l = int!(*l, "cmpi on non-int");
                    let r = int!(*r, "cmpi on non-int");
                    if !pred.eval_int(l, r) {
                        pc = *target as usize;
                    }
                }
                Instr::AccLoadIndexed {
                    dst,
                    acc,
                    comps,
                    comps_rank,
                    idx,
                    rank,
                    site,
                } => {
                    // Exactly the VecCtor arm…
                    ctx.stats.arith_ops += 1;
                    let mut id = [0_i64; 3];
                    for d in 0..*comps_rank as usize {
                        id[d] = int!(comps[d], "id component");
                    }
                    // …then the AccSubscript arm (its id operand is the
                    // vector built above, so the vec check cannot fail)…
                    ctx.stats.arith_ops += 1;
                    let a = reg!(*acc)
                        .as_accessor()
                        .ok_or_else(|| err("subscript of non-accessor"))?;
                    let offset = a.linearize(&id[..*comps_rank as usize]);
                    let space = if a.constant {
                        Space::Constant
                    } else {
                        Space::Global
                    };
                    let mr = MemRefVal {
                        mem: a.mem,
                        offset,
                        shape: [-1, 1, 1],
                        rank: 1,
                        space,
                    };
                    // …then the Load arm through the elided view.
                    let mut indices = [0_i64; 3];
                    for d in 0..*rank as usize {
                        indices[d] = int!(idx[d], "non-int index");
                    }
                    let addr = mr.linearize(&indices[..*rank as usize]);
                    self.mem_event(ctx, *site, &mr, addr)?;
                    reg!(*dst) = pool_load!(*site, mr.mem, addr);
                }
                Instr::AccStoreIndexed {
                    val,
                    acc,
                    comps,
                    comps_rank,
                    idx,
                    rank,
                    site,
                } => {
                    // VecCtor, then AccSubscript, then the Store arm —
                    // identical sequencing to the unfused chain.
                    ctx.stats.arith_ops += 1;
                    let mut id = [0_i64; 3];
                    for d in 0..*comps_rank as usize {
                        id[d] = int!(comps[d], "id component");
                    }
                    ctx.stats.arith_ops += 1;
                    let a = reg!(*acc)
                        .as_accessor()
                        .ok_or_else(|| err("subscript of non-accessor"))?;
                    let offset = a.linearize(&id[..*comps_rank as usize]);
                    let space = if a.constant {
                        Space::Constant
                    } else {
                        Space::Global
                    };
                    let mr = MemRefVal {
                        mem: a.mem,
                        offset,
                        shape: [-1, 1, 1],
                        rank: 1,
                        space,
                    };
                    let v = reg!(*val);
                    let mut indices = [0_i64; 3];
                    for d in 0..*rank as usize {
                        indices[d] = int!(idx[d], "non-int index");
                    }
                    let addr = mr.linearize(&indices[..*rank as usize]);
                    self.mem_event(ctx, *site, &mr, addr)?;
                    pool_store!(*site, mr.mem, addr, v);
                }
                Instr::LoadMulAddF {
                    dst,
                    mem,
                    idx,
                    rank,
                    site,
                    b,
                    loaded_is_lhs,
                    mul_f32,
                    c,
                    prod_is_lhs,
                    f32_out,
                } => {
                    // The Load arm…
                    let mr = reg!(*mem)
                        .as_memref()
                        .ok_or_else(|| err("load from non-memref"))?;
                    let mut indices = [0_i64; 3];
                    for d in 0..*rank as usize {
                        indices[d] = int!(idx[d], "non-int index");
                    }
                    let addr = mr.linearize(&indices[..*rank as usize]);
                    self.mem_event(ctx, *site, &mr, addr)?;
                    let loaded = pool_load!(*site, mr.mem, addr);
                    // …then the mulf arm with the original operand order,
                    // narrowing the elided product exactly as its
                    // register write would have…
                    ctx.stats.arith_ops += 1;
                    let loaded = loaded
                        .as_f64()
                        .ok_or_else(|| err("float op on non-float"))?;
                    let bv = flt!(*b, "float op on non-float");
                    let (ml, mr2) = if *loaded_is_lhs {
                        (loaded, bv)
                    } else {
                        (bv, loaded)
                    };
                    let mut prod = ml * mr2;
                    if *mul_f32 {
                        prod = prod as f32 as f64;
                    }
                    // …then the addf arm.
                    ctx.stats.arith_ops += 1;
                    let cv = flt!(*c, "float op on non-float");
                    let (al, ar) = if *prod_is_lhs { (prod, cv) } else { (cv, prod) };
                    let out = al + ar;
                    reg!(*dst) = if *f32_out {
                        RtValue::F32(out as f32)
                    } else {
                        RtValue::F64(out)
                    };
                }
                Instr::StoreBinFloat {
                    op,
                    l,
                    r,
                    f32_out,
                    mem,
                    idx,
                    rank,
                    site,
                } => {
                    // The BinFloat arm…
                    ctx.stats.arith_ops += 1;
                    let lv = flt!(*l, "float op on non-float");
                    let rv = flt!(*r, "float op on non-float");
                    let out = match op {
                        FloatBin::Add => lv + rv,
                        FloatBin::Sub => lv - rv,
                        FloatBin::Mul => lv * rv,
                        FloatBin::Div => lv / rv,
                        FloatBin::Min => lv.min(rv),
                        FloatBin::Max => lv.max(rv),
                    };
                    let v = if *f32_out {
                        RtValue::F32(out as f32)
                    } else {
                        RtValue::F64(out)
                    };
                    // …then the Store arm with the elided value register.
                    let mr = reg!(*mem)
                        .as_memref()
                        .ok_or_else(|| err("store to non-memref"))?;
                    let mut indices = [0_i64; 3];
                    for d in 0..*rank as usize {
                        indices[d] = int!(idx[d], "non-int index");
                    }
                    let addr = mr.linearize(&indices[..*rank as usize]);
                    self.mem_event(ctx, *site, &mr, addr)?;
                    pool_store!(*site, mr.mem, addr, v);
                }
                Instr::AccLoadQuad {
                    dst,
                    acc,
                    comps,
                    comps_rank,
                    id,
                    view,
                    cst,
                    cst_val,
                    site,
                } => {
                    // The VecCtor arm, keeping the id register write…
                    ctx.stats.arith_ops += 1;
                    let mut data = [0_i64; 3];
                    for d in 0..*comps_rank as usize {
                        data[d] = int!(comps[d], "id component");
                    }
                    reg!(*id) = RtValue::Vec(VecVal {
                        data,
                        rank: *comps_rank as u32,
                    });
                    // …the AccSubscript arm, keeping the view write…
                    ctx.stats.arith_ops += 1;
                    let a = reg!(*acc)
                        .as_accessor()
                        .ok_or_else(|| err("subscript of non-accessor"))?;
                    let idv = reg!(*id).as_vec().ok_or_else(|| err("subscript id"))?;
                    let offset = a.linearize(&idv.data[..idv.rank as usize]);
                    let space = if a.constant {
                        Space::Constant
                    } else {
                        Space::Global
                    };
                    reg!(*view) = RtValue::MemRef(MemRefVal {
                        mem: a.mem,
                        offset,
                        shape: [-1, 1, 1],
                        rank: 1,
                        space,
                    });
                    // …the Const arm (no stats, like the Const opcode)…
                    reg!(*cst) = *cst_val;
                    // …then the Load arm, re-reading the kept registers so
                    // even degenerate register aliasing replays exactly.
                    let mr = reg!(*view)
                        .as_memref()
                        .ok_or_else(|| err("load from non-memref"))?;
                    let i0 = int!(*cst, "non-int index");
                    let addr = mr.linearize(&[i0]);
                    self.mem_event(ctx, *site, &mr, addr)?;
                    reg!(*dst) = pool_load!(*site, mr.mem, addr);
                }
                Instr::AccStoreQuad {
                    val,
                    acc,
                    comps,
                    comps_rank,
                    id,
                    view,
                    cst,
                    cst_val,
                    site,
                } => {
                    // VecCtor, AccSubscript and Const arms with all three
                    // register writes kept, then the Store arm — identical
                    // sequencing to the unfused quad.
                    ctx.stats.arith_ops += 1;
                    let mut data = [0_i64; 3];
                    for d in 0..*comps_rank as usize {
                        data[d] = int!(comps[d], "id component");
                    }
                    reg!(*id) = RtValue::Vec(VecVal {
                        data,
                        rank: *comps_rank as u32,
                    });
                    ctx.stats.arith_ops += 1;
                    let a = reg!(*acc)
                        .as_accessor()
                        .ok_or_else(|| err("subscript of non-accessor"))?;
                    let idv = reg!(*id).as_vec().ok_or_else(|| err("subscript id"))?;
                    let offset = a.linearize(&idv.data[..idv.rank as usize]);
                    let space = if a.constant {
                        Space::Constant
                    } else {
                        Space::Global
                    };
                    reg!(*view) = RtValue::MemRef(MemRefVal {
                        mem: a.mem,
                        offset,
                        shape: [-1, 1, 1],
                        rank: 1,
                        space,
                    });
                    reg!(*cst) = *cst_val;
                    let v = reg!(*val);
                    let mr = reg!(*view)
                        .as_memref()
                        .ok_or_else(|| err("store to non-memref"))?;
                    let i0 = int!(*cst, "non-int index");
                    let addr = mr.linearize(&[i0]);
                    self.mem_event(ctx, *site, &mr, addr)?;
                    pool_store!(*site, mr.mem, addr, v);
                }
                Instr::AccLoadIdxWt {
                    dst,
                    acc,
                    comps,
                    comps_rank,
                    id,
                    view,
                    idx,
                    rank,
                    site,
                } => {
                    // The VecCtor arm with the id write kept…
                    ctx.stats.arith_ops += 1;
                    let mut data = [0_i64; 3];
                    for d in 0..*comps_rank as usize {
                        data[d] = int!(comps[d], "id component");
                    }
                    reg!(*id) = RtValue::Vec(VecVal {
                        data,
                        rank: *comps_rank as u32,
                    });
                    // …the AccSubscript arm with the view write kept (a
                    // later store re-reads it — that is why this variant
                    // exists)…
                    ctx.stats.arith_ops += 1;
                    let a = reg!(*acc)
                        .as_accessor()
                        .ok_or_else(|| err("subscript of non-accessor"))?;
                    let idv = reg!(*id).as_vec().ok_or_else(|| err("subscript id"))?;
                    let offset = a.linearize(&idv.data[..idv.rank as usize]);
                    let space = if a.constant {
                        Space::Constant
                    } else {
                        Space::Global
                    };
                    reg!(*view) = RtValue::MemRef(MemRefVal {
                        mem: a.mem,
                        offset,
                        shape: [-1, 1, 1],
                        rank: 1,
                        space,
                    });
                    // …then the Load arm through the kept view.
                    let mr = reg!(*view)
                        .as_memref()
                        .ok_or_else(|| err("load from non-memref"))?;
                    let mut indices = [0_i64; 3];
                    for d in 0..*rank as usize {
                        indices[d] = int!(idx[d], "non-int index");
                    }
                    let addr = mr.linearize(&indices[..*rank as usize]);
                    self.mem_event(ctx, *site, &mr, addr)?;
                    reg!(*dst) = pool_load!(*site, mr.mem, addr);
                }
                Instr::AccStoreIdxWt {
                    val,
                    acc,
                    comps,
                    comps_rank,
                    id,
                    view,
                    idx,
                    rank,
                    site,
                } => {
                    // VecCtor and AccSubscript arms with both writes kept,
                    // then the Store arm.
                    ctx.stats.arith_ops += 1;
                    let mut data = [0_i64; 3];
                    for d in 0..*comps_rank as usize {
                        data[d] = int!(comps[d], "id component");
                    }
                    reg!(*id) = RtValue::Vec(VecVal {
                        data,
                        rank: *comps_rank as u32,
                    });
                    ctx.stats.arith_ops += 1;
                    let a = reg!(*acc)
                        .as_accessor()
                        .ok_or_else(|| err("subscript of non-accessor"))?;
                    let idv = reg!(*id).as_vec().ok_or_else(|| err("subscript id"))?;
                    let offset = a.linearize(&idv.data[..idv.rank as usize]);
                    let space = if a.constant {
                        Space::Constant
                    } else {
                        Space::Global
                    };
                    reg!(*view) = RtValue::MemRef(MemRefVal {
                        mem: a.mem,
                        offset,
                        shape: [-1, 1, 1],
                        rank: 1,
                        space,
                    });
                    let v = reg!(*val);
                    let mr = reg!(*view)
                        .as_memref()
                        .ok_or_else(|| err("store to non-memref"))?;
                    let mut indices = [0_i64; 3];
                    for d in 0..*rank as usize {
                        indices[d] = int!(idx[d], "non-int index");
                    }
                    let addr = mr.linearize(&indices[..*rank as usize]);
                    self.mem_event(ctx, *site, &mr, addr)?;
                    pool_store!(*site, mr.mem, addr, v);
                }
                Instr::StoreBinFloatWt {
                    op,
                    l,
                    r,
                    f32_out,
                    t,
                    mem,
                    idx,
                    rank,
                    site,
                } => {
                    // The BinFloat arm, keeping the accumulator write…
                    ctx.stats.arith_ops += 1;
                    let lv = flt!(*l, "float op on non-float");
                    let rv = flt!(*r, "float op on non-float");
                    let out = match op {
                        FloatBin::Add => lv + rv,
                        FloatBin::Sub => lv - rv,
                        FloatBin::Mul => lv * rv,
                        FloatBin::Div => lv / rv,
                        FloatBin::Min => lv.min(rv),
                        FloatBin::Max => lv.max(rv),
                    };
                    reg!(*t) = if *f32_out {
                        RtValue::F32(out as f32)
                    } else {
                        RtValue::F64(out)
                    };
                    // …then the Store arm re-reading the kept value.
                    let v = reg!(*t);
                    let mr = reg!(*mem)
                        .as_memref()
                        .ok_or_else(|| err("store to non-memref"))?;
                    let mut indices = [0_i64; 3];
                    for d in 0..*rank as usize {
                        indices[d] = int!(idx[d], "non-int index");
                    }
                    let addr = mr.linearize(&indices[..*rank as usize]);
                    self.mem_event(ctx, *site, &mr, addr)?;
                    pool_store!(*site, mr.mem, addr, v);
                }
                Instr::Return { vals } => {
                    if frame == 0 {
                        self.finished = true;
                        return Ok(Stop::Finished);
                    }
                    // Read return values before truncating the frame.
                    let mut ret = [RtValue::Unit; 4];
                    let mut ret_overflow = Vec::new();
                    if vals.len() <= 4 {
                        for (i, &v) in vals.iter().enumerate() {
                            ret[i] = self.regs[base + v as usize];
                        }
                    } else {
                        ret_overflow = vals.iter().map(|&v| self.regs[base + v as usize]).collect();
                    }
                    self.regs.truncate(base);
                    self.frames.pop();
                    frame -= 1;
                    let caller = &self.frames[frame];
                    func = caller.func as usize;
                    code = &plan.funcs[func].code;
                    base = caller.base as usize;
                    pc = caller.pc as usize;
                    // The instruction before `pc` is the call.
                    let Instr::Call { results, .. } = &code[pc - 1] else {
                        return Err(err("return without a pending call"));
                    };
                    if vals.len() <= 4 {
                        for (i, &r) in results.iter().enumerate() {
                            self.regs[base + r as usize] = ret[i];
                        }
                    } else {
                        for (&r, v) in results.iter().zip(ret_overflow) {
                            self.regs[base + r as usize] = v;
                        }
                    }
                }
            }
        }
    }

    #[inline]
    fn dim(&self, base: usize, dim: DimSrc) -> Result<usize, SimError> {
        match dim {
            DimSrc::Const(d) => Ok(d as usize),
            DimSrc::Reg(r) => {
                let d = self.regs[base + r as usize]
                    .as_int()
                    .ok_or_else(|| err("non-constant dimension operand"))?;
                if !(0..3).contains(&d) {
                    return Err(err(format!("dimension {d} out of range")));
                }
                Ok(d as usize)
            }
        }
    }

    /// Record the cost of a memory access (same coalescing model and
    /// instance numbering as the tree-walk interpreter, keyed by plan site
    /// instead of `OpId`).
    fn mem_event(
        &mut self,
        ctx: &mut PlanExecCtx<'_, '_>,
        site: u32,
        mr: &MemRefVal,
        addr: i64,
    ) -> Result<(), SimError> {
        match mr.space {
            Space::Private => ctx.stats.private_accesses += 1,
            Space::Constant => ctx.stats.constant_accesses += 1,
            Space::Local => ctx.stats.local_accesses += 1,
            Space::Global => {
                ctx.stats.global_accesses += 1;
                let instance = {
                    let slot = &mut self.visits[site as usize];
                    *slot += 1;
                    *slot
                };
                let subgroup = (self.item.local_linear_id() / ctx.cost.subgroup_size as i64) as u32;
                let bytes = ctx.pool.elem_bytes(mr.mem) as i64;
                let segment = ((mr.mem.0 as u64) << 40)
                    | ((addr * bytes) / ctx.cost.transaction_bytes as i64) as u64;
                if ctx.wg.record((site, instance, subgroup), segment) {
                    ctx.stats.global_transactions += 1;
                }
            }
        }
        Ok(())
    }
}

pub(crate) fn materialize_dense(
    plan: &KernelPlan,
    ctx: &mut PlanExecCtx<'_, '_>,
    pctx: &mut PlanCtx,
    idx: u32,
) -> Result<MemRefVal, SimError> {
    if let Some(existing) = pctx.dense_cache[idx as usize] {
        return Ok(existing);
    }
    let c = &plan.dense_consts[idx as usize];
    let mem = ctx.pool.alloc(c.data.clone())?;
    let mr = MemRefVal {
        mem,
        offset: 0,
        shape: c.shape,
        rank: c.rank,
        space: Space::Constant,
    };
    pctx.dense_cache[idx as usize] = Some(mr);
    Ok(mr)
}

/// Aggregate decode statistics, exposed for tests and diagnostics.
impl KernelPlan {
    /// Total instruction count across all functions (tests/diagnostics).
    pub fn instr_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_pred_parsing_matches_tree_walk_defaults() {
        assert!(matches!(CmpPred::of_attr(None), CmpPred::Eq));
        assert!(matches!(
            CmpPred::of_attr(Some(&Attribute::Str("slt".into()))),
            CmpPred::Slt
        ));
        // Unknown spellings fall through to sge, like the interpreter's
        // final match arm.
        assert!(matches!(
            CmpPred::of_attr(Some(&Attribute::Str("ult".into()))),
            CmpPred::Sge
        ));
    }

    mod fusion {
        use super::super::*;
        use crate::cost::{CostModel, ExecStats};
        use crate::memory::{DataVec, MemId, MemoryPool};
        use crate::value::AccessorVal;
        use crate::NdRangeSpec;
        use sycl_mlir_dialects::arith::{self, constant_index};
        use sycl_mlir_dialects::func::{build_func, build_return};
        use sycl_mlir_ir::{Builder, Context};
        use sycl_mlir_sycl::device as sdev;
        use sycl_mlir_sycl::types::{accessor_type, nd_item_type, AccessMode, Target};

        fn ctx() -> Context {
            let c = Context::new();
            sycl_mlir_dialects::register_all(&c);
            sycl_mlir_sycl::register(&c);
            c
        }

        fn accessor(mem: MemId, len: i64) -> RtValue {
            RtValue::Accessor(AccessorVal {
                mem,
                range: [len, 1, 1],
                offset: [0, 0, 0],
                rank: 1,
                constant: false,
            })
        }

        /// Build a 1-d kernel with `n_accs` f32 accessors and an nd_item.
        fn build_kernel(
            m: &mut Module,
            n_accs: usize,
            body: impl FnOnce(&mut Builder<'_>, &[sycl_mlir_ir::ValueId], sycl_mlir_ir::ValueId),
        ) -> OpId {
            let c = m.ctx();
            let acc = accessor_type(c, c.f32_type(), 1, AccessMode::ReadWrite, Target::Global);
            let nd1 = nd_item_type(c, 1);
            let mut sig: Vec<sycl_mlir_ir::Type> = vec![acc; n_accs];
            sig.push(nd1);
            let top = m.top();
            let (func, entry) = build_func(m, top, "k", &sig, &[]);
            sdev::mark_kernel(m, func);
            let accs: Vec<sycl_mlir_ir::ValueId> =
                (0..n_accs).map(|i| m.block_arg(entry, i)).collect();
            let item = m.block_arg(entry, n_accs);
            {
                let mut b = Builder::at_end(m, entry);
                body(&mut b, &accs, item);
                build_return(&mut b, &[]);
            }
            func
        }

        /// Execute `plan` on fresh data and return (stats, all buffers).
        fn run_plan(
            plan: &KernelPlan,
            n_accs: usize,
            n: i64,
            nd: NdRangeSpec,
            threads: usize,
        ) -> (ExecStats, Vec<DataVec>) {
            let mut pool = MemoryPool::new();
            let mut args = Vec::new();
            for a in 0..n_accs {
                let data: Vec<f32> = (0..n).map(|i| (i + 1) as f32 * (a + 1) as f32).collect();
                let mem = pool.alloc(DataVec::F32(data));
                args.push(accessor(mem, n));
            }
            let cost = CostModel::default();
            let stats = crate::pool::run_plan_launch(plan, &args, nd, &mut pool, &cost, threads)
                .expect("plan launch runs");
            let bufs = (0..pool.len())
                .map(|i| pool.data(MemId(i as u32)).clone())
                .collect();
            (stats, bufs)
        }

        /// Decode twice, fuse one copy, assert the expected pair and
        /// quad counts (the builder's un-CSE'd accessor chains fuse as
        /// `AccLoadQuad`/`AccStoreQuad` four-instruction windows), and
        /// hold fused execution bit-identical to unfused at 1 and 4
        /// workers.
        fn assert_fused_identical(
            m: &Module,
            func: OpId,
            n_accs: usize,
            expect_pairs: u32,
            expect_quads: u32,
        ) {
            let n = 64_i64;
            let nd = NdRangeSpec::d1(n, 16);
            let unfused = decode_kernel(m, func).expect("decodes");
            let mut fused = decode_kernel(m, func).expect("decodes");
            let total = fuse_plan(&mut fused);
            assert_eq!(fused.fused_pairs, expect_pairs, "pair count");
            assert_eq!(fused.fused_quads, expect_quads, "quad count");
            assert_eq!(fused.fused_chains, 0, "no adjacent chains pre-CSE");
            assert_eq!(fused.fused_wt, 0, "no write-through windows pre-CSE");
            assert_eq!(total, expect_pairs + expect_quads, "total fusion count");
            let (ref_stats, ref_bufs) = run_plan(&unfused, n_accs, n, nd, 1);
            for threads in [1_usize, 4] {
                let (stats, bufs) = run_plan(&fused, n_accs, n, nd, threads);
                assert_eq!(ref_stats, stats, "stats differ at threads={threads}");
                assert_eq!(ref_bufs, bufs, "buffers differ at threads={threads}");
            }
        }

        fn has_instr(plan: &KernelPlan, pred: impl Fn(&Instr) -> bool) -> bool {
            plan.funcs.iter().any(|f| f.code.iter().any(&pred))
        }

        /// `a[i] += b[i]`: every un-CSE'd accessor chain (`vec.ctor` +
        /// `acc.subscript` + `Const` + `Load`/`Store`) fuses as a quad —
        /// including the load whose result feeds the `addf`, which the
        /// quad consumes before the load-accumulate pair can see it.
        #[test]
        fn load_accumulate_fuses_and_executes_identically() {
            let c = ctx();
            let mut m = Module::new(&c);
            let func = build_kernel(&mut m, 2, |b, accs, item| {
                let gid = sdev::global_id(b, item, 0);
                let va = sdev::load_via_id(b, accs[0], &[gid]);
                let vb = sdev::load_via_id(b, accs[1], &[gid]);
                let sum = arith::addf(b, va, vb);
                sdev::store_via_id(b, sum, accs[0], &[gid]);
            });
            assert_fused_identical(&m, func, 2, 0, 3);
            let mut fused = decode_kernel(&m, func).unwrap();
            fuse_plan(&mut fused);
            assert!(has_instr(&fused, |i| matches!(
                i,
                Instr::AccLoadQuad { .. }
            )));
            assert!(has_instr(&fused, |i| matches!(
                i,
                Instr::AccStoreQuad { .. }
            )));
        }

        /// `a[2*i+1] = a[i] * b[i]`: the `muli`+`addi` linear-addressing
        /// chain fuses, and so does the `mulf` consuming the second load.
        #[test]
        fn muli_addi_chain_fuses_and_executes_identically() {
            let c = ctx();
            let mut m = Module::new(&c);
            let func = build_kernel(&mut m, 2, |b, accs, item| {
                let gid = sdev::global_id(b, item, 0);
                let va = sdev::load_via_id(b, accs[0], &[gid]);
                let vb = sdev::load_via_id(b, accs[1], &[gid]);
                let prod = arith::mulf(b, va, vb);
                let two = constant_index(b, 2);
                let one = constant_index(b, 1);
                let scaled = arith::muli(b, gid, two);
                let idx = arith::addi(b, scaled, one);
                // Keep the write in bounds: (2i+1) % 64.
                let n = constant_index(b, 64);
                let wrapped = arith::remsi(b, idx, n);
                sdev::store_via_id(b, prod, accs[0], &[wrapped]);
            });
            // Three accessor quads plus the muli+addi pair.
            assert_fused_identical(&m, func, 2, 1, 3);
            let mut fused = decode_kernel(&m, func).unwrap();
            fuse_plan(&mut fused);
            assert!(has_instr(&fused, |i| matches!(i, Instr::MulAddInt { .. })));
        }

        /// `if (i % 2 == 0) a[i] += b[i]`: the `cmpi` feeding the `scf.if`
        /// fuses with the conditional branch.
        #[test]
        fn compare_branch_fuses_and_executes_identically() {
            let c = ctx();
            let mut m = Module::new(&c);
            let func = build_kernel(&mut m, 2, |b, accs, item| {
                let gid = sdev::global_id(b, item, 0);
                let two = constant_index(b, 2);
                let zero = constant_index(b, 0);
                let rem = arith::remsi(b, gid, two);
                let is_even = arith::cmpi(b, "eq", rem, zero);
                let (a0, a1) = (accs[0], accs[1]);
                sycl_mlir_dialects::scf::build_if(
                    b,
                    is_even,
                    &[],
                    |inner| {
                        let va = sdev::load_via_id(inner, a0, &[gid]);
                        let vb = sdev::load_via_id(inner, a1, &[gid]);
                        let sum = arith::addf(inner, va, vb);
                        sdev::store_via_id(inner, sum, a0, &[gid]);
                        vec![]
                    },
                    |_| vec![],
                );
            });
            // cmpi+branch, plus the three accessor quads in the then-arm.
            assert_fused_identical(&m, func, 2, 1, 3);
            let mut fused = decode_kernel(&m, func).unwrap();
            fuse_plan(&mut fused);
            assert!(has_instr(&fused, |i| matches!(i, Instr::CmpIBranch { .. })));
        }

        /// Near miss: `v + v` — the loaded value appears as *both* `addf`
        /// operands, so the load-accumulate pair must not fire. The
        /// addressing quads still do (they keep the loaded register's
        /// write, so the double read is unaffected).
        #[test]
        fn self_accumulate_does_not_fuse() {
            let c = ctx();
            let mut m = Module::new(&c);
            let func = build_kernel(&mut m, 1, |b, accs, item| {
                let gid = sdev::global_id(b, item, 0);
                let v = sdev::load_via_id(b, accs[0], &[gid]);
                let doubled = arith::addf(b, v, v);
                sdev::store_via_id(b, doubled, accs[0], &[gid]);
            });
            assert_fused_identical(&m, func, 1, 0, 2);
        }

        /// Near miss: the loaded value is consumed twice (once by the
        /// `addf`, once by a later `mulf`) — eliding its register would
        /// starve the second reader. Must not fuse.
        #[test]
        fn multiply_used_load_does_not_fuse() {
            let c = ctx();
            let mut m = Module::new(&c);
            let func = build_kernel(&mut m, 2, |b, accs, item| {
                let gid = sdev::global_id(b, item, 0);
                let va = sdev::load_via_id(b, accs[0], &[gid]);
                let vb = sdev::load_via_id(b, accs[1], &[gid]);
                let sum = arith::addf(b, vb, va); // vb read here…
                let scaled = arith::mulf(b, sum, vb); // …and here
                sdev::store_via_id(b, scaled, accs[0], &[gid]);
            });
            assert_fused_identical(&m, func, 2, 0, 3);
        }

        /// Near miss: `subf` is not in the fusable set (only the
        /// commutative `addf`/`mulf` accumulations are) — the adjacent
        /// load + subf pair must stay unfused.
        #[test]
        fn subf_after_load_does_not_fuse() {
            let c = ctx();
            let mut m = Module::new(&c);
            let func = build_kernel(&mut m, 2, |b, accs, item| {
                let gid = sdev::global_id(b, item, 0);
                let va = sdev::load_via_id(b, accs[0], &[gid]);
                let vb = sdev::load_via_id(b, accs[1], &[gid]);
                let diff = arith::subf(b, va, vb);
                sdev::store_via_id(b, diff, accs[0], &[gid]);
            });
            assert_fused_identical(&m, func, 2, 0, 3);
        }

        /// Near miss: the accumulated value of an `addf` feeding a store
        /// via the accessor chain is *not* adjacent to the store in
        /// unoptimized IR (the id construction sits between), so nothing
        /// may fuse around it — results must still match.
        #[test]
        fn non_adjacent_accumulate_store_stays_correct() {
            let c = ctx();
            let mut m = Module::new(&c);
            let func = build_kernel(&mut m, 2, |b, accs, item| {
                let gid = sdev::global_id(b, item, 0);
                let va = sdev::load_via_id(b, accs[0], &[gid]);
                let vb = sdev::load_via_id(b, accs[1], &[gid]);
                let sum = arith::addf(b, va, vb);
                sdev::store_via_id(b, sum, accs[1], &[gid]);
            });
            // All three accessor chains fuse as quads (the interposed
            // zero constant of `store_via_id` is the quad's third
            // member); the addf between load and store quads stays alone.
            assert_fused_identical(&m, func, 2, 0, 3);
        }

        /// Near miss: a `muli` whose product is read twice must keep its
        /// register.
        #[test]
        fn multiply_used_product_does_not_fuse() {
            let c = ctx();
            let mut m = Module::new(&c);
            let func = build_kernel(&mut m, 1, |b, accs, item| {
                let gid = sdev::global_id(b, item, 0);
                let two = constant_index(b, 2);
                let one = constant_index(b, 1);
                let n = constant_index(b, 64);
                let p = arith::muli(b, gid, two);
                let i1 = arith::addi(b, p, one); // p read here…
                let i2 = arith::addi(b, p, p); // …and twice more here
                let s = arith::addi(b, i1, i2);
                let wrapped = arith::remsi(b, s, n);
                let v = sdev::load_via_id(b, accs[0], &[gid]);
                sdev::store_via_id(b, v, accs[0], &[wrapped]);
            });
            assert_fused_identical(&m, func, 1, 0, 2);
        }
    }

    /// Bytecode-level chain-fusion tests: the accessor chains only become
    /// *adjacent* after CSE (the builder interposes the zero constant of
    /// `load_via_id`), so these tests construct the post-CSE instruction
    /// shapes directly — exactly what the compiled benchsuite kernels
    /// contain (held by `fusion_fires_on_benchsuite_kernels` in
    /// `tests/differential.rs`).
    mod chains {
        use super::super::*;
        use crate::cost::{CostModel, ExecStats};
        use crate::memory::{DataVec, MemId, MemoryPool};
        use crate::value::AccessorVal;
        use crate::NdRangeSpec;

        const N: i64 = 16;

        /// One decoded-shaped plan over `[accessor f32, memref f32]`
        /// params (registers 0 and 1); registers from 2 up are free.
        fn plan_of(code: Vec<Instr>, reg_count: u32, mem_sites: u32) -> KernelPlan {
            KernelPlan {
                funcs: vec![FuncPlan {
                    code,
                    reg_count,
                    params: vec![0, 1],
                    has_item_param: false,
                }],
                dense_consts: Vec::new(),
                mem_sites,
                local_sites: 0,
                fused_pairs: 0,
                fused_chains: 0,
                fused_quads: 0,
                fused_wt: 0,
            }
        }

        /// Execute `plan` on fresh buffers; returns stats plus both
        /// final buffer images.
        fn run(plan: &KernelPlan, threads: usize) -> (ExecStats, Vec<f32>, Vec<f32>) {
            let mut pool = MemoryPool::new();
            let ma = pool.alloc(DataVec::F32((0..N).map(|i| i as f32 * 0.5).collect()));
            let mb = pool.alloc(DataVec::F32((0..N).map(|i| 1.0 + i as f32).collect()));
            let args = [
                RtValue::Accessor(AccessorVal {
                    mem: ma,
                    range: [N, 1, 1],
                    offset: [0, 0, 0],
                    rank: 1,
                    constant: false,
                }),
                RtValue::MemRef(MemRefVal {
                    mem: mb,
                    offset: 0,
                    shape: [N, 1, 1],
                    rank: 1,
                    space: Space::Global,
                }),
            ];
            let stats = crate::pool::run_plan_launch(
                plan,
                &args,
                NdRangeSpec::d1(N, 4),
                &mut pool,
                &CostModel::default(),
                threads,
            )
            .expect("plan runs");
            let DataVec::F32(a) = pool.data(MemId(0)) else {
                panic!()
            };
            let DataVec::F32(b) = pool.data(MemId(1)) else {
                panic!()
            };
            (stats, a.clone(), b.clone())
        }

        /// Fuse a clone, assert the expected per-class fusion counts,
        /// and hold fused execution bit-identical to unfused at 1 and 4
        /// workers.
        fn assert_chain_identical(
            plan: &KernelPlan,
            expect_pairs: u32,
            expect_chains: u32,
            expect_quads: u32,
            expect_wt: u32,
        ) -> KernelPlan {
            let mut fused = plan.clone();
            fuse_plan(&mut fused);
            assert_eq!(fused.fused_pairs, expect_pairs, "pair count");
            assert_eq!(fused.fused_chains, expect_chains, "chain count");
            assert_eq!(fused.fused_quads, expect_quads, "quad count");
            assert_eq!(fused.fused_wt, expect_wt, "write-through count");
            let (ref_stats, ref_a, ref_b) = run(plan, 1);
            for threads in [1_usize, 4] {
                let (stats, a, b) = run(&fused, threads);
                assert_eq!(ref_stats, stats, "stats differ at threads={threads}");
                assert_eq!(ref_a, a, "accessor buffer differs at threads={threads}");
                assert_eq!(ref_b, b, "memref buffer differs at threads={threads}");
            }
            fused
        }

        fn has_instr(plan: &KernelPlan, pred: impl Fn(&Instr) -> bool) -> bool {
            plan.funcs.iter().any(|f| f.code.iter().any(&pred))
        }

        /// The post-CSE accessor chain shape: `acc[gid] = acc[gid] + 1.0`
        /// with both the load-side and store-side chains adjacent. The
        /// load chain fuses to `AccLoadIndexed`, the store chain to
        /// `AccStoreIndexed`.
        #[test]
        fn accessor_load_and_store_chains_fuse_and_execute_identically() {
            let code = vec![
                // r2 = gid, r3 = 0, r4 = 1.0f
                Instr::ItemQuery {
                    dst: 2,
                    q: ItemQ::GlobalId,
                    dim: DimSrc::Const(0),
                },
                Instr::Const {
                    dst: 3,
                    val: RtValue::Int(0),
                },
                Instr::Const {
                    dst: 4,
                    val: RtValue::F32(1.0),
                },
                // Load chain: id, view, load.
                Instr::VecCtor {
                    dst: 5,
                    comps: [2, 0, 0],
                    rank: 1,
                },
                Instr::AccSubscript {
                    dst: 6,
                    acc: 0,
                    id: 5,
                },
                Instr::Load {
                    dst: 7,
                    mem: 6,
                    idx: [3, 0, 0],
                    rank: 1,
                    site: 0,
                },
                // v + 1.0 (followed by a VecCtor, so the accumulate-store
                // pair cannot fire — the store chain wins instead).
                Instr::BinFloat {
                    op: FloatBin::Add,
                    dst: 8,
                    l: 7,
                    r: 4,
                    f32_out: true,
                },
                // Store chain: id, view, store.
                Instr::VecCtor {
                    dst: 9,
                    comps: [2, 0, 0],
                    rank: 1,
                },
                Instr::AccSubscript {
                    dst: 10,
                    acc: 0,
                    id: 9,
                },
                Instr::Store {
                    val: 8,
                    mem: 10,
                    idx: [3, 0, 0],
                    rank: 1,
                    site: 1,
                },
                Instr::Return {
                    vals: Vec::new().into_boxed_slice(),
                },
            ];
            let plan = plan_of(code, 11, 2);
            let fused = assert_chain_identical(&plan, 0, 2, 0, 0);
            assert!(has_instr(&fused, |i| matches!(
                i,
                Instr::AccLoadIndexed { .. }
            )));
            assert!(has_instr(&fused, |i| matches!(
                i,
                Instr::AccStoreIndexed { .. }
            )));
            // The whole 8-instruction body collapsed to 4.
            assert_eq!(fused.funcs[0].code.len(), 7);
        }

        /// `b[gid] = b[gid] * 2 + 3` as the post-CSE multiply-accumulate
        /// shape: `Load`+`mulf`+`addf` fuses to one `LoadMulAddF` (the
        /// triple wins over the `Load`+`mulf` pair sharing its head), and
        /// the trailing `addf`… store pair is consumed by the chain, so
        /// the store stays unfused.
        #[test]
        fn load_mul_add_chain_beats_the_pair_deterministically() {
            let code = vec![
                Instr::ItemQuery {
                    dst: 2,
                    q: ItemQ::GlobalId,
                    dim: DimSrc::Const(0),
                },
                Instr::Const {
                    dst: 3,
                    val: RtValue::F32(2.0),
                },
                Instr::Const {
                    dst: 4,
                    val: RtValue::F32(3.0),
                },
                Instr::Load {
                    dst: 5,
                    mem: 1,
                    idx: [2, 0, 0],
                    rank: 1,
                    site: 0,
                },
                // Narrow the product to f32 but keep the sum f64-typed:
                // exercises the elided intermediate's exact narrowing.
                Instr::BinFloat {
                    op: FloatBin::Mul,
                    dst: 6,
                    l: 5,
                    r: 3,
                    f32_out: true,
                },
                Instr::BinFloat {
                    op: FloatBin::Add,
                    dst: 7,
                    l: 4,
                    r: 6,
                    f32_out: true,
                },
                Instr::Store {
                    val: 7,
                    mem: 1,
                    idx: [2, 0, 0],
                    rank: 1,
                    site: 1,
                },
                Instr::Return {
                    vals: Vec::new().into_boxed_slice(),
                },
            ];
            let plan = plan_of(code, 8, 2);
            let fused = assert_chain_identical(&plan, 0, 1, 0, 0);
            assert!(has_instr(&fused, |i| matches!(
                i,
                Instr::LoadMulAddF { .. }
            )));
            assert!(
                !has_instr(&fused, |i| matches!(i, Instr::LoadBinFloat { .. })),
                "the pair must lose to the chain sharing its head"
            );
        }

        /// When the `addf` does not consume the product, the chain cannot
        /// fire — the `Load`+`mulf` *pair* must fuse instead (same head,
        /// shorter window): competing overlapping patterns resolve
        /// deterministically by decode shape, never by chance.
        #[test]
        fn pair_fires_when_the_triple_cannot() {
            let code = vec![
                Instr::ItemQuery {
                    dst: 2,
                    q: ItemQ::GlobalId,
                    dim: DimSrc::Const(0),
                },
                Instr::Const {
                    dst: 3,
                    val: RtValue::F32(2.0),
                },
                Instr::Load {
                    dst: 5,
                    mem: 1,
                    idx: [2, 0, 0],
                    rank: 1,
                    site: 0,
                },
                Instr::BinFloat {
                    op: FloatBin::Mul,
                    dst: 6,
                    l: 5,
                    r: 3,
                    f32_out: true,
                },
                // The addf reads the *constant* twice, not the product —
                // the product flows to the store instead.
                Instr::BinFloat {
                    op: FloatBin::Add,
                    dst: 7,
                    l: 3,
                    r: 3,
                    f32_out: true,
                },
                Instr::Store {
                    val: 6,
                    mem: 1,
                    idx: [2, 0, 0],
                    rank: 1,
                    site: 1,
                },
                Instr::Return {
                    vals: Vec::new().into_boxed_slice(),
                },
            ];
            let plan = plan_of(code, 8, 2);
            let fused = assert_chain_identical(&plan, 1, 0, 0, 0);
            assert!(has_instr(&fused, |i| matches!(
                i,
                Instr::LoadBinFloat {
                    op: FloatBin::Mul,
                    ..
                }
            )));
        }

        /// An `acc.subscript` result read by *both* a load and a later
        /// store (the post-CSE `c[i] = c[i] + x` shape — GEMM's shared
        /// view) blocks the *elided* chain, but the write-through variant
        /// fires in its place: the view keeps its register write, so the
        /// trailing store still reads it — bit-identically.
        #[test]
        fn multiply_read_subscript_view_takes_the_write_through_chain() {
            let code = vec![
                Instr::ItemQuery {
                    dst: 2,
                    q: ItemQ::GlobalId,
                    dim: DimSrc::Const(0),
                },
                Instr::Const {
                    dst: 3,
                    val: RtValue::Int(0),
                },
                Instr::Const {
                    dst: 4,
                    val: RtValue::F32(1.0),
                },
                Instr::VecCtor {
                    dst: 5,
                    comps: [2, 0, 0],
                    rank: 1,
                },
                Instr::AccSubscript {
                    dst: 6,
                    acc: 0,
                    id: 5,
                },
                // The view feeds the load here…
                Instr::Load {
                    dst: 7,
                    mem: 6,
                    idx: [3, 0, 0],
                    rank: 1,
                    site: 0,
                },
                Instr::BinFloat {
                    op: FloatBin::Add,
                    dst: 8,
                    l: 7,
                    r: 4,
                    f32_out: true,
                },
                // …and the store here: two reads, no elision.
                Instr::Store {
                    val: 8,
                    mem: 6,
                    idx: [3, 0, 0],
                    rank: 1,
                    site: 1,
                },
                Instr::Return {
                    vals: Vec::new().into_boxed_slice(),
                },
            ];
            let plan = plan_of(code, 9, 2);
            // The load chain fuses write-through (the multiply-read view
            // keeps its register); the trailing addf+store still fuses as
            // the ordinary accumulate-store pair.
            let fused = assert_chain_identical(&plan, 1, 0, 0, 1);
            assert!(has_instr(&fused, |i| matches!(
                i,
                Instr::AccLoadIdxWt { .. }
            )));
            assert!(!has_instr(&fused, |i| matches!(
                i,
                Instr::AccLoadIndexed { .. } | Instr::AccStoreIndexed { .. }
            )));
        }

        /// A chain whose *head* is a jump target may fuse (the whole
        /// window maps to the superinstruction's pc); a chain with a jump
        /// target on a **non-head member** must not — control flow could
        /// enter mid-window and skip the elided producers.
        #[test]
        fn jump_target_on_non_head_member_blocks_fusion() {
            // Shared suffix: id = vec.ctor gid; view = acc[id]; v = load;
            // store v -> b[gid]. The guard skips a filler instruction.
            let build = |branch_to_head: bool| -> KernelPlan {
                let chain_head = 6_u32;
                let target = if branch_to_head {
                    chain_head
                } else {
                    chain_head + 1 // the acc.subscript: mid-chain
                };
                // When branching mid-chain, the id register must still be
                // initialized on the taken path: define it before the
                // branch too.
                let code = vec![
                    Instr::ItemQuery {
                        dst: 2,
                        q: ItemQ::GlobalId,
                        dim: DimSrc::Const(0),
                    },
                    Instr::Const {
                        dst: 3,
                        val: RtValue::Int(0),
                    },
                    Instr::VecCtor {
                        dst: 6,
                        comps: [2, 0, 0],
                        rank: 1,
                    }, // pc 2: pre-initialize the id register
                    Instr::CmpI {
                        pred: CmpPred::Eq,
                        dst: 4,
                        l: 2,
                        r: 3,
                    }, // pc 3 (fuses with the branch)
                    Instr::BranchIfFalse { cond: 4, target }, // pc 4
                    Instr::BinInt {
                        op: IntBin::Add,
                        dst: 5,
                        l: 2,
                        r: 3,
                    }, // pc 5: filler, skipped when gid != 0
                    Instr::VecCtor {
                        dst: 6,
                        comps: [2, 0, 0],
                        rank: 1,
                    }, // pc 6: chain head
                    Instr::AccSubscript {
                        dst: 7,
                        acc: 0,
                        id: 6,
                    }, // pc 7
                    Instr::Load {
                        dst: 8,
                        mem: 7,
                        idx: [3, 0, 0],
                        rank: 1,
                        site: 0,
                    }, // pc 8
                    Instr::Store {
                        val: 8,
                        mem: 1,
                        idx: [2, 0, 0],
                        rank: 1,
                        site: 1,
                    }, // pc 9
                    Instr::Return {
                        vals: Vec::new().into_boxed_slice(),
                    },
                ];
                plan_of(code, 9, 2)
            };

            // Branching to the head: the chain fuses (the whole window
            // maps to the superinstruction's pc — this exercises target
            // remapping across a multi-instruction window), and so does
            // the cmpi+branch pair.
            let fused = assert_chain_identical(&build(true), 1, 1, 0, 0);
            assert!(has_instr(&fused, |i| matches!(
                i,
                Instr::AccLoadIndexed { .. }
            )));

            // Branching to the subscript (a non-head member): neither the
            // elided chain nor its write-through variant may fire (the
            // mid-window jump-target rule applies to both) — only the
            // cmpi+branch pair does.
            let fused = assert_chain_identical(&build(false), 1, 0, 0, 0);
            assert!(!has_instr(&fused, |i| matches!(
                i,
                Instr::AccLoadIndexed { .. } | Instr::AccLoadIdxWt { .. }
            )));
        }

        /// The un-CSE'd DPC++-flow load shape: `vec.ctor` +
        /// `acc.subscript` + `Const 0` + `Load`, with the id vector and
        /// the constant *re-read by a later store chain* (exactly the
        /// compiled `a[i] = a[i] + 1` layout). The quad fuses
        /// write-through, so the later readers observe the kept register
        /// writes — bit-identically.
        #[test]
        fn un_csed_load_quad_fuses_and_writes_through() {
            let code = vec![
                Instr::ItemQuery {
                    dst: 2,
                    q: ItemQ::GlobalId,
                    dim: DimSrc::Const(0),
                },
                Instr::Const {
                    dst: 4,
                    val: RtValue::F32(1.0),
                },
                // Load chain, un-CSE'd: id, view, const, load.
                Instr::VecCtor {
                    dst: 5,
                    comps: [2, 0, 0],
                    rank: 1,
                },
                Instr::AccSubscript {
                    dst: 6,
                    acc: 0,
                    id: 5,
                },
                Instr::Const {
                    dst: 7,
                    val: RtValue::Int(0),
                },
                Instr::Load {
                    dst: 8,
                    mem: 6,
                    idx: [7, 0, 0],
                    rank: 1,
                    site: 0,
                },
                Instr::BinFloat {
                    op: FloatBin::Add,
                    dst: 9,
                    l: 8,
                    r: 4,
                    f32_out: true,
                },
                // Store chain, partially CSE'd: re-reads id 5 and const 7
                // — the quad's write-through registers.
                Instr::AccSubscript {
                    dst: 10,
                    acc: 0,
                    id: 5,
                },
                Instr::Store {
                    val: 9,
                    mem: 10,
                    idx: [7, 0, 0],
                    rank: 1,
                    site: 1,
                },
                Instr::Return {
                    vals: Vec::new().into_boxed_slice(),
                },
            ];
            let plan = plan_of(code, 11, 2);
            let fused = assert_chain_identical(&plan, 0, 0, 1, 0);
            assert!(has_instr(&fused, |i| matches!(
                i,
                Instr::AccLoadQuad { .. }
            )));
        }

        /// The un-CSE'd store quad: `vec.ctor` + `acc.subscript` +
        /// `Const 0` + `Store` fuses as `AccStoreQuad` even when every
        /// intermediate is single-read (the quad is tried before any
        /// shorter window).
        #[test]
        fn un_csed_store_quad_fuses() {
            let code = vec![
                Instr::ItemQuery {
                    dst: 2,
                    q: ItemQ::GlobalId,
                    dim: DimSrc::Const(0),
                },
                Instr::Const {
                    dst: 4,
                    val: RtValue::F32(2.5),
                },
                Instr::VecCtor {
                    dst: 5,
                    comps: [2, 0, 0],
                    rank: 1,
                },
                Instr::AccSubscript {
                    dst: 6,
                    acc: 0,
                    id: 5,
                },
                Instr::Const {
                    dst: 7,
                    val: RtValue::Int(0),
                },
                Instr::Store {
                    val: 4,
                    mem: 6,
                    idx: [7, 0, 0],
                    rank: 1,
                    site: 0,
                },
                Instr::Return {
                    vals: Vec::new().into_boxed_slice(),
                },
            ];
            let plan = plan_of(code, 8, 1);
            let fused = assert_chain_identical(&plan, 0, 0, 1, 0);
            assert!(has_instr(&fused, |i| matches!(
                i,
                Instr::AccStoreQuad { .. }
            )));
        }

        /// Quad near miss: the interposed constant must *feed the load's
        /// index* — a constant defining an unrelated register between the
        /// subscript and the load blocks the quad (and everything else).
        #[test]
        fn unrelated_const_blocks_the_quad() {
            let code = vec![
                Instr::ItemQuery {
                    dst: 2,
                    q: ItemQ::GlobalId,
                    dim: DimSrc::Const(0),
                },
                Instr::Const {
                    dst: 3,
                    val: RtValue::Int(0),
                },
                Instr::VecCtor {
                    dst: 5,
                    comps: [2, 0, 0],
                    rank: 1,
                },
                Instr::AccSubscript {
                    dst: 6,
                    acc: 0,
                    id: 5,
                },
                // Unrelated constant: the load indexes with r3, not r7.
                Instr::Const {
                    dst: 7,
                    val: RtValue::Int(1),
                },
                Instr::Load {
                    dst: 8,
                    mem: 6,
                    idx: [3, 0, 0],
                    rank: 1,
                    site: 0,
                },
                Instr::Store {
                    val: 8,
                    mem: 1,
                    idx: [7, 0, 0],
                    rank: 1,
                    site: 1,
                },
                Instr::Return {
                    vals: Vec::new().into_boxed_slice(),
                },
            ];
            let plan = plan_of(code, 9, 2);
            let fused = assert_chain_identical(&plan, 0, 0, 0, 0);
            assert!(!has_instr(&fused, |i| matches!(
                i,
                Instr::AccLoadQuad { .. } | Instr::AccLoadIdxWt { .. }
            )));
        }

        /// A store chain whose id vector is re-read by a second subscript
        /// (a CSE'd id feeding two accessor writes) fuses write-through:
        /// `AccStoreIdxWt` keeps the id register, and the second —
        /// unfuseable — subscript still reads it.
        #[test]
        fn multiply_read_id_takes_the_write_through_store_chain() {
            let code = vec![
                Instr::ItemQuery {
                    dst: 2,
                    q: ItemQ::GlobalId,
                    dim: DimSrc::Const(0),
                },
                Instr::Const {
                    dst: 3,
                    val: RtValue::Int(0),
                },
                Instr::Const {
                    dst: 4,
                    val: RtValue::F32(1.5),
                },
                // First store chain: adjacent, id multiply-read.
                Instr::VecCtor {
                    dst: 5,
                    comps: [2, 0, 0],
                    rank: 1,
                },
                Instr::AccSubscript {
                    dst: 6,
                    acc: 0,
                    id: 5,
                },
                Instr::Store {
                    val: 4,
                    mem: 6,
                    idx: [3, 0, 0],
                    rank: 1,
                    site: 0,
                },
                // Second chain re-reads id 5; its own members stay
                // unfused (no vec.ctor head).
                Instr::AccSubscript {
                    dst: 7,
                    acc: 0,
                    id: 5,
                },
                Instr::Load {
                    dst: 8,
                    mem: 7,
                    idx: [3, 0, 0],
                    rank: 1,
                    site: 1,
                },
                Instr::Store {
                    val: 8,
                    mem: 1,
                    idx: [2, 0, 0],
                    rank: 1,
                    site: 2,
                },
                Instr::Return {
                    vals: Vec::new().into_boxed_slice(),
                },
            ];
            let plan = plan_of(code, 9, 3);
            let fused = assert_chain_identical(&plan, 0, 0, 0, 1);
            assert!(has_instr(&fused, |i| matches!(
                i,
                Instr::AccStoreIdxWt { .. }
            )));
        }

        /// A float op whose result feeds an adjacent store *and* a later
        /// reader fuses write-through: `StoreBinFloatWt` keeps the
        /// accumulator register (`subf` keeps the pair out of the
        /// elided `LoadBinFloat` path).
        #[test]
        fn multiply_read_accumulator_takes_the_write_through_pair() {
            let code = vec![
                Instr::ItemQuery {
                    dst: 2,
                    q: ItemQ::GlobalId,
                    dim: DimSrc::Const(0),
                },
                Instr::Const {
                    dst: 3,
                    val: RtValue::Int(0),
                },
                Instr::Const {
                    dst: 4,
                    val: RtValue::F32(0.25),
                },
                Instr::Load {
                    dst: 5,
                    mem: 1,
                    idx: [2, 0, 0],
                    rank: 1,
                    site: 0,
                },
                // subf: not in the load-accumulate pair's op set, so the
                // load stays; the result is read by both stores below.
                Instr::BinFloat {
                    op: FloatBin::Sub,
                    dst: 6,
                    l: 5,
                    r: 4,
                    f32_out: true,
                },
                Instr::Store {
                    val: 6,
                    mem: 1,
                    idx: [2, 0, 0],
                    rank: 1,
                    site: 1,
                },
                // Second read of the accumulator: the kept write feeds it.
                Instr::VecCtor {
                    dst: 7,
                    comps: [2, 0, 0],
                    rank: 1,
                },
                Instr::AccSubscript {
                    dst: 8,
                    acc: 0,
                    id: 7,
                },
                Instr::Store {
                    val: 6,
                    mem: 8,
                    idx: [3, 0, 0],
                    rank: 1,
                    site: 2,
                },
                Instr::Return {
                    vals: Vec::new().into_boxed_slice(),
                },
            ];
            let plan = plan_of(code, 9, 3);
            // The subf+store fuses write-through; the trailing accessor
            // chain fuses as the ordinary elided store chain.
            let fused = assert_chain_identical(&plan, 0, 1, 0, 1);
            assert!(has_instr(&fused, |i| matches!(
                i,
                Instr::StoreBinFloatWt { .. }
            )));
            assert!(has_instr(&fused, |i| matches!(
                i,
                Instr::AccStoreIndexed { .. }
            )));
        }
    }
}
