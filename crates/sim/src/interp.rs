//! The resumable device interpreter.
//!
//! Each work-item runs as a [`WorkItemState`]: an explicit frame stack over
//! the structured IR, so execution can *suspend* at `sycl.group.barrier`
//! and resume later — the co-operative scheduling work-group barriers
//! require. The scheduler in [`crate::device`] drives all work-items of a
//! work-group between barrier points and detects the divergent-barrier
//! deadlock of §V-C.

use crate::cost::{CostModel, ExecStats};
use crate::memory::MemoryPool;
use crate::value::{MemRefVal, NdItemVal, RtValue, Space, VecVal};
use std::collections::{HashMap, HashSet};
use sycl_mlir_ir::{CommonKeys, Module, OpId, TypeKind, ValueId};

/// Why a work-item stopped running.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stop {
    /// Reached a `sycl.group.barrier`.
    Barrier,
    /// Ran to completion.
    Finished,
}

/// Which execution limit a launch exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitKind {
    /// The per-launch weighted-operation budget
    /// ([`ExecLimits::max_ops`](crate::limits::ExecLimits::max_ops)) ran
    /// out.
    Ops,
    /// The kernel-driven allocation cap
    /// ([`ExecLimits::mem_cap`](crate::limits::ExecLimits::mem_cap)) was
    /// exceeded.
    Memory,
    /// The wall-clock deadline
    /// ([`ExecLimits::deadline_ms`](crate::limits::ExecLimits::deadline_ms))
    /// passed.
    Deadline,
    /// The launch was cancelled — via its
    /// [`CancelToken`](crate::limits::CancelToken), or with-cause because
    /// a DAG predecessor failed.
    Cancelled,
}

impl LimitKind {
    /// Stable name used in error text.
    pub fn name(self) -> &'static str {
        match self {
            LimitKind::Ops => "op budget",
            LimitKind::Memory => "memory cap",
            LimitKind::Deadline => "deadline",
            LimitKind::Cancelled => "cancelled",
        }
    }
}

/// A simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A general execution failure described by a message.
    Message {
        /// Human-readable description of the failure.
        message: String,
        /// The `(launch, work-group)` position the failure was recorded
        /// at, when it happened inside a scheduled launch (`None` for
        /// errors raised outside any launch, e.g. graph validation).
        /// Rendered into [`SimError::message`], so failure positions are
        /// part of the bit-identical cross-engine error contract.
        at: Option<(usize, usize)>,
    },
    /// A per-launch execution limit tripped (or the launch was
    /// cancelled). Structured — not a panic — so callers can match on
    /// the kind and position, and the device stays usable afterwards.
    LimitExceeded {
        /// Which limit tripped.
        kind: LimitKind,
        /// Index of the launch within its graph (0 for single launches).
        launch: usize,
        /// Linear index of the tripping work-group within the launch.
        group: usize,
    },
}

impl SimError {
    /// A general failure with the given message.
    pub fn msg(message: impl Into<String>) -> SimError {
        SimError::Message {
            message: message.into(),
            at: None,
        }
    }

    /// A limit trip whose position is not known yet; the scheduler
    /// stamps the true `(launch, group)` when it records the failure.
    pub(crate) fn limit(kind: LimitKind) -> SimError {
        SimError::LimitExceeded {
            kind,
            launch: 0,
            group: 0,
        }
    }

    /// Re-stamp an error with its true `(launch, group)` position. Every
    /// error kind carries the position (not just limit trips — PR 9
    /// bugfix: message errors used to drop it, so host-task segmentation
    /// reported segment-local launch indices).
    pub(crate) fn at(self, launch: usize, group: usize) -> SimError {
        match self {
            SimError::LimitExceeded { kind, .. } => SimError::LimitExceeded {
                kind,
                launch,
                group,
            },
            SimError::Message { message, .. } => SimError::Message {
                message,
                at: Some((launch, group)),
            },
        }
    }

    /// The error text without the `simulation error: ` prefix.
    pub fn message(&self) -> String {
        match self {
            SimError::Message { message, at: None } => message.clone(),
            SimError::Message {
                message,
                at: Some((launch, group)),
            } => format!("{message} (launch {launch}, work-group {group})"),
            SimError::LimitExceeded {
                kind,
                launch,
                group,
            } => format!(
                "execution limit exceeded: {} (launch {launch}, work-group {group})",
                kind.name()
            ),
        }
    }

    /// Whether a launch failing with this error cancels its DAG
    /// successors. Limit trips and injected faults cascade — their
    /// successors retire as `Cancelled { cause }` without running.
    /// Plain kernel errors (out-of-bounds access, divergent barrier,
    /// type mismatch, ...) keep the pre-limits contract: successors
    /// still execute, so the first-failure position stays identical
    /// under the out-of-order, level-barrier and serial schedules.
    pub(crate) fn cascades(&self) -> bool {
        match self {
            SimError::LimitExceeded { .. } => true,
            SimError::Message { message, .. } => message.starts_with("injected fault"),
        }
    }

    /// The limit kind, if this is a limit/cancellation error.
    pub fn limit_kind(&self) -> Option<LimitKind> {
        match self {
            SimError::LimitExceeded { kind, .. } => Some(*kind),
            SimError::Message { .. } => None,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulation error: {}", self.message())
    }
}

impl std::error::Error for SimError {}

fn err(msg: impl Into<String>) -> SimError {
    SimError::msg(msg)
}

/// A cheap multiply-mix hasher for the coalescing tracker's integer keys.
/// The tracker sits on the hottest path of the simulator (one insert per
/// global memory access of every work-item); SipHash's per-lookup cost is
/// measurable there, and HashDoS resistance buys nothing against keys the
/// simulator itself generates.
#[derive(Default)]
pub(crate) struct IntMixHasher(u64);

impl std::hash::Hasher for IntMixHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.0 = (self.0 ^ x as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = (self.0 ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Finalizing xor-shift: the multiply mixes low bits upward, this
        // folds the well-mixed high bits back down for table indexing.
        self.0 ^ (self.0 >> 32)
    }
}

type IntMixBuild = std::hash::BuildHasherDefault<IntMixHasher>;

/// Work-group-shared execution state.
#[derive(Default)]
pub struct WorkGroupCtx {
    /// `sycl.local.alloca` results shared by the group.
    local_allocs: HashMap<OpId, MemRefVal>,
    /// Coalescing tracker: the set of (site, instance, subgroup, segment)
    /// tuples touched by this work-group. The site is an `OpId` index
    /// under the tree-walk engine and a plan site id under the plan
    /// engine; a launch only ever uses one keying.
    segments: HashSet<(u32, u32, u32, u64), IntMixBuild>,
}

impl WorkGroupCtx {
    /// Record a global access; returns `true` if it opens a new
    /// transaction (a 64-byte segment not yet touched by this sub-group at
    /// this op instance).
    #[inline]
    pub(crate) fn record(&mut self, key: (u32, u32, u32), segment: u64) -> bool {
        self.segments.insert((key.0, key.1, key.2, segment))
    }

    /// Reset for the next work-group, retaining table capacity (this runs
    /// once per group; reallocating and regrowing the set each time costs
    /// more than the clear).
    pub(crate) fn reset(&mut self) {
        self.local_allocs.clear();
        self.segments.clear();
    }
}

/// Per-launch shared state (across work-groups).
pub struct ExecCtx<'a> {
    /// The module being interpreted.
    pub m: &'a Module,
    /// Device memory of the launch.
    pub pool: &'a mut MemoryPool,
    /// The cost model charged per dynamic event.
    pub cost: &'a CostModel,
    /// Accumulated dynamic statistics.
    pub stats: ExecStats,
    /// Work-group-shared state (local allocas, coalescing tracker).
    pub wg: WorkGroupCtx,
    /// Pre-interned attribute keys (`value`, `predicate`, …), resolved once
    /// per launch instead of per dynamic op.
    keys: CommonKeys,
    /// Materialized dense-constant memrefs (`arith.constant` of memref
    /// type), shared per launch.
    const_pool: HashMap<OpId, MemRefVal>,
    /// Execution-limit metering (`None` when no limits are set, which
    /// skips every check).
    pub(crate) limits: Option<Box<crate::limits::OpMeter>>,
}

impl<'a> ExecCtx<'a> {
    /// A fresh per-launch context over `pool` with zeroed statistics.
    pub fn new(m: &'a Module, pool: &'a mut MemoryPool, cost: &'a CostModel) -> ExecCtx<'a> {
        ExecCtx {
            m,
            pool,
            cost,
            stats: ExecStats::default(),
            wg: WorkGroupCtx::default(),
            keys: m.ctx().common_keys(),
            const_pool: HashMap::new(),
            limits: None,
        }
    }

    /// Reset work-group-shared state (call between work-groups).
    pub fn next_work_group(&mut self) {
        self.wg.reset();
        if let Some(meter) = self.limits.as_deref_mut() {
            meter.begin_group();
        }
    }
}

enum Frame {
    Block {
        block: sycl_mlir_ir::BlockId,
        idx: usize,
    },
    If {
        op: OpId,
    },
    Loop {
        op: OpId,
        iv: i64,
        ub: i64,
        step: i64,
    },
    Call {
        op: OpId,
    },
}

/// One work-item's resumable execution state.
pub struct WorkItemState {
    env: Vec<RtValue>,
    bound: Vec<bool>,
    frames: Vec<Frame>,
    visits: Vec<u32>,
    /// The work-item's position bundle.
    pub item: NdItemVal,
    /// Whether the work-item ran to completion.
    pub finished: bool,
    steps: u64,
}

const MAX_STEPS: u64 = 500_000_000;

impl WorkItemState {
    /// Prepare execution of `kernel` with `args` bound to all parameters
    /// except the trailing item-like one, which gets `item`.
    pub fn new(
        m: &Module,
        kernel: OpId,
        args: &[RtValue],
        item: NdItemVal,
    ) -> Result<WorkItemState, SimError> {
        let entry = m.op_region_block(kernel, 0);
        let params = m.block_args(entry).to_vec();
        let mut s = WorkItemState {
            env: vec![RtValue::Unit; m.value_capacity()],
            bound: vec![false; m.value_capacity()],
            frames: vec![Frame::Block {
                block: entry,
                idx: 0,
            }],
            visits: vec![0; m.op_capacity()],
            item,
            finished: false,
            steps: 0,
        };
        let has_item = params
            .last()
            .map(|&p| sycl_mlir_sycl::types::is_item_like(&m.value_type(p)))
            .unwrap_or(false);
        let value_params = if has_item {
            &params[..params.len() - 1]
        } else {
            &params[..]
        };
        if value_params.len() != args.len() {
            return Err(err(format!(
                "kernel expects {} arguments, got {}",
                value_params.len(),
                args.len()
            )));
        }
        for (&p, &a) in value_params.iter().zip(args) {
            s.bind(p, a);
        }
        if has_item {
            s.bind(*params.last().unwrap(), RtValue::Item(item));
        }
        Ok(s)
    }

    fn bind(&mut self, v: ValueId, val: RtValue) {
        self.env[v.0 as usize] = val;
        self.bound[v.0 as usize] = true;
    }

    fn val(&self, v: ValueId) -> Result<RtValue, SimError> {
        if !self.bound[v.0 as usize] {
            return Err(err(
                "use of unbound SSA value (interpreter bug or invalid IR)",
            ));
        }
        Ok(self.env[v.0 as usize])
    }

    fn vals(&self, m: &Module, op: OpId) -> Result<Vec<RtValue>, SimError> {
        m.op_operands(op).iter().map(|&v| self.val(v)).collect()
    }

    fn assign_results(&mut self, m: &Module, op: OpId, vals: &[RtValue]) {
        for (i, &r) in m.op_results(op).iter().enumerate() {
            self.bind(r, vals[i]);
        }
    }

    /// Run until the next barrier or completion.
    pub fn run(&mut self, ctx: &mut ExecCtx<'_>) -> Result<Stop, SimError> {
        if self.finished {
            return Ok(Stop::Finished);
        }
        loop {
            self.steps += 1;
            if self.steps > MAX_STEPS {
                return Err(err("work-item exceeded the step budget (runaway loop?)"));
            }
            if let Some(meter) = ctx.limits.as_deref_mut() {
                meter.charge(1)?;
            }
            let fi = self.frames.len();
            if fi == 0 {
                self.finished = true;
                return Ok(Stop::Finished);
            }
            let (block, idx) = match &self.frames[fi - 1] {
                Frame::Block { block, idx } => (*block, *idx),
                _ => return Err(err("malformed frame stack")),
            };
            let ops = ctx.m.block_ops(block);
            if idx >= ops.len() {
                // Block fell off the end (no terminator executed): treat as
                // function end for kernels whose region is module-like.
                self.frames.pop();
                continue;
            }
            let op = ops[idx];
            if let Frame::Block { idx, .. } = &mut self.frames[fi - 1] {
                *idx += 1;
            }
            let name = ctx.m.op_name_str(op);
            match &*name {
                "func.return" => {
                    let vals = self.vals(ctx.m, op)?;
                    loop {
                        match self.frames.pop() {
                            None => {
                                self.finished = true;
                                return Ok(Stop::Finished);
                            }
                            Some(Frame::Call { op: call }) => {
                                self.assign_results(ctx.m, call, &vals);
                                break;
                            }
                            Some(_) => {}
                        }
                    }
                }
                "scf.yield" | "affine.yield" => {
                    let vals = self.vals(ctx.m, op)?;
                    self.frames.pop(); // the finished block
                    match self.frames.last().map(|f| match f {
                        Frame::If { op } => (0, *op, 0, 0, 0),
                        Frame::Loop { op, iv, ub, step } => (1, *op, *iv, *ub, *step),
                        _ => (2, OpId(0), 0, 0, 0),
                    }) {
                        Some((0, if_op, ..)) => {
                            self.frames.pop();
                            self.assign_results(ctx.m, if_op, &vals);
                        }
                        Some((1, loop_op, iv, ub, step)) => {
                            let next = iv + step;
                            if next < ub {
                                if let Some(Frame::Loop { iv, .. }) = self.frames.last_mut() {
                                    *iv = next;
                                }
                                let m = ctx.m;
                                let body = m.op_region_block(loop_op, 0);
                                let args = m.block_args(body);
                                self.bind(args[0], RtValue::Int(next));
                                for (i, &a) in args[1..].iter().enumerate() {
                                    self.bind(a, vals[i]);
                                }
                                self.frames.push(Frame::Block {
                                    block: body,
                                    idx: 0,
                                });
                            } else {
                                self.frames.pop();
                                self.assign_results(ctx.m, loop_op, &vals);
                            }
                        }
                        _ => return Err(err("yield outside of an if/loop")),
                    }
                }
                "scf.if" => {
                    let cond = self
                        .val(ctx.m.op_operand(op, 0))?
                        .as_bool()
                        .ok_or_else(|| err("non-boolean if condition"))?;
                    ctx.stats.arith_ops += 1;
                    let region = if cond { 0 } else { 1 };
                    let blk = ctx.m.op_region_block(op, region);
                    self.frames.push(Frame::If { op });
                    self.frames.push(Frame::Block { block: blk, idx: 0 });
                }
                "scf.for" | "affine.for" => {
                    let lb = self
                        .val(ctx.m.op_operand(op, 0))?
                        .as_int()
                        .ok_or_else(|| err("bad lb"))?;
                    let ub = self
                        .val(ctx.m.op_operand(op, 1))?
                        .as_int()
                        .ok_or_else(|| err("bad ub"))?;
                    let step = self
                        .val(ctx.m.op_operand(op, 2))?
                        .as_int()
                        .ok_or_else(|| err("bad step"))?;
                    if step <= 0 {
                        return Err(err("non-positive loop step"));
                    }
                    ctx.stats.arith_ops += 1;
                    let inits: Vec<RtValue> = ctx.m.op_operands(op)[3..]
                        .iter()
                        .map(|&v| self.val(v))
                        .collect::<Result<_, _>>()?;
                    if lb >= ub {
                        self.assign_results(ctx.m, op, &inits);
                    } else {
                        let m = ctx.m;
                        let body = m.op_region_block(op, 0);
                        let args = m.block_args(body);
                        self.bind(args[0], RtValue::Int(lb));
                        for (i, &a) in args[1..].iter().enumerate() {
                            self.bind(a, inits[i]);
                        }
                        self.frames.push(Frame::Loop {
                            op,
                            iv: lb,
                            ub,
                            step,
                        });
                        self.frames.push(Frame::Block {
                            block: body,
                            idx: 0,
                        });
                    }
                }
                "func.call" => {
                    let scope = enclosing_module(ctx.m, op);
                    let callee = sycl_mlir_dialects::func::resolve_callee(ctx.m, op, scope)
                        .ok_or_else(|| err("unresolved call"))?;
                    let args = self.vals(ctx.m, op)?;
                    let m = ctx.m;
                    let entry = m.op_region_block(callee, 0);
                    for (i, &p) in m.block_args(entry).iter().enumerate() {
                        self.bind(p, args[i]);
                    }
                    self.frames.push(Frame::Call { op });
                    self.frames.push(Frame::Block {
                        block: entry,
                        idx: 0,
                    });
                }
                "sycl.group.barrier" => {
                    ctx.stats.barriers += 1;
                    return Ok(Stop::Barrier);
                }
                _ => self.exec_simple(ctx, op, &name)?,
            }
        }
    }

    /// Execute a non-control-flow op.
    fn exec_simple(&mut self, ctx: &mut ExecCtx<'_>, op: OpId, name: &str) -> Result<(), SimError> {
        let m = ctx.m;
        match name {
            "arith.constant" => {
                let attr = m
                    .attr_by_id(op, ctx.keys.value)
                    .ok_or_else(|| err("constant without value"))?
                    .clone();
                let ty = m.value_type(m.op_result(op, 0));
                let v = match (&attr, ty.kind()) {
                    (sycl_mlir_ir::Attribute::Int(x), _) => RtValue::Int(*x),
                    (sycl_mlir_ir::Attribute::Bool(b), _) => RtValue::Int(*b as i64),
                    (sycl_mlir_ir::Attribute::Float(f), TypeKind::F32) => RtValue::F32(*f as f32),
                    (sycl_mlir_ir::Attribute::Float(f), _) => RtValue::F64(*f),
                    (
                        sycl_mlir_ir::Attribute::DenseF64(_) | sycl_mlir_ir::Attribute::DenseI64(_),
                        TypeKind::MemRef { .. },
                    ) => {
                        let mr = self.materialize_dense(ctx, op, &attr)?;
                        RtValue::MemRef(mr)
                    }
                    _ => return Err(err("unsupported constant kind")),
                };
                self.bind(m.op_result(op, 0), v);
                Ok(())
            }
            "arith.addi" | "arith.subi" | "arith.muli" | "arith.divsi" | "arith.remsi"
            | "arith.andi" | "arith.ori" | "arith.xori" | "arith.minsi" | "arith.maxsi" => {
                ctx.stats.arith_ops += 1;
                let l = self
                    .val(m.op_operand(op, 0))?
                    .as_int()
                    .ok_or_else(|| err("int op on non-int"))?;
                let r = self
                    .val(m.op_operand(op, 1))?
                    .as_int()
                    .ok_or_else(|| err("int op on non-int"))?;
                let out = match name {
                    "arith.addi" => l.wrapping_add(r),
                    "arith.subi" => l.wrapping_sub(r),
                    "arith.muli" => l.wrapping_mul(r),
                    "arith.divsi" => {
                        if r == 0 {
                            return Err(err("division by zero"));
                        }
                        l.wrapping_div(r)
                    }
                    "arith.remsi" => {
                        if r == 0 {
                            return Err(err("remainder by zero"));
                        }
                        l.wrapping_rem(r)
                    }
                    "arith.andi" => l & r,
                    "arith.ori" => l | r,
                    "arith.xori" => l ^ r,
                    "arith.minsi" => l.min(r),
                    _ => l.max(r),
                };
                self.bind(m.op_result(op, 0), RtValue::Int(out));
                Ok(())
            }
            "arith.addf" | "arith.subf" | "arith.mulf" | "arith.divf" | "arith.minf"
            | "arith.maxf" => {
                ctx.stats.arith_ops += 1;
                let lv = self.val(m.op_operand(op, 0))?;
                let rv = self.val(m.op_operand(op, 1))?;
                let l = lv.as_f64().ok_or_else(|| err("float op on non-float"))?;
                let r = rv.as_f64().ok_or_else(|| err("float op on non-float"))?;
                let out = match name {
                    "arith.addf" => l + r,
                    "arith.subf" => l - r,
                    "arith.mulf" => l * r,
                    "arith.divf" => l / r,
                    "arith.minf" => l.min(r),
                    _ => l.max(r),
                };
                let res = match lv {
                    RtValue::F32(_) => RtValue::F32(out as f32),
                    _ => RtValue::F64(out),
                };
                self.bind(m.op_result(op, 0), res);
                Ok(())
            }
            "arith.negf" => {
                ctx.stats.arith_ops += 1;
                let v = self.val(m.op_operand(op, 0))?;
                let res = match v {
                    RtValue::F32(x) => RtValue::F32(-x),
                    RtValue::F64(x) => RtValue::F64(-x),
                    _ => return Err(err("negf on non-float")),
                };
                self.bind(m.op_result(op, 0), res);
                Ok(())
            }
            "arith.cmpi" => {
                ctx.stats.arith_ops += 1;
                let l = self
                    .val(m.op_operand(op, 0))?
                    .as_int()
                    .ok_or_else(|| err("cmpi on non-int"))?;
                let r = self
                    .val(m.op_operand(op, 1))?
                    .as_int()
                    .ok_or_else(|| err("cmpi on non-int"))?;
                let pred = m
                    .attr_by_id(op, ctx.keys.predicate)
                    .and_then(|a| a.as_str())
                    .unwrap_or("eq");
                let out = match pred {
                    "eq" => l == r,
                    "ne" => l != r,
                    "slt" => l < r,
                    "sle" => l <= r,
                    "sgt" => l > r,
                    _ => l >= r,
                };
                self.bind(m.op_result(op, 0), RtValue::Int(out as i64));
                Ok(())
            }
            "arith.cmpf" => {
                ctx.stats.arith_ops += 1;
                let l = self
                    .val(m.op_operand(op, 0))?
                    .as_f64()
                    .ok_or_else(|| err("cmpf on non-float"))?;
                let r = self
                    .val(m.op_operand(op, 1))?
                    .as_f64()
                    .ok_or_else(|| err("cmpf on non-float"))?;
                let pred = m
                    .attr_by_id(op, ctx.keys.predicate)
                    .and_then(|a| a.as_str())
                    .unwrap_or("eq");
                let out = match pred {
                    "eq" => l == r,
                    "ne" => l != r,
                    "slt" => l < r,
                    "sle" => l <= r,
                    "sgt" => l > r,
                    _ => l >= r,
                };
                self.bind(m.op_result(op, 0), RtValue::Int(out as i64));
                Ok(())
            }
            "arith.select" => {
                ctx.stats.arith_ops += 1;
                let c = self
                    .val(m.op_operand(op, 0))?
                    .as_bool()
                    .ok_or_else(|| err("select cond"))?;
                let v = if c {
                    self.val(m.op_operand(op, 1))?
                } else {
                    self.val(m.op_operand(op, 2))?
                };
                self.bind(m.op_result(op, 0), v);
                Ok(())
            }
            "arith.index_cast" | "arith.extsi" | "arith.trunci" => {
                let v = self.val(m.op_operand(op, 0))?;
                self.bind(m.op_result(op, 0), v);
                Ok(())
            }
            "arith.sitofp" => {
                ctx.stats.arith_ops += 1;
                let v = self
                    .val(m.op_operand(op, 0))?
                    .as_int()
                    .ok_or_else(|| err("sitofp"))?;
                let ty = m.value_type(m.op_result(op, 0));
                let res = match ty.kind() {
                    TypeKind::F32 => RtValue::F32(v as f32),
                    _ => RtValue::F64(v as f64),
                };
                self.bind(m.op_result(op, 0), res);
                Ok(())
            }
            "arith.fptosi" => {
                ctx.stats.arith_ops += 1;
                let v = self
                    .val(m.op_operand(op, 0))?
                    .as_f64()
                    .ok_or_else(|| err("fptosi"))?;
                self.bind(m.op_result(op, 0), RtValue::Int(v as i64));
                Ok(())
            }
            "arith.truncf" => {
                let v = self
                    .val(m.op_operand(op, 0))?
                    .as_f64()
                    .ok_or_else(|| err("truncf"))?;
                self.bind(m.op_result(op, 0), RtValue::F32(v as f32));
                Ok(())
            }
            "arith.extf" => {
                let v = self
                    .val(m.op_operand(op, 0))?
                    .as_f64()
                    .ok_or_else(|| err("extf"))?;
                self.bind(m.op_result(op, 0), RtValue::F64(v));
                Ok(())
            }
            _ if name.starts_with("math.") => {
                ctx.stats.arith_ops += 4; // transcendental ops are pricier
                let xv = self.val(m.op_operand(op, 0))?;
                let x = xv.as_f64().ok_or_else(|| err("math on non-float"))?;
                let out = if name == "math.powf" {
                    let y = self
                        .val(m.op_operand(op, 1))?
                        .as_f64()
                        .ok_or_else(|| err("powf"))?;
                    x.powf(y)
                } else {
                    sycl_mlir_dialects::math::eval_unary(name, x)
                        .ok_or_else(|| err(format!("unknown math op {name}")))?
                };
                let res = match xv {
                    RtValue::F32(_) => RtValue::F32(out as f32),
                    _ => RtValue::F64(out),
                };
                self.bind(m.op_result(op, 0), res);
                Ok(())
            }
            "memref.alloca" => {
                let ty = m.value_type(m.op_result(op, 0));
                let (mem, shape, rank) = self.alloc_for(ctx, &ty)?;
                self.bind(
                    m.op_result(op, 0),
                    RtValue::MemRef(MemRefVal {
                        mem,
                        offset: 0,
                        shape,
                        rank,
                        space: Space::Private,
                    }),
                );
                Ok(())
            }
            "sycl.local.alloca" => {
                let mr = if let Some(existing) = ctx.wg.local_allocs.get(&op) {
                    *existing
                } else {
                    let ty = m.value_type(m.op_result(op, 0));
                    let (mem, shape, rank) = self.alloc_for(ctx, &ty)?;
                    let mr = MemRefVal {
                        mem,
                        offset: 0,
                        shape,
                        rank,
                        space: Space::Local,
                    };
                    ctx.wg.local_allocs.insert(op, mr);
                    mr
                };
                self.bind(m.op_result(op, 0), RtValue::MemRef(mr));
                Ok(())
            }
            "memref.load" | "affine.load" => {
                let mr = self
                    .val(m.op_operand(op, 0))?
                    .as_memref()
                    .ok_or_else(|| err("load from non-memref"))?;
                let idx: Vec<i64> = m.op_operands(op)[1..]
                    .iter()
                    .map(|&v| {
                        self.val(v)
                            .and_then(|x| x.as_int().ok_or_else(|| err("non-int index")))
                    })
                    .collect::<Result<_, _>>()?;
                let addr = mr.linearize(&idx);
                self.mem_event(ctx, op, &mr, addr, false)?;
                let v = ctx.pool.try_load(mr.mem, addr)?;
                self.bind(m.op_result(op, 0), v);
                Ok(())
            }
            "memref.store" | "affine.store" => {
                let v = self.val(m.op_operand(op, 0))?;
                let mr = self
                    .val(m.op_operand(op, 1))?
                    .as_memref()
                    .ok_or_else(|| err("store to non-memref"))?;
                let idx: Vec<i64> = m.op_operands(op)[2..]
                    .iter()
                    .map(|&x| {
                        self.val(x)
                            .and_then(|y| y.as_int().ok_or_else(|| err("non-int index")))
                    })
                    .collect::<Result<_, _>>()?;
                let addr = mr.linearize(&idx);
                self.mem_event(ctx, op, &mr, addr, true)?;
                ctx.pool.try_store(mr.mem, addr, v)?;
                Ok(())
            }
            "memref.cast" => {
                let mr = self
                    .val(m.op_operand(op, 0))?
                    .as_memref()
                    .ok_or_else(|| err("cast of non-memref"))?;
                self.bind(m.op_result(op, 0), RtValue::MemRef(mr));
                Ok(())
            }
            "sycl.id.constructor" | "sycl.range.constructor" => {
                ctx.stats.arith_ops += 1;
                let mut data = [0_i64; 3];
                for (i, &v) in m.op_operands(op).iter().enumerate() {
                    data[i] = self.val(v)?.as_int().ok_or_else(|| err("id component"))?;
                }
                let rank = m.op_operands(op).len() as u32;
                self.bind(m.op_result(op, 0), RtValue::Vec(VecVal { data, rank }));
                Ok(())
            }
            "sycl.nd_range.constructor" => {
                let g = self
                    .val(m.op_operand(op, 0))?
                    .as_vec()
                    .ok_or_else(|| err("nd_range global"))?;
                let l = self
                    .val(m.op_operand(op, 1))?
                    .as_vec()
                    .ok_or_else(|| err("nd_range local"))?;
                self.bind(m.op_result(op, 0), RtValue::NdRange(g, l));
                Ok(())
            }
            "sycl.id.get" | "sycl.range.get" => {
                ctx.stats.arith_ops += 1;
                let v = self
                    .val(m.op_operand(op, 0))?
                    .as_vec()
                    .ok_or_else(|| err("id.get"))?;
                let d = self.dim_operand(m, op)?;
                self.bind(m.op_result(op, 0), RtValue::Int(v.data[d]));
                Ok(())
            }
            "sycl.range.size" => {
                ctx.stats.arith_ops += 1;
                let v = self
                    .val(m.op_operand(op, 0))?
                    .as_vec()
                    .ok_or_else(|| err("range.size"))?;
                let size: i64 = v.data[..v.rank as usize].iter().product();
                self.bind(m.op_result(op, 0), RtValue::Int(size));
                Ok(())
            }
            "sycl.item.get_id" | "sycl.nd_item.get_global_id" => {
                ctx.stats.arith_ops += 1;
                let d = self.dim_operand(m, op)?;
                let v = self.item.global_id[d];
                self.bind(m.op_result(op, 0), RtValue::Int(v));
                Ok(())
            }
            "sycl.nd_item.get_local_id" => {
                ctx.stats.arith_ops += 1;
                let d = self.dim_operand(m, op)?;
                self.bind(m.op_result(op, 0), RtValue::Int(self.item.local_id[d]));
                Ok(())
            }
            "sycl.nd_item.get_group_id" | "sycl.group.get_id" => {
                ctx.stats.arith_ops += 1;
                let d = self.dim_operand(m, op)?;
                self.bind(m.op_result(op, 0), RtValue::Int(self.item.group_id[d]));
                Ok(())
            }
            "sycl.item.get_range" | "sycl.nd_item.get_global_range" => {
                ctx.stats.arith_ops += 1;
                let d = self.dim_operand(m, op)?;
                self.bind(m.op_result(op, 0), RtValue::Int(self.item.global_range[d]));
                Ok(())
            }
            "sycl.nd_item.get_local_range" | "sycl.group.get_local_range" => {
                ctx.stats.arith_ops += 1;
                let d = self.dim_operand(m, op)?;
                self.bind(m.op_result(op, 0), RtValue::Int(self.item.local_range[d]));
                Ok(())
            }
            "sycl.nd_item.get_group_range" => {
                ctx.stats.arith_ops += 1;
                let d = self.dim_operand(m, op)?;
                self.bind(m.op_result(op, 0), RtValue::Int(self.item.group_range(d)));
                Ok(())
            }
            "sycl.item.get_linear_id" | "sycl.nd_item.get_global_linear_id" => {
                ctx.stats.arith_ops += 1;
                self.bind(
                    m.op_result(op, 0),
                    RtValue::Int(self.item.global_linear_id()),
                );
                Ok(())
            }
            "sycl.nd_item.get_local_linear_id" => {
                ctx.stats.arith_ops += 1;
                self.bind(
                    m.op_result(op, 0),
                    RtValue::Int(self.item.local_linear_id()),
                );
                Ok(())
            }
            "sycl.nd_item.get_group" => {
                self.bind(m.op_result(op, 0), RtValue::Item(self.item));
                Ok(())
            }
            "sycl.accessor.subscript" => {
                ctx.stats.arith_ops += 1;
                let acc = self
                    .val(m.op_operand(op, 0))?
                    .as_accessor()
                    .ok_or_else(|| err("subscript of non-accessor"))?;
                let id = self
                    .val(m.op_operand(op, 1))?
                    .as_vec()
                    .ok_or_else(|| err("subscript id"))?;
                let offset = acc.linearize(&id.data[..id.rank as usize]);
                let space = if acc.constant {
                    Space::Constant
                } else {
                    Space::Global
                };
                self.bind(
                    m.op_result(op, 0),
                    RtValue::MemRef(MemRefVal {
                        mem: acc.mem,
                        offset,
                        shape: [-1, 1, 1],
                        rank: 1,
                        space,
                    }),
                );
                Ok(())
            }
            "sycl.accessor.get_range" => {
                ctx.stats.arith_ops += 1;
                let acc = self
                    .val(m.op_operand(op, 0))?
                    .as_accessor()
                    .ok_or_else(|| err("get_range"))?;
                let d = self.dim_operand(m, op)?;
                self.bind(m.op_result(op, 0), RtValue::Int(acc.range[d]));
                Ok(())
            }
            "sycl.accessor.base" => {
                ctx.stats.arith_ops += 1;
                let acc = self
                    .val(m.op_operand(op, 0))?
                    .as_accessor()
                    .ok_or_else(|| err("accessor.base"))?;
                let base = ((acc.mem.0 as i64) << 32) | acc.linearize(&[0, 0, 0]);
                self.bind(m.op_result(op, 0), RtValue::Int(base));
                Ok(())
            }
            "llvm.undef" => {
                self.bind(m.op_result(op, 0), RtValue::Int(0));
                Ok(())
            }
            other => Err(err(format!("op `{other}` is not executable on the device"))),
        }
    }

    fn dim_operand(&self, m: &Module, op: OpId) -> Result<usize, SimError> {
        let d = self
            .val(m.op_operand(op, 1))?
            .as_int()
            .ok_or_else(|| err("non-constant dimension operand"))?;
        if !(0..3).contains(&d) {
            return Err(err(format!("dimension {d} out of range")));
        }
        Ok(d as usize)
    }

    fn alloc_for(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        ty: &sycl_mlir_ir::Type,
    ) -> Result<(crate::memory::MemId, [i64; 3], u32), SimError> {
        let shape_v = ty
            .memref_shape()
            .ok_or_else(|| err("alloca of non-memref"))?
            .to_vec();
        let elem = ty
            .memref_elem()
            .ok_or_else(|| err("alloca of non-memref"))?;
        let len: i64 = shape_v.iter().product();
        if let Some(meter) = ctx.limits.as_deref_mut() {
            let bytes = match crate::memory::dtype_of(&elem) {
                crate::memory::Dtype::F32 | crate::memory::Dtype::I32 => 4,
                _ => 8,
            } * len.max(0) as u64;
            meter.charge_mem(bytes)?;
        }
        let mem = ctx.pool.alloc_zeroed(&elem, len.max(0) as usize);
        let mut shape = [1_i64; 3];
        for (i, &s) in shape_v.iter().enumerate() {
            shape[i] = s;
        }
        Ok((mem, shape, shape_v.len() as u32))
    }

    fn materialize_dense(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        op: OpId,
        attr: &sycl_mlir_ir::Attribute,
    ) -> Result<MemRefVal, SimError> {
        if let Some(existing) = ctx.const_pool.get(&op) {
            return Ok(*existing);
        }
        let ty = ctx.m.value_type(ctx.m.op_result(op, 0));
        let elem = ty
            .memref_elem()
            .ok_or_else(|| err("dense constant must be memref"))?;
        let data = match (attr, elem.kind()) {
            (sycl_mlir_ir::Attribute::DenseF64(v), TypeKind::F32) => {
                crate::memory::DataVec::F32(v.iter().map(|&x| x as f32).collect())
            }
            (sycl_mlir_ir::Attribute::DenseF64(v), _) => crate::memory::DataVec::F64(v.clone()),
            (sycl_mlir_ir::Attribute::DenseI64(v), TypeKind::Int(w)) if *w <= 32 => {
                crate::memory::DataVec::I32(v.iter().map(|&x| x as i32).collect())
            }
            (sycl_mlir_ir::Attribute::DenseI64(v), _) => crate::memory::DataVec::I64(v.clone()),
            _ => return Err(err("unsupported dense constant")),
        };
        if let Some(meter) = ctx.limits.as_deref_mut() {
            meter.charge_mem((data.len() * data.elem_bytes()) as u64)?;
        }
        let mem = ctx.pool.alloc(data);
        let shape_v = ty.memref_shape().unwrap();
        let mut shape = [1_i64; 3];
        for (i, &s) in shape_v.iter().enumerate() {
            shape[i] = s;
        }
        let mr = MemRefVal {
            mem,
            offset: 0,
            shape,
            rank: shape_v.len() as u32,
            space: Space::Constant,
        };
        ctx.const_pool.insert(op, mr);
        Ok(mr)
    }

    /// Record the cost of a memory access.
    fn mem_event(
        &mut self,
        ctx: &mut ExecCtx<'_>,
        op: OpId,
        mr: &MemRefVal,
        addr: i64,
        _is_store: bool,
    ) -> Result<(), SimError> {
        match mr.space {
            Space::Private => ctx.stats.private_accesses += 1,
            Space::Constant => ctx.stats.constant_accesses += 1,
            Space::Local => ctx.stats.local_accesses += 1,
            Space::Global => {
                ctx.stats.global_accesses += 1;
                let instance = {
                    let slot = &mut self.visits[op.0 as usize];
                    *slot += 1;
                    *slot
                };
                let subgroup = (self.item.local_linear_id() / ctx.cost.subgroup_size as i64) as u32;
                let bytes = ctx.pool.data(mr.mem).elem_bytes() as i64;
                let segment = ((mr.mem.0 as u64) << 40)
                    | ((addr * bytes) / ctx.cost.transaction_bytes as i64) as u64;
                if ctx.wg.record((op.0, instance, subgroup), segment) {
                    ctx.stats.global_transactions += 1;
                }
            }
        }
        Ok(())
    }
}

pub(crate) fn enclosing_module(m: &Module, op: OpId) -> OpId {
    let mut cur = op;
    while let Some(p) = m.op_parent_op(cur) {
        if m.op_is(p, "builtin.module") {
            return p;
        }
        cur = p;
    }
    m.top()
}
