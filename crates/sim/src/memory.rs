//! Device memory: typed buffers addressed by [`MemId`].

use crate::interp::SimError;
use crate::value::RtValue;

/// Handle to one allocation in a [`MemoryPool`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MemId(pub u32);

/// Typed storage of one allocation.
#[derive(Clone, Debug, PartialEq)]
pub enum DataVec {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit integers (and narrower).
    I32(Vec<i32>),
    /// 64-bit integers (plus `index` and wider).
    I64(Vec<i64>),
}

impl DataVec {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            DataVec::F32(v) => v.len(),
            DataVec::F64(v) => v.len(),
            DataVec::I32(v) => v.len(),
            DataVec::I64(v) => v.len(),
        }
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Element size in bytes (drives transaction coalescing).
    pub fn elem_bytes(&self) -> usize {
        match self {
            DataVec::F32(_) | DataVec::I32(_) => 4,
            DataVec::F64(_) | DataVec::I64(_) => 8,
        }
    }

    /// The element at `i` as a runtime value.
    pub fn get(&self, i: usize) -> RtValue {
        match self {
            DataVec::F32(v) => RtValue::F32(v[i]),
            DataVec::F64(v) => RtValue::F64(v[i]),
            DataVec::I32(v) => RtValue::Int(v[i] as i64),
            DataVec::I64(v) => RtValue::Int(v[i]),
        }
    }

    /// Store `value` at `i`, coercing between float widths; panics on an
    /// int/float mismatch.
    pub fn set(&mut self, i: usize, value: RtValue) {
        match (self, value) {
            (DataVec::F32(v), RtValue::F32(x)) => v[i] = x,
            (DataVec::F32(v), RtValue::F64(x)) => v[i] = x as f32,
            (DataVec::F64(v), RtValue::F64(x)) => v[i] = x,
            (DataVec::F64(v), RtValue::F32(x)) => v[i] = x as f64,
            (DataVec::I32(v), RtValue::Int(x)) => v[i] = x as i32,
            (DataVec::I64(v), RtValue::Int(x)) => v[i] = x,
            (slot, v) => panic!("type-mismatched store of {v:?} into {slot:?}"),
        }
    }

    /// Like [`DataVec::set`], but an int/float mismatch is a structured
    /// [`SimError`] (same text as the panic) instead of a panic — the
    /// form kernel-reachable stores use.
    pub(crate) fn try_set(&mut self, i: usize, value: RtValue) -> Result<(), SimError> {
        match (&mut *self, value) {
            (DataVec::F32(v), RtValue::F32(x)) => v[i] = x,
            (DataVec::F32(v), RtValue::F64(x)) => v[i] = x as f32,
            (DataVec::F64(v), RtValue::F64(x)) => v[i] = x,
            (DataVec::F64(v), RtValue::F32(x)) => v[i] = x as f64,
            (DataVec::I32(v), RtValue::Int(x)) => v[i] = x as i32,
            (DataVec::I64(v), RtValue::Int(x)) => v[i] = x,
            (slot, v) => {
                return Err(SimError::msg(format!(
                    "type-mismatched store of {v:?} into {slot:?}"
                )))
            }
        }
        Ok(())
    }
}

/// Storage class an MLIR element type maps to — the single authoritative
/// mapping shared by [`MemoryPool::alloc_zeroed`] and the plan engine's
/// scratch arenas, so both engines always allocate the same [`DataVec`]
/// variant for a given element type.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Dtype {
    F32,
    F64,
    I32,
    I64,
}

/// The storage class of the MLIR type `elem` (f32/f64/i32/i64/index/i1).
pub(crate) fn dtype_of(elem: &sycl_mlir_ir::Type) -> Dtype {
    match elem.kind() {
        sycl_mlir_ir::TypeKind::F32 => Dtype::F32,
        sycl_mlir_ir::TypeKind::F64 => Dtype::F64,
        sycl_mlir_ir::TypeKind::Int(w) if *w <= 32 => Dtype::I32,
        _ => Dtype::I64,
    }
}

/// The storage class of an existing buffer.
pub(crate) fn dtype_of_data(data: &DataVec) -> Dtype {
    match data {
        DataVec::F32(_) => Dtype::F32,
        DataVec::F64(_) => Dtype::F64,
        DataVec::I32(_) => Dtype::I32,
        DataVec::I64(_) => Dtype::I64,
    }
}

/// Zero-filled storage for `len` elements of storage class `dt`.
pub(crate) fn zeroed_data(dt: Dtype, len: usize) -> DataVec {
    match dt {
        Dtype::F32 => DataVec::F32(vec![0.0; len]),
        Dtype::F64 => DataVec::F64(vec![0.0; len]),
        Dtype::I32 => DataVec::I32(vec![0; len]),
        Dtype::I64 => DataVec::I64(vec![0; len]),
    }
}

/// All device allocations of one simulation.
#[derive(Default, Debug)]
pub struct MemoryPool {
    buffers: Vec<DataVec>,
}

impl MemoryPool {
    /// An empty pool.
    pub fn new() -> MemoryPool {
        MemoryPool::default()
    }

    /// Allocate and take ownership of `data`.
    pub fn alloc(&mut self, data: DataVec) -> MemId {
        let id = MemId(self.buffers.len() as u32);
        self.buffers.push(data);
        id
    }

    /// Allocate a zero-filled buffer of `len` elements shaped like `proto`.
    pub fn alloc_zeroed_like(&mut self, proto: &DataVec, len: usize) -> MemId {
        let data = match proto {
            DataVec::F32(_) => DataVec::F32(vec![0.0; len]),
            DataVec::F64(_) => DataVec::F64(vec![0.0; len]),
            DataVec::I32(_) => DataVec::I32(vec![0; len]),
            DataVec::I64(_) => DataVec::I64(vec![0; len]),
        };
        self.alloc(data)
    }

    /// Allocate zero-filled storage for `len` elements of the MLIR type
    /// `elem` (f32/f64/i32/i64/index/i1).
    pub fn alloc_zeroed(&mut self, elem: &sycl_mlir_ir::Type, len: usize) -> MemId {
        self.alloc(zeroed_data(dtype_of(elem), len))
    }

    /// Mutable access to every buffer, in [`MemId`] order. Used by the
    /// parallel launch path to build its shared buffer views.
    pub(crate) fn buffers_mut(&mut self) -> &mut [DataVec] {
        &mut self.buffers
    }

    /// Borrow one allocation's storage.
    pub fn data(&self, id: MemId) -> &DataVec {
        &self.buffers[id.0 as usize]
    }

    /// Mutably borrow one allocation's storage.
    pub fn data_mut(&mut self, id: MemId) -> &mut DataVec {
        &mut self.buffers[id.0 as usize]
    }

    /// Bounds check with the same panic message as the parallel path's
    /// `SharedPool`, so an out-of-bounds kernel fails with identical text
    /// under every engine and scheduler mode.
    #[inline]
    fn check(&self, id: MemId, index: i64) {
        let len = self.buffers[id.0 as usize].len();
        assert!(
            (index as usize) < len,
            "device memory access out of bounds: index {index} of buffer {} (len {len})",
            id.0,
        );
    }

    /// Load the element at `index` of allocation `id`.
    pub fn load(&self, id: MemId, index: i64) -> RtValue {
        self.check(id, index);
        self.buffers[id.0 as usize].get(index as usize)
    }

    /// Store `value` at `index` of allocation `id`.
    pub fn store(&mut self, id: MemId, index: i64, value: RtValue) {
        self.check(id, index);
        self.buffers[id.0 as usize].set(index as usize, value);
    }

    /// Bounds check as a structured error, with text identical to
    /// [`MemoryPool::check`]'s panic — so an out-of-bounds kernel fails
    /// with the same message under every engine and scheduler mode.
    #[inline]
    fn check_kernel(&self, id: MemId, index: i64) -> Result<(), SimError> {
        let len = self.buffers[id.0 as usize].len();
        if index < 0 || index as usize >= len {
            return Err(SimError::msg(format!(
                "device memory access out of bounds: index {index} of buffer {} (len {len})",
                id.0,
            )));
        }
        Ok(())
    }

    /// Like [`MemoryPool::load`], but out-of-bounds is a structured
    /// [`SimError`] — the form kernel-reachable accesses use, so hostile
    /// input cannot panic the host.
    pub fn try_load(&self, id: MemId, index: i64) -> Result<RtValue, SimError> {
        self.check_kernel(id, index)?;
        Ok(self.buffers[id.0 as usize].get(index as usize))
    }

    /// Like [`MemoryPool::store`], but out-of-bounds and type-mismatch
    /// are structured [`SimError`]s — the form kernel-reachable accesses
    /// use.
    pub fn try_store(&mut self, id: MemId, index: i64, value: RtValue) -> Result<(), SimError> {
        self.check_kernel(id, index)?;
        self.buffers[id.0 as usize].try_set(index as usize, value)
    }

    /// Number of allocations made so far.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Whether no allocation has been made.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_dtypes() {
        let mut pool = MemoryPool::new();
        let f = pool.alloc(DataVec::F32(vec![0.0; 4]));
        let d = pool.alloc(DataVec::F64(vec![0.0; 4]));
        let i = pool.alloc(DataVec::I32(vec![0; 4]));
        let l = pool.alloc(DataVec::I64(vec![0; 4]));
        pool.store(f, 1, RtValue::F32(1.5));
        pool.store(d, 2, RtValue::F64(2.5));
        pool.store(i, 3, RtValue::Int(-7));
        pool.store(l, 0, RtValue::Int(1 << 40));
        assert_eq!(pool.load(f, 1), RtValue::F32(1.5));
        assert_eq!(pool.load(d, 2), RtValue::F64(2.5));
        assert_eq!(pool.load(i, 3), RtValue::Int(-7));
        assert_eq!(pool.load(l, 0), RtValue::Int(1 << 40));
        assert_eq!(pool.data(f).elem_bytes(), 4);
        assert_eq!(pool.data(l).elem_bytes(), 8);
    }

    #[test]
    #[should_panic(expected = "type-mismatched")]
    fn mismatched_store_panics() {
        let mut pool = MemoryPool::new();
        let f = pool.alloc(DataVec::F32(vec![0.0; 1]));
        pool.store(f, 0, RtValue::Int(1));
    }
}
