//! # sycl-mlir-sim — an ND-range GPU simulator executing device MLIR
//!
//! The substitute for the paper's Intel Data Center GPU Max 1100 (§VIII):
//! a simulator that *runs* device kernels through a resumable interpreter
//! and charges an analytic cost model. It models the parts of the machine
//! the paper's optimizations act on:
//!
//! * an **ND-range execution model** — work-groups of work-items with
//!   co-operative scheduling around `sycl.group.barrier` (including
//!   detection of the divergent-barrier deadlock §V-C worries about);
//! * a **memory hierarchy** — global memory with per-sub-group transaction
//!   coalescing, fast work-group local memory, private memory and a
//!   constant cache (for host-propagated constant arrays, §VII-B);
//! * **launch costs** — a fixed host-side cost plus a per-argument cost
//!   (the quantity dead-argument elimination reduces) and a one-time JIT
//!   cost for SSCP-style flows (AdaptiveCpp, §IX).
//!
//! Simulated time is deterministic, so the harness needs no warm-up/repeat
//! protocol; EXPERIMENTS.md documents this deviation from §VIII.

pub mod cost;
pub mod device;
pub mod interp;
pub mod memory;
pub mod value;

pub use cost::{CostModel, ExecStats};
pub use device::{launch_kernel, Device, NdRangeSpec, SimError};
pub use memory::{DataVec, MemId, MemoryPool};
pub use value::{AccessorVal, MemRefVal, NdItemVal, RtValue, Space};
