//! # sycl-mlir-sim — an ND-range GPU simulator executing device MLIR
//!
//! The substitute for the paper's Intel Data Center GPU Max 1100 (§VIII):
//! a simulator that *runs* device kernels through a resumable interpreter
//! and charges an analytic cost model. It models the parts of the machine
//! the paper's optimizations act on:
//!
//! * an **ND-range execution model** — work-groups of work-items with
//!   co-operative scheduling around `sycl.group.barrier` (including
//!   detection of the divergent-barrier deadlock §V-C worries about);
//! * a **memory hierarchy** — global memory with per-sub-group transaction
//!   coalescing, fast work-group local memory, private memory and a
//!   constant cache (for host-propagated constant arrays, §VII-B);
//! * **launch costs** — a fixed host-side cost plus a per-argument cost
//!   (the quantity dead-argument elimination reduces) and a one-time JIT
//!   cost for SSCP-style flows (AdaptiveCpp, §IX).
//!
//! Simulated time is deterministic, so the harness needs no warm-up/repeat
//! protocol; EXPERIMENTS.md documents this deviation from §VIII.
//!
//! ## Execution engines and tiers
//!
//! The simulator ships two interchangeable engines behind
//! [`device::Engine`], and the fast engine itself is tiered:
//!
//! * **Tree walk** ([`interp`]) — the reference implementation. A resumable
//!   interpreter directly over the structured IR: an explicit frame stack
//!   per work-item, `ValueId`-indexed environment, string-dispatched
//!   opcodes. Simple, obviously faithful to the IR, and the behavioural
//!   baseline every optimization is differentially tested against.
//! * **Plan** ([`plan`]) — the fast path and the default. A **decode
//!   stage** runs once per launch and lowers the kernel (plus transitively
//!   called functions) into a [`KernelPlan`]: a flat `Vec` of integer-opcode
//!   instructions with operands pre-resolved to dense per-function register
//!   slots, constants pre-materialized, `cmpi`/`cmpf` predicates and
//!   dimension operands pre-parsed, call targets pre-resolved, and
//!   `scf.for`/`scf.if` lowered to explicit jump/loop instructions. A
//!   post-decode **peephole fusion pass** ([`fuse_plan_with`], on by
//!   default, `SYCL_MLIR_SIM_FUSE=off|pairs` to disable or limit) then
//!   rewrites hot instruction windows — pairs (load-accumulate,
//!   `muli`+`addi` linear addressing, compare-branch, accumulate-store)
//!   and bounded three-instruction **chains** (indexed accessor
//!   loads/stores `vec.ctor`+`acc.subscript`+`Load`/`Store`, fused
//!   multiply-accumulate `Load`+`mulf`+`addf`) — into superinstructions
//!   with identical semantics and statistics ([`FuseLevel`]).
//! * **Closure JIT** ([`jit`]) — the hot tier of the plan engine. A
//!   cached plan whose launch count reaches the tier-up threshold
//!   (`SYCL_MLIR_SIM_JIT=on|off|always`,
//!   `SYCL_MLIR_SIM_JIT_THRESHOLD`, default eager) compiles into a
//!   direct-threaded chain of Rust closures — one boxed call per
//!   instruction with operands, constants and call targets captured at
//!   compile time; no codegen, no `unsafe`. The compiled kernel lives
//!   next to its plan in the cross-launch cache and is invalidated by
//!   the same mutation epoch. Bit-identical to both other engines —
//!   outputs, statistics, cycles and error texts — and metered through
//!   the same [`limits`] machinery from per-pc weight tables.
//!
//! **Register allocation** is per function: every SSA value (block argument
//! or op result) receives a dense slot at decode time, and each call frame
//! owns a contiguous window of one flat `Vec<RtValue>` register file —
//! loop back-edges and operand reads are array indexing, no hashing and no
//! allocation.
//!
//! **Threading model of a shared plan:** the decoded [`KernelPlan`] is
//! immutable, `Send + Sync` (compile-time asserted) and shared by
//! reference across all work-items, all work-groups and — with
//! [`Device::threads`] `> 1` — all worker threads of a launch. All mutable
//! state lives outside the plan: each work-item owns its register file,
//! frame stack and per-site visit counters; each worker owns its
//! statistics, its dense-constant materializations and its per-work-group
//! state (`sycl.local.alloca` results, the coalescing tracker). Work-items
//! of a group are co-operatively scheduled between barrier points exactly
//! as under the tree-walk engine; the *work-group* axis is what the
//! [`pool`] scheduler parallelizes, with statistics merged so that results
//! are bit-identical for every worker count.
//!
//! **Launch-level parallelism:** on top of the work-group axis, the
//! scheduler accepts whole **launch graphs** — kernel launches plus the
//! hazard DAG ordering them ([`run_plan_graph`] / [`Device::launch_graph`];
//! [`run_plan_batch`] is the edge-free special case). The runtime's queue
//! exports its full dependency DAG and the executor runs it **out of
//! order**: each launch carries a remaining-dependency counter, the worker
//! that retires a launch's last work-group publishes newly-ready
//! successors to a shared ready set, and work-groups are claimed in
//! per-worker chunks — no level barrier, so one slow launch no longer
//! stalls independent successors (`SYCL_MLIR_SIM_OVERLAP=off` restores
//! the PR 3 level-barrier schedule, `SYCL_MLIR_SIM_BATCH=off` full
//! serialization). The ready set drains by precomputed **critical-path
//! length** (ties broken by submission index; `SYCL_MLIR_SIM_SCHED=fifo`
//! restores the FIFO baseline — results are bit-identical either way),
//! and **host tasks** run as first-class graph nodes ([`HostNode`], one
//! logical work-group, hazard-tracked and metered like any launch;
//! `SYCL_MLIR_SIM_HOST_NODES=off` restores the segmented schedule that
//! drains the graph around each host task). Per-worker scratch arenas are
//! recycled across
//! work-groups and launches to cut private-alloca churn. A `--profile`
//! mode (`SYCL_MLIR_SIM_PROFILE=on`) counts every executed instruction
//! and ranks dataflow-adjacent pairs as fusion candidates
//! ([`Device::profile_report`]).
//!
//! **Cross-launch plan cache:** a [`Device`] memoizes decoded plans keyed
//! by `(module id, kernel)` and validated against the module's mutation
//! epoch, so re-launching an unmutated kernel (the common case in the
//! evaluation's repeat protocol) skips the decode; any IR mutation — e.g.
//! AdaptiveCpp JIT re-specialization — transparently re-decodes.
//!
//! Kernels the decoder does not understand fall back to the tree walk, so
//! the plan engine never has to be complete to be correct. The
//! differential suite (`tests/differential.rs`) holds the two engines to
//! bit-identical outputs, statistics and cycle counts over the entire
//! benchsuite (sequentially and at `threads=4`); `cargo bench -p
//! sycl-mlir-bench --bench engines` measures the speedup
//! (order-of-magnitude on loop-heavy kernels, ~6.5x on the full
//! `repro_all --quick` sweep).

#![deny(missing_docs)]

pub mod cost;
pub mod device;
pub mod interp;
pub mod jit;
pub mod limits;
pub mod memory;
pub mod plan;
pub mod pool;
pub mod value;
pub mod verify;

pub use cost::{CostModel, ExecStats};
pub use device::{
    auto_threads, batch_from_env, fuse_from_env, host_nodes_from_env, jit_from_env,
    jit_threshold_from_env, launch_kernel, launch_plan, overlap_from_env, profile_from_env,
    sched_from_env, threads_from_env, verify_from_env, BatchLaunch, Device, Engine, JitMode,
    NdRangeSpec, SimError, VerifyCounters,
};
pub use interp::LimitKind;
pub use jit::{compile as jit_compile, JitKernel};
pub use limits::{CancelToken, ExecLimits, FaultPlan, FaultSite};
pub use memory::{DataVec, MemId, MemoryPool};
pub use plan::{
    decode_kernel, fuse_plan, fuse_plan_with, profile_summary, DecodeError, FuseLevel, KernelPlan,
};
pub use pool::{
    run_plan_batch, run_plan_graph, run_plan_graph_limited, run_plan_graph_report, run_plan_launch,
    run_plan_launch_limited, GraphOutcome, GraphReport, HostNode, HostView, LaunchDag,
    LaunchStatus, PlanExecCtx, PlanLaunch, PlanPool, SchedPolicy, SharedPool, HOST_NODE_WEIGHT,
};
pub use value::{AccessorVal, MemRefVal, NdItemVal, RtValue, Space};
pub use verify::{verify_plan, PlanFacts, SiteProof, VerifyError, VerifyMode};
