//! Decode-time static verification of kernel plans.
//!
//! Runs once per `(module, kernel)` decode, before fusion, and caches its
//! result next to the plan. Three layers:
//!
//! 1. **Structural verifier** — register def-before-use, per-slot type
//!    consistency, jump targets on instruction boundaries, call arity,
//!    site-id bounds, and no barrier inside a loop whose trip count
//!    depends on a value the verifier cannot classify as launch-uniform.
//!    Violations come back as structured [`VerifyError`]s (never a
//!    panic), so malformed or untrusted programs are rejected before any
//!    work-item executes.
//! 2. **Interval abstract interpreter** — symbolic intervals
//!    ([`sycl_mlir_analysis::interval`]) over the index registers of the
//!    kernel function: constants, nd-range ids bounded by the launch
//!    extent, kernel scalar arguments, and affine combinations thereof.
//!    Accessor subscripts whose address interval is provably inside the
//!    backing buffer are recorded as per-site [`SiteProof`]s; at launch
//!    time [`PlanFacts::instantiate`] resolves the symbols against the
//!    actual geometry/arguments and produces the proven-safe bitset the
//!    executors use to skip per-access bounds checks.
//! 3. **Barrier uniformity** — an IR-level pass (driven from the device,
//!    which still holds the module) fills [`PlanFacts::barriers_uniform`]
//!    from [`sycl_mlir_analysis::uniformity`]; statically-uniform
//!    barriers let the group scheduler skip divergence bookkeeping.
//!
//! The contract of every fact is **may-elide, never may-change**: an
//! unproven site keeps the exact runtime check (and error text and
//! `(launch, group)` position) it always had, and a proven site must be
//! one the check could never fire on — so outputs, statistics and errors
//! are bit-identical with verification on or off.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use sycl_mlir_analysis::interval::{BinOp, Expr, Interval};

use crate::device::NdRangeSpec;
use crate::memory::MemoryPool;
use crate::plan::{for_each_read, DimSrc, FuncPlan, Instr, IntBin, ItemQ, KernelPlan, Reg};
use crate::value::RtValue;

// ----------------------------------------------------------------------
// Knob
// ----------------------------------------------------------------------

/// What to do with the verifier's result: reject, report, or skip.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VerifyMode {
    /// Run the verifier and reject violating plans pre-launch (also
    /// rejects kernels the plan decoder cannot handle, instead of
    /// silently falling back to the tree walk).
    Strict,
    /// Run the verifier, report violations on stderr, then execute
    /// exactly as `Off` would (the default).
    Lint,
    /// Do not run the verifier; legacy runtime-checked execution.
    Off,
}

impl VerifyMode {
    /// Canonical knob spelling, shared by `--verify`, the environment
    /// variable and every report line.
    pub fn name(self) -> &'static str {
        match self {
            VerifyMode::Strict => "strict",
            VerifyMode::Lint => "lint",
            VerifyMode::Off => "off",
        }
    }

    /// Parse a knob spelling; `None` for unknown values (callers decide
    /// whether to warn-and-default or abort).
    pub fn parse(s: &str) -> Option<VerifyMode> {
        match s {
            "strict" => Some(VerifyMode::Strict),
            "lint" | "on" | "1" | "true" => Some(VerifyMode::Lint),
            "off" | "0" | "false" => Some(VerifyMode::Off),
            _ => None,
        }
    }
}

// ----------------------------------------------------------------------
// Errors and facts
// ----------------------------------------------------------------------

/// One structural violation, located by function index and pc.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct VerifyError {
    /// Index of the offending function in [`KernelPlan::funcs`].
    pub func: u32,
    /// Instruction index within the function.
    pub pc: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "func {} pc {}: {}", self.func, self.pc, self.message)
    }
}

/// A symbolic in-bounds proof for one memory-access site: the linearized
/// address of every execution of the site lies in `[lo, hi]`, provided
/// kernel argument `arg` is an accessor of rank `acc_rank`.
#[derive(Clone, Debug)]
pub struct SiteProof {
    /// Kernel-argument index the accessed accessor must come from.
    pub arg: u32,
    /// Accessor rank the proof assumed (the id vector's rank; the
    /// runtime linearization walks `min(id rank, accessor rank)` dims,
    /// so the proof only applies when they agree).
    pub acc_rank: u32,
    /// Symbolic lower bound of the linearized element address.
    pub lo: Expr,
    /// Symbolic upper bound of the linearized element address.
    pub hi: Expr,
}

/// Everything the verifier proved about one decoded plan. Cached in the
/// device's plan cache and shared (via `Arc`) with every launch.
#[derive(Clone, Debug, Default)]
pub struct PlanFacts {
    /// Per-site in-bounds proofs, indexed by memory-site id
    /// (`len == mem_sites`); `None` means unproven — keep the check.
    pub proofs: Vec<Option<SiteProof>>,
    /// Total number of memory-access sites in the plan.
    pub sites_total: u32,
    /// Number of sites with a symbolic in-bounds proof.
    pub sites_proven: u32,
    /// Total `sycl.group.barrier` sites found by the IR uniformity walk.
    pub barriers_total: u32,
    /// Barrier sites the uniformity analysis classified as uniform.
    pub barriers_uniform: u32,
    /// Wall-clock nanoseconds the verifier spent on this plan.
    pub verify_ns: u64,
}

impl PlanFacts {
    /// Whether every barrier in the kernel is statically uniform (true
    /// for barrier-free kernels), letting the group scheduler skip
    /// per-round divergence bookkeeping.
    pub fn all_barriers_uniform(&self) -> bool {
        self.barriers_uniform == self.barriers_total
    }

    /// Resolve the symbolic proofs against one launch's actual geometry,
    /// arguments and memory pool, producing the proven-safe bitset
    /// (bit = site id). Returns an empty slice when nothing could be
    /// proven for this launch — the executors treat that as "check
    /// everything", exactly the legacy path.
    pub fn instantiate(&self, args: &[RtValue], nd: &NdRangeSpec, pool: &MemoryPool) -> Arc<[u64]> {
        if self.sites_proven == 0 {
            return Arc::from(Vec::new());
        }
        let groups = nd.groups();
        let resolve = |s: u32| -> Option<i64> {
            let payload = (s & PAYLOAD_MASK) as usize;
            match s >> TAG_SHIFT {
                TAG_GLOBAL_EXT => nd.global.get(payload).copied(),
                TAG_LOCAL_EXT => nd.local.get(payload).copied(),
                TAG_GROUP_EXT => groups.get(payload).copied(),
                TAG_INT_ARG => args.get(payload)?.as_int(),
                TAG_ACC_RANGE => match args.get(payload >> 2)? {
                    RtValue::Accessor(a) => a.range.get(payload & 3).copied(),
                    _ => None,
                },
                TAG_ACC_OFFSET => match args.get(payload >> 2)? {
                    RtValue::Accessor(a) => a.offset.get(payload & 3).copied(),
                    _ => None,
                },
                _ => None,
            }
        };
        let mut words = vec![0_u64; self.proofs.len().div_ceil(64)];
        let mut any = false;
        for (site, proof) in self.proofs.iter().enumerate() {
            let Some(p) = proof else { continue };
            let Some(RtValue::Accessor(acc)) = args.get(p.arg as usize).copied() else {
                continue;
            };
            if acc.rank != p.acc_rank {
                continue;
            }
            let len = pool.data(acc.mem).len() as i128;
            let (Some(lo), Some(hi)) = (p.lo.eval(&resolve), p.hi.eval(&resolve)) else {
                continue;
            };
            if lo >= 0 && hi < len {
                words[site >> 6] |= 1 << (site & 63);
                any = true;
            }
        }
        if any {
            Arc::from(words)
        } else {
            Arc::from(Vec::new())
        }
    }
}

// ----------------------------------------------------------------------
// Symbol encoding (the caller-side contract of `interval::Expr::sym`)
// ----------------------------------------------------------------------

const TAG_SHIFT: u32 = 24;
const PAYLOAD_MASK: u32 = (1 << TAG_SHIFT) - 1;
/// Global extent along dimension `payload`.
const TAG_GLOBAL_EXT: u32 = 0;
/// Work-group extent along dimension `payload`.
const TAG_LOCAL_EXT: u32 = 1;
/// Work-group count along dimension `payload`.
const TAG_GROUP_EXT: u32 = 2;
/// Integer kernel argument `payload`.
const TAG_INT_ARG: u32 = 3;
/// Accessor range: argument `payload >> 2`, dimension `payload & 3`.
const TAG_ACC_RANGE: u32 = 4;
/// Accessor offset: argument `payload >> 2`, dimension `payload & 3`.
const TAG_ACC_OFFSET: u32 = 5;
/// Largest argument index encodable in an accessor symbol payload.
const MAX_SYM_ARG: u32 = (1 << (TAG_SHIFT - 2)) - 1;

fn sym(tag: u32, payload: u32) -> Expr {
    Expr::sym((tag << TAG_SHIFT) | payload)
}

// ----------------------------------------------------------------------
// Shared instruction walkers
// ----------------------------------------------------------------------

/// Call `f` on every register an instruction *writes* (the write-through
/// fusion variants write their kept intermediates in addition to `dst`).
fn for_each_write(instr: &Instr, mut f: impl FnMut(Reg)) {
    match instr {
        Instr::Const { dst, .. }
        | Instr::ConstDense { dst, .. }
        | Instr::Copy { dst, .. }
        | Instr::BinInt { dst, .. }
        | Instr::BinFloat { dst, .. }
        | Instr::NegF { dst, .. }
        | Instr::CmpI { dst, .. }
        | Instr::CmpF { dst, .. }
        | Instr::Select { dst, .. }
        | Instr::SiToFp { dst, .. }
        | Instr::FpToSi { dst, .. }
        | Instr::TruncF { dst, .. }
        | Instr::ExtF { dst, .. }
        | Instr::Math { dst, .. }
        | Instr::Alloca { dst, .. }
        | Instr::LocalAlloca { dst, .. }
        | Instr::Load { dst, .. }
        | Instr::VecCtor { dst, .. }
        | Instr::NdRangeCtor { dst, .. }
        | Instr::VecGet { dst, .. }
        | Instr::RangeSize { dst, .. }
        | Instr::ItemQuery { dst, .. }
        | Instr::GlobalLinearId { dst }
        | Instr::LocalLinearId { dst }
        | Instr::ItemSelf { dst }
        | Instr::AccSubscript { dst, .. }
        | Instr::AccRange { dst, .. }
        | Instr::AccBase { dst, .. }
        | Instr::LoadBinFloat { dst, .. }
        | Instr::MulAddInt { dst, .. }
        | Instr::AccLoadIndexed { dst, .. }
        | Instr::LoadMulAddF { dst, .. } => f(*dst),
        Instr::ForEnter { iv, .. } | Instr::ForNext { iv, .. } => f(*iv),
        Instr::Call { results, .. } => results.iter().for_each(|&r| f(r)),
        Instr::AccLoadQuad {
            dst, id, view, cst, ..
        } => {
            f(*dst);
            f(*id);
            f(*view);
            f(*cst);
        }
        Instr::AccStoreQuad { id, view, cst, .. } => {
            f(*id);
            f(*view);
            f(*cst);
        }
        Instr::AccLoadIdxWt { dst, id, view, .. } => {
            f(*dst);
            f(*id);
            f(*view);
        }
        Instr::AccStoreIdxWt { id, view, .. } => {
            f(*id);
            f(*view);
        }
        Instr::StoreBinFloatWt { t, .. } => f(*t),
        Instr::Store { .. }
        | Instr::AccStoreIndexed { .. }
        | Instr::StoreBinFloat { .. }
        | Instr::Barrier
        | Instr::Jump { .. }
        | Instr::BranchIfFalse { .. }
        | Instr::CmpIBranch { .. }
        | Instr::Return { .. } => {}
    }
}

/// The memory-access site id an instruction carries, if any.
fn mem_site_of(instr: &Instr) -> Option<u32> {
    match instr {
        Instr::Load { site, .. }
        | Instr::Store { site, .. }
        | Instr::LoadBinFloat { site, .. }
        | Instr::AccLoadIndexed { site, .. }
        | Instr::AccStoreIndexed { site, .. }
        | Instr::LoadMulAddF { site, .. }
        | Instr::StoreBinFloat { site, .. }
        | Instr::AccLoadQuad { site, .. }
        | Instr::AccStoreQuad { site, .. }
        | Instr::AccLoadIdxWt { site, .. }
        | Instr::AccStoreIdxWt { site, .. }
        | Instr::StoreBinFloatWt { site, .. } => Some(*site),
        _ => None,
    }
}

/// Call `f` on every pc target an instruction carries (read-only twin of
/// the fusion pass's remapper).
fn for_each_target_ref(instr: &Instr, mut f: impl FnMut(u32)) {
    match instr {
        Instr::Jump { target }
        | Instr::BranchIfFalse { target, .. }
        | Instr::CmpIBranch { target, .. } => f(*target),
        Instr::ForEnter { exit, .. } => f(*exit),
        Instr::ForNext { body, .. } => f(*body),
        _ => {}
    }
}

/// Whether execution can continue at `pc + 1` after this instruction.
fn falls_through(instr: &Instr) -> bool {
    !matches!(instr, Instr::Jump { .. } | Instr::Return { .. })
}

/// Control-flow successors of the instruction at `pc`.
fn succs(pc: usize, instr: &Instr) -> Vec<usize> {
    match instr {
        Instr::Jump { target } => vec![*target as usize],
        Instr::Return { .. } => vec![],
        Instr::BranchIfFalse { target, .. } | Instr::CmpIBranch { target, .. } => {
            vec![pc + 1, *target as usize]
        }
        Instr::ForEnter { exit, .. } => vec![pc + 1, *exit as usize],
        Instr::ForNext { body, .. } => vec![pc + 1, *body as usize],
        _ => vec![pc + 1],
    }
}

// ----------------------------------------------------------------------
// Entry point
// ----------------------------------------------------------------------

/// Verify a decoded (pre-fusion) plan. `Ok` carries the proven facts;
/// `Err` carries every violation found, sorted by `(func, pc)` — strict
/// mode rejects the plan, lint mode reports and runs it unverified.
pub fn verify_plan(plan: &KernelPlan) -> Result<PlanFacts, Vec<VerifyError>> {
    let t0 = Instant::now();
    let mut errs = Vec::new();
    fatal_pass(plan, &mut errs);
    if !errs.is_empty() {
        // Later passes walk operand lists and pc targets; they may only
        // run on structurally sound code.
        errs.sort();
        errs.dedup();
        return Err(errs);
    }
    let barrier_funcs = transitive_barrier_funcs(plan);
    for (fi, func) in plan.funcs.iter().enumerate() {
        def_before_use_pass(fi as u32, func, &mut errs);
        type_class_pass(fi as u32, func, &mut errs);
        barrier_loop_pass(fi as u32, func, &barrier_funcs, &mut errs);
    }
    if !errs.is_empty() {
        errs.sort();
        errs.dedup();
        return Err(errs);
    }
    let proofs = interval_pass(plan);
    let sites_proven = proofs.iter().filter(|p| p.is_some()).count() as u32;
    Ok(PlanFacts {
        proofs,
        sites_total: plan.mem_sites,
        sites_proven,
        barriers_total: 0,
        barriers_uniform: 0,
        verify_ns: t0.elapsed().as_nanos() as u64,
    })
}

// ----------------------------------------------------------------------
// Pass A: fatal structural checks
// ----------------------------------------------------------------------

/// Rank payloads an instruction carries; any value above 3 would panic
/// the operand walkers themselves, so these are checked first.
fn rank_fields(instr: &Instr) -> Vec<u32> {
    match instr {
        Instr::Alloca { rank, .. } | Instr::LocalAlloca { rank, .. } => vec![*rank],
        Instr::Load { rank, .. }
        | Instr::Store { rank, .. }
        | Instr::LoadBinFloat { rank, .. }
        | Instr::LoadMulAddF { rank, .. }
        | Instr::StoreBinFloat { rank, .. }
        | Instr::StoreBinFloatWt { rank, .. }
        | Instr::VecCtor { rank, .. } => vec![*rank as u32],
        Instr::AccLoadIndexed {
            rank, comps_rank, ..
        }
        | Instr::AccStoreIndexed {
            rank, comps_rank, ..
        }
        | Instr::AccLoadIdxWt {
            rank, comps_rank, ..
        }
        | Instr::AccStoreIdxWt {
            rank, comps_rank, ..
        } => vec![*rank as u32, *comps_rank as u32],
        Instr::AccLoadQuad { comps_rank, .. } | Instr::AccStoreQuad { comps_rank, .. } => {
            vec![*comps_rank as u32]
        }
        _ => vec![],
    }
}

/// Constant dimension operands (`DimSrc::Const`) of an instruction; the
/// runtime indexes item fields with them unchecked.
fn const_dims(instr: &Instr) -> Vec<u8> {
    let mut out = Vec::new();
    let mut push = |d: &DimSrc| {
        if let DimSrc::Const(c) = d {
            out.push(*c);
        }
    };
    match instr {
        Instr::VecGet { dim, .. } | Instr::ItemQuery { dim, .. } | Instr::AccRange { dim, .. } => {
            push(dim)
        }
        _ => {}
    }
    out
}

fn fatal_pass(plan: &KernelPlan, errs: &mut Vec<VerifyError>) {
    let err = |errs: &mut Vec<VerifyError>, fi: usize, pc: usize, m: String| {
        errs.push(VerifyError {
            func: fi as u32,
            pc: pc as u32,
            message: m,
        });
    };
    // Distinct `Return` arities per function, for call-site checking.
    let ret_lens: Vec<Vec<usize>> = plan
        .funcs
        .iter()
        .map(|f| {
            let mut lens: Vec<usize> = f
                .code
                .iter()
                .filter_map(|i| match i {
                    Instr::Return { vals } => Some(vals.len()),
                    _ => None,
                })
                .collect();
            lens.sort_unstable();
            lens.dedup();
            lens
        })
        .collect();
    for (fi, func) in plan.funcs.iter().enumerate() {
        let code = &func.code;
        if code.is_empty() {
            err(errs, fi, 0, "empty function body".into());
            continue;
        }
        for &p in &func.params {
            if p >= func.reg_count {
                err(errs, fi, 0, format!("parameter register r{p} out of range"));
            }
        }
        for (pc, instr) in code.iter().enumerate() {
            let mut structurally_ok = true;
            for r in rank_fields(instr) {
                if r > 3 {
                    err(errs, fi, pc, format!("rank {r} exceeds 3"));
                    structurally_ok = false;
                }
            }
            for d in const_dims(instr) {
                if d > 2 {
                    err(errs, fi, pc, format!("constant dimension {d} out of range"));
                }
            }
            for_each_target_ref(instr, |t| {
                if t as usize >= code.len() {
                    err(errs, fi, pc, format!("pc target {t} out of bounds"));
                }
            });
            if pc + 1 == code.len() && falls_through(instr) {
                err(
                    errs,
                    fi,
                    pc,
                    "control falls through the end of the function".into(),
                );
            }
            if let Some(site) = mem_site_of(instr) {
                if site >= plan.mem_sites {
                    err(errs, fi, pc, format!("memory site {site} out of range"));
                }
            }
            match instr {
                Instr::LocalAlloca { site, .. } if *site >= plan.local_sites => {
                    err(
                        errs,
                        fi,
                        pc,
                        format!("local-alloca site {site} out of range"),
                    );
                }
                Instr::ConstDense { idx, .. } if *idx as usize >= plan.dense_consts.len() => {
                    err(
                        errs,
                        fi,
                        pc,
                        format!("dense-constant index {idx} out of range"),
                    );
                }
                Instr::Call {
                    func: callee,
                    args,
                    results,
                } => {
                    if let Some(cf) = plan.funcs.get(*callee as usize) {
                        let want = cf.params.len() - usize::from(cf.has_item_param);
                        if args.len() != want {
                            err(
                                errs,
                                fi,
                                pc,
                                format!(
                                    "call passes {} arguments but callee {callee} takes {want}",
                                    args.len()
                                ),
                            );
                        }
                        for &len in &ret_lens[*callee as usize] {
                            if len != results.len() {
                                err(
                                    errs,
                                    fi,
                                    pc,
                                    format!(
                                        "call expects {} results but callee {callee} returns {len}",
                                        results.len()
                                    ),
                                );
                            }
                        }
                    } else {
                        err(errs, fi, pc, format!("call target {callee} out of range"));
                    }
                }
                _ => {}
            }
            if structurally_ok {
                let mut check_reg = |r: Reg| {
                    if r >= func.reg_count {
                        err(errs, fi, pc, format!("register r{r} out of range"));
                    }
                };
                for_each_read(instr, &mut check_reg);
                for_each_write(instr, &mut check_reg);
            }
        }
    }
}

// ----------------------------------------------------------------------
// Pass B: def-before-use (forward must-analysis)
// ----------------------------------------------------------------------

fn def_before_use_pass(fi: u32, func: &FuncPlan, errs: &mut Vec<VerifyError>) {
    let n = func.reg_count as usize;
    let words = n.div_ceil(64).max(1);
    let code = &func.code;
    let get = |set: &[u64], r: Reg| set[(r >> 6) as usize] >> (r & 63) & 1 != 0;
    let set = |set: &mut [u64], r: Reg| set[(r >> 6) as usize] |= 1 << (r & 63);
    // `ins[pc]` = registers definitely defined on entry to `pc`;
    // `None` = not yet reached (top). Meet is intersection.
    let mut ins: Vec<Option<Vec<u64>>> = vec![None; code.len()];
    let mut entry = vec![0_u64; words];
    for &p in &func.params {
        set(&mut entry, p);
    }
    ins[0] = Some(entry);
    let mut work = vec![0_usize];
    while let Some(pc) = work.pop() {
        let mut out = ins[pc].clone().expect("worklist entries are reached");
        for_each_write(&code[pc], |r| set(&mut out, r));
        for s in succs(pc, &code[pc]) {
            match &mut ins[s] {
                Some(cur) => {
                    let mut changed = false;
                    for (c, o) in cur.iter_mut().zip(&out) {
                        let next = *c & o;
                        if next != *c {
                            *c = next;
                            changed = true;
                        }
                    }
                    if changed {
                        work.push(s);
                    }
                }
                slot @ None => {
                    *slot = Some(out.clone());
                    work.push(s);
                }
            }
        }
    }
    for (pc, instr) in code.iter().enumerate() {
        if let Some(inset) = &ins[pc] {
            for_each_read(instr, |r| {
                if !get(inset, r) {
                    errs.push(VerifyError {
                        func: fi,
                        pc: pc as u32,
                        message: format!("register r{r} read before definition"),
                    });
                }
            });
        }
    }
}

// ----------------------------------------------------------------------
// Pass C: per-slot type consistency (flow-insensitive)
// ----------------------------------------------------------------------

/// Coarse value class of a register slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Class {
    Int,
    Float,
    Vec,
    Nd,
    Mem,
    Acc,
    Item,
}

impl Class {
    fn name(self) -> &'static str {
        match self {
            Class::Int => "an integer",
            Class::Float => "a float",
            Class::Vec => "an id/range vector",
            Class::Nd => "an nd-range",
            Class::Mem => "a memref",
            Class::Acc => "an accessor",
            Class::Item => "an item",
        }
    }
}

fn class_of_val(v: &RtValue) -> Option<Class> {
    match v {
        RtValue::Int(_) => Some(Class::Int),
        RtValue::F32(_) | RtValue::F64(_) => Some(Class::Float),
        RtValue::Vec(_) => Some(Class::Vec),
        RtValue::NdRange(..) => Some(Class::Nd),
        RtValue::MemRef(_) => Some(Class::Mem),
        RtValue::Accessor(_) => Some(Class::Acc),
        RtValue::Item(_) => Some(Class::Item),
        RtValue::Ptr(_) | RtValue::Unit => None,
    }
}

/// What the slot is known to hold: nothing yet, exactly one concrete
/// class, or several/unknowable (suppresses checking — zero false
/// positives by construction).
#[derive(Clone, Copy, PartialEq, Eq)]
enum DefCls {
    Unset,
    One(Class),
    Many,
}

/// `(register, class)` pairs an instruction *defines*; `None` class means
/// unknowable (Copy, Select, loaded values, call results).
fn def_classes(instr: &Instr, out: &mut Vec<(Reg, Option<Class>)>) {
    match instr {
        Instr::Const { dst, val } => out.push((*dst, class_of_val(val))),
        Instr::ConstDense { dst, .. }
        | Instr::Alloca { dst, .. }
        | Instr::LocalAlloca { dst, .. }
        | Instr::AccSubscript { dst, .. } => out.push((*dst, Some(Class::Mem))),
        Instr::Copy { dst, .. } | Instr::Select { dst, .. } | Instr::Load { dst, .. } => {
            out.push((*dst, None))
        }
        Instr::BinInt { dst, .. }
        | Instr::CmpI { dst, .. }
        | Instr::CmpF { dst, .. }
        | Instr::FpToSi { dst, .. }
        | Instr::VecGet { dst, .. }
        | Instr::RangeSize { dst, .. }
        | Instr::ItemQuery { dst, .. }
        | Instr::GlobalLinearId { dst }
        | Instr::LocalLinearId { dst }
        | Instr::AccRange { dst, .. }
        | Instr::AccBase { dst, .. }
        | Instr::MulAddInt { dst, .. } => out.push((*dst, Some(Class::Int))),
        Instr::BinFloat { dst, .. }
        | Instr::NegF { dst, .. }
        | Instr::SiToFp { dst, .. }
        | Instr::TruncF { dst, .. }
        | Instr::ExtF { dst, .. }
        | Instr::Math { dst, .. }
        | Instr::LoadBinFloat { dst, .. }
        | Instr::LoadMulAddF { dst, .. } => out.push((*dst, Some(Class::Float))),
        Instr::VecCtor { dst, .. } => out.push((*dst, Some(Class::Vec))),
        Instr::NdRangeCtor { dst, .. } => out.push((*dst, Some(Class::Nd))),
        Instr::ItemSelf { dst } => out.push((*dst, Some(Class::Item))),
        Instr::ForEnter { iv, .. } | Instr::ForNext { iv, .. } => out.push((*iv, Some(Class::Int))),
        Instr::Call { results, .. } => results.iter().for_each(|&r| out.push((r, None))),
        Instr::AccLoadIndexed { dst, .. } => out.push((*dst, None)),
        Instr::AccLoadQuad {
            dst,
            id,
            view,
            cst,
            cst_val,
            ..
        } => {
            out.push((*dst, None));
            out.push((*id, Some(Class::Vec)));
            out.push((*view, Some(Class::Mem)));
            out.push((*cst, class_of_val(cst_val)));
        }
        Instr::AccStoreQuad {
            id,
            view,
            cst,
            cst_val,
            ..
        } => {
            out.push((*id, Some(Class::Vec)));
            out.push((*view, Some(Class::Mem)));
            out.push((*cst, class_of_val(cst_val)));
        }
        Instr::AccLoadIdxWt { dst, id, view, .. } => {
            out.push((*dst, None));
            out.push((*id, Some(Class::Vec)));
            out.push((*view, Some(Class::Mem)));
        }
        Instr::AccStoreIdxWt { id, view, .. } => {
            out.push((*id, Some(Class::Vec)));
            out.push((*view, Some(Class::Mem)));
        }
        Instr::StoreBinFloatWt { t, .. } => out.push((*t, Some(Class::Float))),
        _ => {}
    }
}

/// `(register, class)` pairs an instruction *demands* of its operands.
fn use_classes(instr: &Instr, out: &mut Vec<(Reg, Class)>) {
    let dim = |d: &DimSrc, out: &mut Vec<(Reg, Class)>| {
        if let DimSrc::Reg(r) = d {
            out.push((*r, Class::Int));
        }
    };
    let idxs = |idx: &[Reg; 3], rank: u8, out: &mut Vec<(Reg, Class)>| {
        idx[..rank as usize]
            .iter()
            .for_each(|&r| out.push((r, Class::Int)));
    };
    match instr {
        Instr::BinInt { l, r, .. } | Instr::CmpI { l, r, .. } | Instr::CmpIBranch { l, r, .. } => {
            out.push((*l, Class::Int));
            out.push((*r, Class::Int));
        }
        Instr::BinFloat { l, r, .. } | Instr::CmpF { l, r, .. } => {
            out.push((*l, Class::Float));
            out.push((*r, Class::Float));
        }
        Instr::NegF { x, .. }
        | Instr::FpToSi { x, .. }
        | Instr::TruncF { x, .. }
        | Instr::ExtF { x, .. } => out.push((*x, Class::Float)),
        Instr::SiToFp { x, .. } => out.push((*x, Class::Int)),
        Instr::Math { op, x, y, .. } => {
            out.push((*x, Class::Float));
            if matches!(op, crate::plan::MathOp::Powf) {
                out.push((*y, Class::Float));
            }
        }
        Instr::Select { c, .. } | Instr::BranchIfFalse { cond: c, .. } => {
            out.push((*c, Class::Int))
        }
        Instr::Load { mem, idx, rank, .. } => {
            out.push((*mem, Class::Mem));
            idxs(idx, *rank, out);
        }
        Instr::Store { mem, idx, rank, .. } => {
            out.push((*mem, Class::Mem));
            idxs(idx, *rank, out);
        }
        Instr::VecCtor { comps, rank, .. } => {
            comps[..*rank as usize]
                .iter()
                .for_each(|&r| out.push((r, Class::Int)));
        }
        Instr::NdRangeCtor { g, l, .. } => {
            out.push((*g, Class::Vec));
            out.push((*l, Class::Vec));
        }
        Instr::VecGet { v, dim: d, .. } => {
            out.push((*v, Class::Vec));
            dim(d, out);
        }
        Instr::RangeSize { v, .. } => out.push((*v, Class::Vec)),
        Instr::ItemQuery { dim: d, .. } => dim(d, out),
        Instr::AccSubscript { acc, id, .. } => {
            out.push((*acc, Class::Acc));
            out.push((*id, Class::Vec));
        }
        Instr::AccRange { acc, dim: d, .. } => {
            out.push((*acc, Class::Acc));
            dim(d, out);
        }
        Instr::AccBase { acc, .. } => out.push((*acc, Class::Acc)),
        Instr::ForEnter { lb, ub, step, .. } => {
            out.push((*lb, Class::Int));
            out.push((*ub, Class::Int));
            out.push((*step, Class::Int));
        }
        Instr::ForNext { iv, step, ub, .. } => {
            out.push((*iv, Class::Int));
            out.push((*step, Class::Int));
            out.push((*ub, Class::Int));
        }
        Instr::LoadBinFloat {
            other,
            mem,
            idx,
            rank,
            ..
        } => {
            out.push((*other, Class::Float));
            out.push((*mem, Class::Mem));
            idxs(idx, *rank, out);
        }
        Instr::MulAddInt { a, b, c, .. } => {
            out.push((*a, Class::Int));
            out.push((*b, Class::Int));
            out.push((*c, Class::Int));
        }
        Instr::AccLoadIndexed {
            acc,
            comps,
            comps_rank,
            idx,
            rank,
            ..
        }
        | Instr::AccLoadIdxWt {
            acc,
            comps,
            comps_rank,
            idx,
            rank,
            ..
        } => {
            out.push((*acc, Class::Acc));
            comps[..*comps_rank as usize]
                .iter()
                .for_each(|&r| out.push((r, Class::Int)));
            idxs(idx, *rank, out);
        }
        Instr::AccStoreIndexed {
            acc,
            comps,
            comps_rank,
            idx,
            rank,
            ..
        }
        | Instr::AccStoreIdxWt {
            acc,
            comps,
            comps_rank,
            idx,
            rank,
            ..
        } => {
            out.push((*acc, Class::Acc));
            comps[..*comps_rank as usize]
                .iter()
                .for_each(|&r| out.push((r, Class::Int)));
            idxs(idx, *rank, out);
        }
        Instr::AccLoadQuad {
            acc,
            comps,
            comps_rank,
            ..
        }
        | Instr::AccStoreQuad {
            acc,
            comps,
            comps_rank,
            ..
        } => {
            out.push((*acc, Class::Acc));
            comps[..*comps_rank as usize]
                .iter()
                .for_each(|&r| out.push((r, Class::Int)));
        }
        Instr::LoadMulAddF {
            mem,
            idx,
            rank,
            b,
            c,
            ..
        } => {
            out.push((*mem, Class::Mem));
            idxs(idx, *rank, out);
            out.push((*b, Class::Float));
            out.push((*c, Class::Float));
        }
        Instr::StoreBinFloat {
            l,
            r,
            mem,
            idx,
            rank,
            ..
        }
        | Instr::StoreBinFloatWt {
            l,
            r,
            mem,
            idx,
            rank,
            ..
        } => {
            out.push((*l, Class::Float));
            out.push((*r, Class::Float));
            out.push((*mem, Class::Mem));
            idxs(idx, *rank, out);
        }
        _ => {}
    }
}

fn type_class_pass(fi: u32, func: &FuncPlan, errs: &mut Vec<VerifyError>) {
    let n = func.reg_count as usize;
    let mut defs = vec![DefCls::Unset; n];
    // Kernel arguments are unknowable statically; the trailing item
    // parameter's class is fixed by the launch machinery.
    let nparams = func.params.len() - usize::from(func.has_item_param);
    for (k, &p) in func.params.iter().enumerate() {
        defs[p as usize] = if k < nparams {
            DefCls::Many
        } else {
            DefCls::One(Class::Item)
        };
    }
    let mut scratch = Vec::new();
    for instr in &func.code {
        scratch.clear();
        def_classes(instr, &mut scratch);
        for &(r, c) in &scratch {
            let slot = &mut defs[r as usize];
            *slot = match (*slot, c) {
                (DefCls::Unset, Some(c)) => DefCls::One(c),
                (DefCls::One(prev), Some(c)) if prev == c => DefCls::One(c),
                _ => DefCls::Many,
            };
        }
    }
    let mut uses = Vec::new();
    for (pc, instr) in func.code.iter().enumerate() {
        uses.clear();
        use_classes(instr, &mut uses);
        for &(r, need) in &uses {
            if let DefCls::One(have) = defs[r as usize] {
                if have != need {
                    errs.push(VerifyError {
                        func: fi,
                        pc: pc as u32,
                        message: format!(
                            "register r{r} holds {} but is used as {}",
                            have.name(),
                            need.name()
                        ),
                    });
                }
            }
        }
    }
}

// ----------------------------------------------------------------------
// Pass D: no barrier inside a data-dependent loop
// ----------------------------------------------------------------------

/// Per-function flag: does the function (transitively) contain a
/// barrier?
fn transitive_barrier_funcs(plan: &KernelPlan) -> Vec<bool> {
    let mut has = plan
        .funcs
        .iter()
        .map(|f| f.code.iter().any(|i| matches!(i, Instr::Barrier)))
        .collect::<Vec<_>>();
    loop {
        let mut changed = false;
        for fi in 0..plan.funcs.len() {
            if has[fi] {
                continue;
            }
            let calls_barrier = plan.funcs[fi].code.iter().any(|i| match i {
                Instr::Call { func, .. } => has.get(*func as usize).copied().unwrap_or(false),
                _ => false,
            });
            if calls_barrier {
                has[fi] = true;
                changed = true;
            }
        }
        if !changed {
            return has;
        }
    }
}

/// Registers whose value is launch-uniform and statically classifiable:
/// constants, kernel arguments, range/extent queries, and arithmetic
/// over those. Work-item ids, loaded values and call results are not.
/// Greatest-fixpoint: start all-uniform, clear until stable.
fn uniform_decodable_regs(func: &FuncPlan) -> Vec<bool> {
    let n = func.reg_count as usize;
    let mut dec = vec![true; n];
    loop {
        let mut changed = false;
        for instr in &func.code {
            let source_undecodable = match instr {
                Instr::ItemQuery { q, .. } => {
                    matches!(q, ItemQ::GlobalId | ItemQ::LocalId | ItemQ::GroupId)
                }
                Instr::GlobalLinearId { .. }
                | Instr::LocalLinearId { .. }
                | Instr::ItemSelf { .. }
                | Instr::Load { .. }
                | Instr::LoadBinFloat { .. }
                | Instr::LoadMulAddF { .. }
                | Instr::AccLoadIndexed { .. }
                | Instr::AccLoadQuad { .. }
                | Instr::AccLoadIdxWt { .. }
                | Instr::Call { .. }
                | Instr::Alloca { .. }
                | Instr::LocalAlloca { .. }
                | Instr::ConstDense { .. } => true,
                _ => false,
            };
            let undec = source_undecodable || {
                let mut any = false;
                for_each_read(instr, |r| any |= !dec[r as usize]);
                any
            };
            if undec {
                for_each_write(instr, |r| {
                    if dec[r as usize] {
                        dec[r as usize] = false;
                        changed = true;
                    }
                });
            }
        }
        if !changed {
            return dec;
        }
    }
}

fn barrier_loop_pass(
    fi: u32,
    func: &FuncPlan,
    barrier_funcs: &[bool],
    errs: &mut Vec<VerifyError>,
) {
    let code = &func.code;
    if !code.iter().any(|i| {
        matches!(i, Instr::Barrier)
            || matches!(i, Instr::Call { func, .. }
                        if barrier_funcs.get(*func as usize).copied().unwrap_or(false))
    }) {
        return;
    }
    let dec = uniform_decodable_regs(func);
    // The decoder emits properly nested structured loops, so a linear
    // scan with an exit-pc stack recovers the loop forest.
    let mut stack: Vec<(u32, bool)> = Vec::new();
    for (pc, instr) in code.iter().enumerate() {
        while stack.last().is_some_and(|&(exit, _)| exit as usize <= pc) {
            stack.pop();
        }
        match instr {
            Instr::ForEnter {
                lb, ub, step, exit, ..
            } if *exit as usize > pc => {
                let trip_dec = dec[*lb as usize] && dec[*ub as usize] && dec[*step as usize];
                stack.push((*exit, trip_dec));
            }
            Instr::Barrier if stack.iter().any(|&(_, d)| !d) => {
                errs.push(VerifyError {
                    func: fi,
                    pc: pc as u32,
                    message: "barrier inside a loop with a data-dependent trip count".into(),
                });
            }
            Instr::Call { func: callee, .. }
                if barrier_funcs
                    .get(*callee as usize)
                    .copied()
                    .unwrap_or(false)
                    && stack.iter().any(|&(_, d)| !d) =>
            {
                errs.push(VerifyError {
                    func: fi,
                    pc: pc as u32,
                    message:
                        "call to a barrier-containing function inside a loop with a data-dependent trip count"
                            .into(),
                });
            }
            _ => {}
        }
    }
}

// ----------------------------------------------------------------------
// Pass E: interval abstract interpretation (kernel function only)
// ----------------------------------------------------------------------

/// Abstract value of one register during the interval walk.
#[derive(Clone, Debug)]
enum AVal {
    /// Unknown.
    Top,
    /// Integer in a symbolic interval.
    Int(Interval),
    /// Kernel argument `k`, class still unknown (an integer argument
    /// concretizes to the `TAG_INT_ARG` symbol on demand; an accessor
    /// argument feeds `AccSubscript`).
    Arg(u32),
    /// Id/range vector with per-component intervals.
    Vec([Option<Interval>; 3], u8),
    /// Accessor subscript view: argument `arg` (rank `acc_rank`)
    /// at symbolic element offset `off`.
    View {
        arg: u32,
        acc_rank: u32,
        off: Interval,
    },
    /// The work-item handle.
    Item,
}

fn int_of(v: &AVal) -> Option<Interval> {
    match v {
        AVal::Int(i) => Some(i.clone()),
        AVal::Arg(k) => Some(Interval::point(sym(TAG_INT_ARG, *k))),
        _ => None,
    }
}

fn join_val(a: &AVal, b: &AVal) -> AVal {
    match (a, b) {
        (AVal::Int(x), AVal::Int(y)) => Interval::hull(x, y).map_or(AVal::Top, AVal::Int),
        (AVal::Arg(k), AVal::Arg(j)) if k == j => AVal::Arg(*k),
        (AVal::Vec(x, rx), AVal::Vec(y, ry)) if rx == ry => {
            let mut comps: [Option<Interval>; 3] = [None, None, None];
            for d in 0..*rx as usize {
                comps[d] = match (&x[d], &y[d]) {
                    (Some(xi), Some(yi)) => Interval::hull(xi, yi),
                    _ => None,
                };
            }
            AVal::Vec(comps, *rx)
        }
        (
            AVal::View {
                arg: a1,
                acc_rank: r1,
                off: o1,
            },
            AVal::View {
                arg: a2,
                acc_rank: r2,
                off: o2,
            },
        ) if a1 == a2 && r1 == r2 => Interval::hull(o1, o2).map_or(AVal::Top, |off| AVal::View {
            arg: *a1,
            acc_rank: *r1,
            off,
        }),
        (AVal::Item, AVal::Item) => AVal::Item,
        _ => AVal::Top,
    }
}

fn join_env(a: &[AVal], b: &[AVal]) -> Vec<AVal> {
    a.iter().zip(b).map(|(x, y)| join_val(x, y)).collect()
}

fn join_pending(slot: &mut Option<Vec<AVal>>, env: Vec<AVal>) {
    *slot = Some(match slot.take() {
        Some(cur) => join_env(&cur, &env),
        None => env,
    });
}

/// `[0, bound - 1]`.
fn upto_excl(bound: Expr) -> Option<Interval> {
    Some(Interval {
        lo: Expr::konst(0),
        hi: Expr::bin(BinOp::Sub, &bound, &Expr::konst(1))?,
    })
}

/// `dim` resolved to a literal dimension, when statically known.
fn const_dim(env: &[AVal], dim: &DimSrc) -> Option<usize> {
    let d = match dim {
        DimSrc::Const(d) => *d as i64,
        DimSrc::Reg(r) => int_of(&env[*r as usize])?.as_const()?,
    };
    (0..3).contains(&d).then_some(d as usize)
}

fn binint_interval(op: IntBin, l: Option<Interval>, r: Option<Interval>) -> Option<Interval> {
    match op {
        IntBin::Add => Interval::add(&l?, &r?),
        IntBin::Sub => Interval::sub(&l?, &r?),
        IntBin::Mul => Interval::mul(&l?, &r?),
        IntBin::MinS => Interval::min_(&l?, &r?),
        IntBin::MaxS => Interval::max_(&l?, &r?),
        // `x & c` for constant `c >= 0` keeps only bits of `c`.
        IntBin::And => {
            let (li, ri) = (l?, r?);
            let c = [li.as_const(), ri.as_const()]
                .into_iter()
                .flatten()
                .find(|&c| c >= 0)?;
            Some(Interval::of_consts(0, c))
        }
        // `x rem c` for constant `c >= 1`: magnitude below `c`, sign of
        // the dividend — `[max(-(c-1), min(x.lo, 0)), min(c-1, max(x.hi, 0))]`.
        IntBin::RemS => {
            let (xi, ri) = (l?, r?);
            let c = ri.as_const().filter(|&c| c >= 1)?;
            let zero = Expr::konst(0);
            let lo = Expr::bin(
                BinOp::Max,
                &Expr::konst(-(c - 1)),
                &Expr::bin(BinOp::Min, &xi.lo, &zero)?,
            )?;
            let hi = Expr::bin(
                BinOp::Min,
                &Expr::konst(c - 1),
                &Expr::bin(BinOp::Max, &xi.hi, &zero)?,
            )?;
            Some(Interval { lo, hi })
        }
        // `x / c` for constant `c >= 1` truncates toward zero:
        // `[min(x.lo, 0), max(x.hi, 0)]`.
        IntBin::DivS => {
            let (xi, ri) = (l?, r?);
            ri.as_const().filter(|&c| c >= 1)?;
            let zero = Expr::konst(0);
            Some(Interval {
                lo: Expr::bin(BinOp::Min, &xi.lo, &zero)?,
                hi: Expr::bin(BinOp::Max, &xi.hi, &zero)?,
            })
        }
        IntBin::Or | IntBin::Xor => None,
    }
}

/// Record a proof for a rank-1 load/store through an accessor-subscript
/// view (the only memref shape the decoder emits for accessors:
/// `linearize` collapses to `view offset + idx0`).
fn try_prove(
    env: &[AVal],
    mem: Reg,
    idx: &[Reg; 3],
    rank: u8,
    site: u32,
    claims: &[u32],
    proofs: &mut [Option<SiteProof>],
) {
    if rank != 1 || claims.get(site as usize).copied() != Some(1) {
        return;
    }
    let AVal::View { arg, acc_rank, off } = &env[mem as usize] else {
        return;
    };
    let Some(i0) = int_of(&env[idx[0] as usize]) else {
        return;
    };
    let Some(addr) = Interval::add(off, &i0) else {
        return;
    };
    proofs[site as usize] = Some(SiteProof {
        arg: *arg,
        acc_rank: *acc_rank,
        lo: addr.lo,
        hi: addr.hi,
    });
}

fn interval_pass(plan: &KernelPlan) -> Vec<Option<SiteProof>> {
    let mut proofs: Vec<Option<SiteProof>> = vec![None; plan.mem_sites as usize];
    let Some(func) = plan.funcs.first() else {
        return proofs;
    };
    let code = &func.code;
    // A site proof must be the *only* instruction touching that site id;
    // duplicated ids (hand-built or corrupted plans) stay unproven.
    let mut claims = vec![0_u32; plan.mem_sites as usize];
    for f in &plan.funcs {
        for i in &f.code {
            if let Some(s) = mem_site_of(i) {
                claims[s as usize] += 1;
            }
        }
    }
    // The walk is a single forward pass joining at forward edges; any
    // irreducible backward edge (other than the structured `ForNext`
    // back-edge, which is handled at `ForEnter`) aborts the pass —
    // everything stays unproven, which is always sound.
    for (pc, instr) in code.iter().enumerate() {
        let mut backward = false;
        match instr {
            Instr::ForNext { .. } => {}
            Instr::ForEnter { exit, .. } => backward = *exit as usize <= pc,
            _ => for_each_target_ref(instr, |t| backward |= t as usize <= pc),
        }
        if backward {
            return proofs;
        }
    }
    let n = func.reg_count as usize;
    let mut env = vec![AVal::Top; n];
    let nparams = func.params.len() - usize::from(func.has_item_param);
    for (k, &p) in func.params.iter().enumerate() {
        env[p as usize] = if k < nparams {
            AVal::Arg(k as u32)
        } else {
            AVal::Item
        };
    }
    let mut pending: Vec<Option<Vec<AVal>>> = vec![None; code.len()];
    let mut cur = Some(env);
    for (pc, instr) in code.iter().enumerate() {
        if let Some(p) = pending[pc].take() {
            cur = Some(match cur.take() {
                Some(c) => join_env(&c, &p),
                None => p,
            });
        }
        let Some(mut e) = cur.take() else { continue };
        match instr {
            Instr::Const { dst, val } => {
                e[*dst as usize] = match val {
                    RtValue::Int(v) => AVal::Int(Interval::konst(*v)),
                    RtValue::Vec(v) => {
                        let mut comps: [Option<Interval>; 3] = [None, None, None];
                        for (c, x) in comps.iter_mut().zip(&v.data[..v.rank as usize]) {
                            *c = Some(Interval::konst(*x));
                        }
                        AVal::Vec(comps, v.rank as u8)
                    }
                    _ => AVal::Top,
                };
            }
            Instr::Copy { dst, src } => e[*dst as usize] = e[*src as usize].clone(),
            Instr::BinInt { op, dst, l, r } => {
                let (li, ri) = (int_of(&e[*l as usize]), int_of(&e[*r as usize]));
                e[*dst as usize] = binint_interval(*op, li, ri).map_or(AVal::Top, AVal::Int);
            }
            Instr::CmpI { dst, .. } | Instr::CmpF { dst, .. } => {
                e[*dst as usize] = AVal::Int(Interval::of_consts(0, 1));
            }
            Instr::Select { dst, t, f, .. } => {
                e[*dst as usize] = match (int_of(&e[*t as usize]), int_of(&e[*f as usize])) {
                    (Some(ti), Some(fi)) => Interval::hull(&ti, &fi).map_or(AVal::Top, AVal::Int),
                    _ => AVal::Top,
                };
            }
            Instr::MulAddInt { dst, a, b, c } => {
                let prod = match (int_of(&e[*a as usize]), int_of(&e[*b as usize])) {
                    (Some(ai), Some(bi)) => Interval::mul(&ai, &bi),
                    _ => None,
                };
                e[*dst as usize] = match (prod, int_of(&e[*c as usize])) {
                    (Some(p), Some(ci)) => Interval::add(&p, &ci).map_or(AVal::Top, AVal::Int),
                    _ => AVal::Top,
                };
            }
            Instr::VecCtor { dst, comps, rank } => {
                let mut out: [Option<Interval>; 3] = [None, None, None];
                for d in 0..*rank as usize {
                    out[d] = int_of(&e[comps[d] as usize]);
                }
                e[*dst as usize] = AVal::Vec(out, *rank);
            }
            Instr::VecGet { dst, v, dim } => {
                e[*dst as usize] = match (&e[*v as usize], const_dim(&e, dim)) {
                    (AVal::Vec(comps, r), Some(d)) if d < *r as usize => {
                        comps[d].clone().map_or(AVal::Top, AVal::Int)
                    }
                    _ => AVal::Top,
                };
            }
            Instr::RangeSize { dst, v } => {
                e[*dst as usize] = match &e[*v as usize] {
                    AVal::Vec(comps, r) => {
                        let mut prod = Some(Interval::konst(1));
                        for c in comps[..*r as usize].iter() {
                            prod = match (prod, c) {
                                (Some(p), Some(ci)) => Interval::mul(&p, ci),
                                _ => None,
                            };
                        }
                        prod.map_or(AVal::Top, AVal::Int)
                    }
                    _ => AVal::Top,
                };
            }
            Instr::ItemQuery { dst, q, dim } => {
                e[*dst as usize] = const_dim(&e, dim)
                    .and_then(|d| {
                        let d = d as u32;
                        match q {
                            ItemQ::GlobalId => upto_excl(sym(TAG_GLOBAL_EXT, d)),
                            ItemQ::LocalId => upto_excl(sym(TAG_LOCAL_EXT, d)),
                            ItemQ::GroupId => upto_excl(sym(TAG_GROUP_EXT, d)),
                            ItemQ::GlobalRange => Some(Interval::point(sym(TAG_GLOBAL_EXT, d))),
                            ItemQ::LocalRange => Some(Interval::point(sym(TAG_LOCAL_EXT, d))),
                            ItemQ::GroupRange => Some(Interval::point(sym(TAG_GROUP_EXT, d))),
                        }
                    })
                    .map_or(AVal::Top, AVal::Int);
            }
            Instr::GlobalLinearId { dst } | Instr::LocalLinearId { dst } => {
                let tag = if matches!(instr, Instr::GlobalLinearId { .. }) {
                    TAG_GLOBAL_EXT
                } else {
                    TAG_LOCAL_EXT
                };
                let total = Expr::bin(
                    BinOp::Mul,
                    &Expr::bin(BinOp::Mul, &sym(tag, 0), &sym(tag, 1))
                        .unwrap_or_else(|| Expr::konst(0)),
                    &sym(tag, 2),
                );
                e[*dst as usize] = total.and_then(upto_excl).map_or(AVal::Top, AVal::Int);
            }
            Instr::ItemSelf { dst } => e[*dst as usize] = AVal::Item,
            Instr::AccSubscript { dst, acc, id } => {
                e[*dst as usize] = match (&e[*acc as usize], &e[*id as usize]) {
                    (AVal::Arg(k), AVal::Vec(ivs, r)) if *k <= MAX_SYM_ARG => {
                        let mut off = Some(Interval::konst(0));
                        for (d, iv) in ivs.iter().enumerate().take(*r as usize) {
                            off = (|| {
                                let o = off.clone()?;
                                let ivd = iv.clone()?;
                                let range =
                                    Interval::point(sym(TAG_ACC_RANGE, (k << 2) | d as u32));
                                let offset =
                                    Interval::point(sym(TAG_ACC_OFFSET, (k << 2) | d as u32));
                                Interval::add(
                                    &Interval::mul(&o, &range)?,
                                    &Interval::add(&ivd, &offset)?,
                                )
                            })();
                        }
                        match off {
                            Some(off) => AVal::View {
                                arg: *k,
                                acc_rank: *r as u32,
                                off,
                            },
                            None => AVal::Top,
                        }
                    }
                    _ => AVal::Top,
                };
            }
            Instr::AccRange { dst, acc, dim } => {
                e[*dst as usize] = match (&e[*acc as usize], const_dim(&e, dim)) {
                    (AVal::Arg(k), Some(d)) if *k <= MAX_SYM_ARG => {
                        AVal::Int(Interval::point(sym(TAG_ACC_RANGE, (k << 2) | d as u32)))
                    }
                    _ => AVal::Top,
                };
            }
            Instr::Load {
                dst,
                mem,
                idx,
                rank,
                site,
            } => {
                try_prove(&e, *mem, idx, *rank, *site, &claims, &mut proofs);
                e[*dst as usize] = AVal::Top;
            }
            Instr::Store {
                mem,
                idx,
                rank,
                site,
                ..
            } => {
                try_prove(&e, *mem, idx, *rank, *site, &claims, &mut proofs);
            }
            Instr::ForEnter {
                lb,
                ub,
                step,
                iv,
                exit,
            } => {
                let exit = *exit as usize;
                let lbi = int_of(&e[*lb as usize]);
                let ubi = int_of(&e[*ub as usize]);
                let stepc = int_of(&e[*step as usize]).and_then(|i| i.as_const());
                let mut body_writes = vec![false; n];
                for b in &code[pc + 1..exit] {
                    for_each_write(b, |r| body_writes[r as usize] = true);
                }
                let bounds_stable = !body_writes[*ub as usize] && !body_writes[*step as usize];
                // Exit environment: anything the body writes is unknown,
                // and so is the induction variable (a zero-trip loop
                // leaves `iv = lb`, possibly >= ub).
                let mut ex = e.clone();
                for (r, w) in body_writes.iter().enumerate() {
                    if *w {
                        ex[r] = AVal::Top;
                    }
                }
                ex[*iv as usize] = AVal::Top;
                join_pending(&mut pending[exit], ex);
                // Body environment: smash body-written registers, then
                // pin the induction variable to `[lb.lo, ub.hi - 1]`.
                // Guard against the release-mode `iv + step` wrap in
                // `ForNext`: sound for step 1 always (iv < ub <= i64::MAX),
                // and for larger constant steps only when `ub`'s upper
                // bound is a literal that cannot wrap past i64::MAX.
                for (r, w) in body_writes.iter().enumerate() {
                    if *w {
                        e[r] = AVal::Top;
                    }
                }
                e[*iv as usize] = match (lbi, ubi, stepc) {
                    (Some(l), Some(u), Some(c))
                        if c >= 1
                            && bounds_stable
                            && (c == 1
                                || u.hi
                                    .as_const()
                                    .is_some_and(|uc| uc.checked_add(c - 1).is_some())) =>
                    {
                        match Expr::bin(BinOp::Sub, &u.hi, &Expr::konst(1)) {
                            Some(hi) => AVal::Int(Interval { lo: l.lo, hi }),
                            None => AVal::Top,
                        }
                    }
                    _ => AVal::Top,
                };
            }
            Instr::ForNext { .. } => {
                // Back-edge handled at ForEnter; fall-through keeps the
                // body environment (iv retains its final in-range value).
            }
            Instr::Jump { target } => {
                join_pending(&mut pending[*target as usize], e);
                cur = None;
                continue;
            }
            Instr::BranchIfFalse { target, .. } | Instr::CmpIBranch { target, .. } => {
                join_pending(&mut pending[*target as usize], e.clone());
            }
            Instr::Return { .. } => {
                cur = None;
                continue;
            }
            Instr::Barrier
            | Instr::NdRangeCtor { .. }
            | Instr::AccBase { .. }
            | Instr::Alloca { .. }
            | Instr::LocalAlloca { .. }
            | Instr::ConstDense { .. } => {
                let mut regs = Vec::new();
                for_each_write(instr, |r| regs.push(r));
                for r in regs {
                    e[r as usize] = AVal::Top;
                }
            }
            other => {
                // Floats, casts, calls and fused superinstructions:
                // smash every written register to Top (fused memory
                // variants keep their sites unproven — the device
                // verifies pre-fusion, so nothing is lost on the
                // production path).
                let mut regs = Vec::new();
                for_each_write(other, |r| regs.push(r));
                for r in regs {
                    e[r as usize] = AVal::Top;
                }
            }
        }
        cur = Some(e);
    }
    proofs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{DataVec, MemoryPool};
    use crate::value::AccessorVal;

    fn plan1(
        code: Vec<Instr>,
        reg_count: u32,
        params: Vec<Reg>,
        has_item: bool,
        sites: u32,
    ) -> KernelPlan {
        KernelPlan {
            funcs: vec![FuncPlan {
                code,
                reg_count,
                params,
                has_item_param: has_item,
            }],
            dense_consts: vec![],
            mem_sites: sites,
            local_sites: 0,
            fused_pairs: 0,
            fused_chains: 0,
            fused_quads: 0,
            fused_wt: 0,
        }
    }

    fn ret() -> Instr {
        Instr::Return { vals: Box::new([]) }
    }

    #[test]
    fn rejects_out_of_bounds_jump() {
        let p = plan1(vec![Instr::Jump { target: 9 }, ret()], 1, vec![], false, 0);
        let errs = verify_plan(&p).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("pc target 9")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_read_before_definition() {
        let p = plan1(
            vec![
                Instr::BinInt {
                    op: IntBin::Add,
                    dst: 2,
                    l: 0,
                    r: 1,
                },
                ret(),
            ],
            3,
            vec![],
            false,
            0,
        );
        let errs = verify_plan(&p).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.message.contains("read before definition")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_type_confused_register() {
        let p = plan1(
            vec![
                Instr::Const {
                    dst: 0,
                    val: RtValue::F64(1.0),
                },
                Instr::BranchIfFalse { cond: 0, target: 2 },
                ret(),
            ],
            1,
            vec![],
            false,
            0,
        );
        let errs = verify_plan(&p).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("holds a float")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let callee = FuncPlan {
            code: vec![Instr::Return {
                vals: Box::new([0]),
            }],
            reg_count: 1,
            params: vec![0],
            has_item_param: false,
        };
        let main = FuncPlan {
            code: vec![
                Instr::Const {
                    dst: 0,
                    val: RtValue::Int(1),
                },
                Instr::Call {
                    func: 1,
                    args: Box::new([0]),
                    results: Box::new([1, 2]),
                },
                ret(),
            ],
            reg_count: 3,
            params: vec![],
            has_item_param: false,
        };
        let p = KernelPlan {
            funcs: vec![main, callee],
            dense_consts: vec![],
            mem_sites: 0,
            local_sites: 0,
            fused_pairs: 0,
            fused_chains: 0,
            fused_quads: 0,
            fused_wt: 0,
        };
        let errs = verify_plan(&p).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("expects 2 results")),
            "{errs:?}"
        );
    }

    /// Barrier under a loop bounded by the local range is fine; bounded
    /// by a work-item id it is a structural violation.
    #[test]
    fn barrier_loop_trip_count_classification() {
        let build = |ub_query: ItemQ| {
            plan1(
                vec![
                    Instr::Const {
                        dst: 0,
                        val: RtValue::Int(0),
                    },
                    Instr::Const {
                        dst: 1,
                        val: RtValue::Int(1),
                    },
                    Instr::ItemQuery {
                        dst: 2,
                        q: ub_query,
                        dim: DimSrc::Const(0),
                    },
                    Instr::ForEnter {
                        lb: 0,
                        ub: 2,
                        step: 1,
                        iv: 3,
                        exit: 6,
                    },
                    Instr::Barrier,
                    Instr::ForNext {
                        iv: 3,
                        step: 1,
                        ub: 2,
                        body: 4,
                    },
                    ret(),
                ],
                4,
                vec![],
                false,
                0,
            )
        };
        assert!(verify_plan(&build(ItemQ::LocalRange)).is_ok());
        let errs = verify_plan(&build(ItemQ::GlobalId)).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.message.contains("data-dependent trip count")),
            "{errs:?}"
        );
    }

    /// `a[gid]` with a matching launch is proven; an over-long global
    /// range or a too-small buffer is not.
    #[test]
    fn proves_gid_indexed_subscript() {
        let p = plan1(
            vec![
                Instr::ItemQuery {
                    dst: 2,
                    q: ItemQ::GlobalId,
                    dim: DimSrc::Const(0),
                },
                Instr::VecCtor {
                    dst: 3,
                    comps: [2, 0, 0],
                    rank: 1,
                },
                Instr::AccSubscript {
                    dst: 4,
                    acc: 0,
                    id: 3,
                },
                Instr::Const {
                    dst: 5,
                    val: RtValue::Int(0),
                },
                Instr::Load {
                    dst: 6,
                    mem: 4,
                    idx: [5, 0, 0],
                    rank: 1,
                    site: 0,
                },
                ret(),
            ],
            7,
            vec![0, 1],
            true,
            1,
        );
        let facts = verify_plan(&p).unwrap();
        assert_eq!(facts.sites_proven, 1);
        let mut pool = MemoryPool::new();
        let mem = pool.alloc(DataVec::F32(vec![0.0; 8]));
        let acc = RtValue::Accessor(AccessorVal {
            mem,
            range: [8, 1, 1],
            offset: [0, 0, 0],
            rank: 1,
            constant: false,
        });
        let fits = facts.instantiate(&[acc], &NdRangeSpec::d1(8, 4), &pool);
        assert_eq!(fits.first().copied(), Some(1), "site 0 should be proven");
        let too_big = facts.instantiate(&[acc], &NdRangeSpec::d1(16, 4), &pool);
        assert!(too_big.is_empty(), "oversized launch must stay checked");
    }

    /// Loop-bounded subscript `a[i]` for `i in 0..ub_arg`: proven with
    /// step 1, unproven with step 2 (symbolic ub could wrap `iv + step`).
    #[test]
    fn loop_bound_wrap_guard() {
        let build = |step: i64| {
            plan1(
                vec![
                    Instr::Const {
                        dst: 3,
                        val: RtValue::Int(0),
                    },
                    Instr::Const {
                        dst: 4,
                        val: RtValue::Int(step),
                    },
                    Instr::ForEnter {
                        lb: 3,
                        ub: 1,
                        step: 4,
                        iv: 5,
                        exit: 8,
                    },
                    Instr::VecCtor {
                        dst: 6,
                        comps: [5, 0, 0],
                        rank: 1,
                    },
                    Instr::AccSubscript {
                        dst: 7,
                        acc: 0,
                        id: 6,
                    },
                    Instr::Const {
                        dst: 8,
                        val: RtValue::Int(0),
                    },
                    Instr::Load {
                        dst: 9,
                        mem: 7,
                        idx: [8, 0, 0],
                        rank: 1,
                        site: 0,
                    },
                    Instr::ForNext {
                        iv: 5,
                        step: 4,
                        ub: 1,
                        body: 3,
                    },
                    ret(),
                ],
                10,
                vec![0, 1, 2],
                true,
                1,
            )
        };
        let facts1 = verify_plan(&build(1)).unwrap();
        assert_eq!(facts1.sites_proven, 1, "step-1 loop should be proven");
        let facts2 = verify_plan(&build(2)).unwrap();
        assert_eq!(
            facts2.sites_proven, 0,
            "step-2 symbolic ub must stay unproven"
        );

        let mut pool = MemoryPool::new();
        let mem = pool.alloc(DataVec::F64(vec![0.0; 8]));
        let acc = RtValue::Accessor(AccessorVal {
            mem,
            range: [8, 1, 1],
            offset: [0, 0, 0],
            rank: 1,
            constant: false,
        });
        let nd = NdRangeSpec::d1(4, 4);
        let ok = facts1.instantiate(&[acc, RtValue::Int(8)], &nd, &pool);
        assert_eq!(ok.first().copied(), Some(1));
        let oob = facts1.instantiate(&[acc, RtValue::Int(9)], &nd, &pool);
        assert!(oob.is_empty(), "ub beyond the buffer must stay checked");
    }

    /// Masked indexing `a[gid & 7]` and `a[gid % 8]` prove in-bounds for
    /// an 8-element accessor regardless of the launch size.
    #[test]
    fn proves_masked_and_mod_indexing() {
        let build = |op: IntBin, k: i64| {
            plan1(
                vec![
                    Instr::ItemQuery {
                        dst: 2,
                        q: ItemQ::GlobalId,
                        dim: DimSrc::Const(0),
                    },
                    Instr::Const {
                        dst: 3,
                        val: RtValue::Int(k),
                    },
                    Instr::BinInt {
                        op,
                        dst: 4,
                        l: 2,
                        r: 3,
                    },
                    Instr::VecCtor {
                        dst: 5,
                        comps: [4, 0, 0],
                        rank: 1,
                    },
                    Instr::AccSubscript {
                        dst: 6,
                        acc: 0,
                        id: 5,
                    },
                    Instr::Const {
                        dst: 7,
                        val: RtValue::Int(0),
                    },
                    Instr::Store {
                        val: 7,
                        mem: 6,
                        idx: [7, 0, 0],
                        rank: 1,
                        site: 0,
                    },
                    ret(),
                ],
                8,
                vec![0, 1],
                true,
                1,
            )
        };
        let mut pool = MemoryPool::new();
        let mem = pool.alloc(DataVec::I64(vec![0; 8]));
        let acc = RtValue::Accessor(AccessorVal {
            mem,
            range: [8, 1, 1],
            offset: [0, 0, 0],
            rank: 1,
            constant: false,
        });
        let nd = NdRangeSpec::d1(4096, 64);
        for (op, k) in [(IntBin::And, 7), (IntBin::RemS, 8)] {
            let facts = verify_plan(&build(op, k)).unwrap();
            assert_eq!(facts.sites_proven, 1, "{op:?} should prove");
            let bits = facts.instantiate(&[acc], &nd, &pool);
            assert_eq!(bits.first().copied(), Some(1), "{op:?} instantiation");
        }
    }
}
