//! The analytic cost model.
//!
//! Abstract cycles per dynamic event; the defaults approximate the relative
//! magnitudes on a data-centre GPU (global DRAM transaction ≫ local/SLM
//! access ≫ ALU op). Absolute numbers are irrelevant for the reproduction —
//! the paper's figures are *speedups*, driven by the ratios.

/// Tunable cost constants.
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Cycles per 64-byte global memory transaction.
    pub global_transaction: f64,
    /// Cycles per work-group local memory access.
    pub local_access: f64,
    /// Cycles per constant-cache access (host-propagated constant arrays).
    pub constant_access: f64,
    /// Cycles per private (register/stack) access.
    pub private_access: f64,
    /// Cycles per arithmetic / query op.
    pub arith: f64,
    /// Cycles per work-group barrier.
    pub barrier: f64,
    /// Bytes per global transaction.
    pub transaction_bytes: usize,
    /// Work-items coalesced together (sub-group size).
    pub subgroup_size: usize,
    /// Compute units executing work-groups in parallel (PVC 1100 ≈ 56 Xe
    /// cores).
    pub compute_units: usize,
    /// Host-side cycles per kernel launch.
    pub launch_base: f64,
    /// Host-side cycles per kernel argument at launch (what DAE saves).
    pub launch_per_arg: f64,
    /// One-time JIT compilation cycles for SSCP flows (per kernel).
    pub jit_compile: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            global_transaction: 16.0,
            local_access: 1.0,
            constant_access: 0.5,
            private_access: 0.5,
            arith: 1.0,
            barrier: 2.0,
            transaction_bytes: 64,
            subgroup_size: 16,
            compute_units: 56,
            launch_base: 20_000.0,
            launch_per_arg: 1_500.0,
            jit_compile: 50_000_000.0,
        }
    }
}

/// Dynamic event counters for one kernel execution.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecStats {
    /// Arithmetic and position-query ops executed.
    pub arith_ops: u64,
    /// Global-memory element accesses.
    pub global_accesses: u64,
    /// Coalesced global-memory transactions (64-byte segments).
    pub global_transactions: u64,
    /// Work-group local memory accesses.
    pub local_accesses: u64,
    /// Constant-cache accesses (host-propagated constant arrays).
    pub constant_accesses: u64,
    /// Private (register/stack) memory accesses.
    pub private_accesses: u64,
    /// Work-group barriers executed.
    pub barriers: u64,
    /// Work-groups launched.
    pub work_groups: u64,
    /// Work-items launched.
    pub work_items: u64,
    /// Simulated device cycles (excludes host launch overhead).
    pub device_cycles: f64,
}

impl ExecStats {
    /// Accumulate `other`'s counters into these.
    pub fn add(&mut self, other: &ExecStats) {
        self.arith_ops += other.arith_ops;
        self.global_accesses += other.global_accesses;
        self.global_transactions += other.global_transactions;
        self.local_accesses += other.local_accesses;
        self.constant_accesses += other.constant_accesses;
        self.private_accesses += other.private_accesses;
        self.barriers += other.barriers;
        self.work_groups += other.work_groups;
        self.work_items += other.work_items;
        self.device_cycles += other.device_cycles;
    }

    /// Device cycles implied by the counters under `cost`, assuming the
    /// counters describe `work_groups` homogeneous work-groups spread over
    /// the machine's compute units.
    pub fn charge(&mut self, cost: &CostModel) {
        let serial = self.arith_ops as f64 * cost.arith
            + self.global_transactions as f64 * cost.global_transaction
            + self.local_accesses as f64 * cost.local_access
            + self.constant_accesses as f64 * cost.constant_access
            + self.private_accesses as f64 * cost.private_access
            + self.barriers as f64 * cost.barrier;
        let groups = self.work_groups.max(1) as f64;
        let waves = (groups / cost.compute_units as f64).ceil();
        self.device_cycles = serial / groups * waves;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_scales_with_waves() {
        let cost = CostModel {
            compute_units: 4,
            ..CostModel::default()
        };
        let mut s = ExecStats {
            arith_ops: 800,
            work_groups: 8,
            ..ExecStats::default()
        };
        s.charge(&cost);
        // 8 groups over 4 CUs = 2 waves; 100 arith per group.
        assert_eq!(s.device_cycles, 200.0);
        let mut s1 = ExecStats {
            arith_ops: 800,
            work_groups: 4,
            ..ExecStats::default()
        };
        s1.charge(&cost);
        assert_eq!(s1.device_cycles, 200.0);
    }

    #[test]
    fn global_traffic_dominates_defaults() {
        let cost = CostModel::default();
        assert!(cost.global_transaction > 8.0 * cost.local_access);
        assert!(cost.local_access >= cost.arith);
    }
}
