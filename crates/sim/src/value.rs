//! Runtime values flowing through the interpreter.

use crate::memory::MemId;

/// Memory space of a memref view; drives the cost model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Space {
    /// Device global memory (accessor-backed).
    Global,
    /// Work-group local memory.
    Local,
    /// Per-work-item private memory.
    Private,
    /// Constant memory (host-propagated constant arrays, §VII-B).
    Constant,
}

/// A memref view: a base allocation plus an element offset and a static
/// shape (rank ≤ 3; `-1` extents only for rank-1 dynamic views).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MemRefVal {
    /// Backing allocation.
    pub mem: MemId,
    /// Element offset of the view's origin inside the allocation.
    pub offset: i64,
    /// Static extents, padded with 1s to rank 3.
    pub shape: [i64; 3],
    /// Number of meaningful dimensions.
    pub rank: u32,
    /// Memory space, for the cost model.
    pub space: Space,
}

impl MemRefVal {
    /// Row-major linearized element index for `indices`.
    pub fn linearize(&self, indices: &[i64]) -> i64 {
        let mut addr = 0;
        for (d, &i) in indices.iter().enumerate() {
            let extent = self.shape[d];
            if extent >= 0 {
                addr = addr * extent + i;
            } else {
                // dynamic rank-1 view
                addr += i;
            }
        }
        self.offset + addr
    }
}

/// An accessor at run time: a window into a global allocation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AccessorVal {
    /// Backing allocation.
    pub mem: MemId,
    /// Full range of the accessor (the buffer range for non-ranged
    /// accessors).
    pub range: [i64; 3],
    /// Access offset (ranged accessors).
    pub offset: [i64; 3],
    /// Number of meaningful dimensions.
    pub rank: u32,
    /// Loads served from the constant cache (host-propagated data).
    pub constant: bool,
}

impl AccessorVal {
    /// Element offset of an id within this accessor.
    pub fn linearize(&self, id: &[i64]) -> i64 {
        let mut addr = 0;
        for (d, &i) in id.iter().enumerate().take(self.rank as usize) {
            addr = addr * self.range[d] + (i + self.offset[d]);
        }
        addr
    }
}

/// The position bundle handed to a kernel as its `item`/`nd_item` argument.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct NdItemVal {
    /// Global position, per dimension.
    pub global_id: [i64; 3],
    /// Position inside the work-group, per dimension.
    pub local_id: [i64; 3],
    /// Work-group position, per dimension.
    pub group_id: [i64; 3],
    /// Global extent, per dimension.
    pub global_range: [i64; 3],
    /// Work-group extent, per dimension.
    pub local_range: [i64; 3],
    /// Number of meaningful dimensions.
    pub rank: u32,
}

impl NdItemVal {
    /// Number of work-groups along dimension `d`.
    pub fn group_range(&self, d: usize) -> i64 {
        self.global_range[d] / self.local_range[d]
    }

    /// Linear id of the work-item inside its work-group.
    pub fn local_linear_id(&self) -> i64 {
        let mut id = 0;
        for d in 0..self.rank as usize {
            id = id * self.local_range[d] + self.local_id[d];
        }
        id
    }

    /// Linear global id.
    pub fn global_linear_id(&self) -> i64 {
        let mut id = 0;
        for d in 0..self.rank as usize {
            id = id * self.global_range[d] + self.global_id[d];
        }
        id
    }
}

/// A small fixed-size vector value (`!sycl.id<n>` / `!sycl.range<n>`).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct VecVal {
    /// Components, padded with 0s to rank 3.
    pub data: [i64; 3],
    /// Number of meaningful components.
    pub rank: u32,
}

/// Any value the interpreter can hold. `Copy` keeps the environment cheap.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum RtValue {
    /// Integers of any width, `index`, and `i1`.
    Int(i64),
    /// A 32-bit float.
    F32(f32),
    /// A 64-bit float.
    F64(f64),
    /// `!sycl.id<n>` or `!sycl.range<n>`.
    Vec(VecVal),
    /// `!sycl.nd_range<n>`: global + local ranges.
    NdRange(VecVal, VecVal),
    /// A memref view.
    MemRef(MemRefVal),
    /// A runtime accessor.
    Accessor(AccessorVal),
    /// `!sycl.item<n>` / `!sycl.nd_item<n>` / `!sycl.group<n>`.
    Item(NdItemVal),
    /// Opaque host pointer (host code is not executed by this simulator).
    Ptr(u64),
    /// The value of ops with no results.
    Unit,
}

impl RtValue {
    /// The integer payload, if this is an `Int`.
    pub fn as_int(self) -> Option<i64> {
        match self {
            RtValue::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The float payload widened to `f64`, if this is a float.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            RtValue::F32(v) => Some(v as f64),
            RtValue::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The integer payload as a truthiness test, if this is an `Int`.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            RtValue::Int(v) => Some(v != 0),
            _ => None,
        }
    }

    /// The memref payload, if this is a `MemRef`.
    pub fn as_memref(self) -> Option<MemRefVal> {
        match self {
            RtValue::MemRef(v) => Some(v),
            _ => None,
        }
    }

    /// The accessor payload, if this is an `Accessor`.
    pub fn as_accessor(self) -> Option<AccessorVal> {
        match self {
            RtValue::Accessor(v) => Some(v),
            _ => None,
        }
    }

    /// The item payload, if this is an `Item`.
    pub fn as_item(self) -> Option<NdItemVal> {
        match self {
            RtValue::Item(v) => Some(v),
            _ => None,
        }
    }

    /// The vector payload, if this is a `Vec`.
    pub fn as_vec(self) -> Option<VecVal> {
        match self {
            RtValue::Vec(v) => Some(v),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_linearization() {
        let m = MemRefVal {
            mem: MemId(0),
            offset: 10,
            shape: [4, 8, 1],
            rank: 2,
            space: Space::Private,
        };
        assert_eq!(m.linearize(&[0, 0]), 10);
        assert_eq!(m.linearize(&[1, 2]), 10 + 8 + 2);
        let dynv = MemRefVal {
            mem: MemId(0),
            offset: 5,
            shape: [-1, 1, 1],
            rank: 1,
            space: Space::Global,
        };
        assert_eq!(dynv.linearize(&[7]), 12);
    }

    #[test]
    fn accessor_linearization_with_offset() {
        let a = AccessorVal {
            mem: MemId(1),
            range: [8, 8, 1],
            offset: [1, 2, 0],
            rank: 2,
            constant: false,
        };
        assert_eq!(a.linearize(&[0, 0]), 8 + 2);
        assert_eq!(a.linearize(&[3, 4]), (3 + 1) * 8 + 6);
    }

    #[test]
    fn nd_item_linear_ids() {
        let item = NdItemVal {
            global_id: [3, 5, 0],
            local_id: [1, 1, 0],
            group_id: [1, 2, 0],
            global_range: [8, 8, 1],
            local_range: [2, 2, 1],
            rank: 2,
        };
        assert_eq!(item.local_linear_id(), 3);
        assert_eq!(item.global_linear_id(), 29);
        assert_eq!(item.group_range(0), 4);
    }
}
