//! The simulated device: ND-range scheduling of work-groups and work-items
//! with co-operative barrier semantics, engine/thread selection and the
//! cross-launch kernel-plan cache.

use crate::cost::{CostModel, ExecStats};
use crate::interp::{enclosing_module, ExecCtx, Stop, WorkItemState};
use crate::limits::{CancelToken, ExecLimits, FaultPlan, FaultSite, OpMeter};
use crate::memory::MemoryPool;
use crate::plan::{decode_kernel, fuse_plan_with, profile_summary, FuseLevel, KernelPlan};
use crate::pool::{
    run_plan_graph_limited, run_plan_launch, HostNode, HostView, LaunchDag, PlanLaunch,
    SchedPolicy, SharedPool,
};
use crate::value::{NdItemVal, RtValue};
use crate::verify::{verify_plan, PlanFacts, VerifyMode};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Instant;
use sycl_mlir_ir::{Module, OpId};

pub use crate::interp::SimError;

/// Which execution engine a [`Device`] runs kernels on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// The resumable tree-walk interpreter over the structured IR — the
    /// reference implementation.
    TreeWalk,
    /// The pre-decoded [`KernelPlan`] register-file executor (decodes once
    /// per launch, then shares the immutable plan across all work-items).
    /// Falls back to [`Engine::TreeWalk`] for kernels the decoder does not
    /// understand.
    Plan,
}

impl Engine {
    /// The engine named by the `SYCL_MLIR_SIM_ENGINE` environment variable
    /// (`"tree"` or `"plan"`); [`Engine::Plan`] when unset. An unrecognized
    /// value falls back to [`Engine::Plan`] with a warning on stderr, so a
    /// typo cannot silently masquerade as a tree-walk baseline.
    pub fn from_env() -> Engine {
        match std::env::var("SYCL_MLIR_SIM_ENGINE").as_deref() {
            Ok("tree") | Ok("treewalk") | Ok("tree-walk") => Engine::TreeWalk,
            Ok("plan") | Err(_) => Engine::Plan,
            Ok(other) => {
                eprintln!(
                    "warning: unknown SYCL_MLIR_SIM_ENGINE `{other}` (expected `tree` or `plan`); using the plan engine"
                );
                Engine::Plan
            }
        }
    }

    /// The engine's display name (`"tree-walk"` or `"plan"`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::TreeWalk => "tree-walk",
            Engine::Plan => "plan",
        }
    }
}

/// The worker count named by the `SYCL_MLIR_SIM_THREADS` environment
/// variable; `1` (sequential) when unset. `0` or `auto` selects the
/// machine's available parallelism. An unparsable value falls back to `1`
/// with a warning on stderr, so a typo cannot silently change results —
/// though results are bit-identical for every worker count by design.
pub fn threads_from_env() -> usize {
    match std::env::var("SYCL_MLIR_SIM_THREADS").as_deref() {
        Err(_) => 1,
        Ok("auto") | Ok("0") => auto_threads(),
        Ok(s) => match s.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "warning: unparsable SYCL_MLIR_SIM_THREADS `{s}` (expected a count, `auto` or `0`); running sequentially"
                );
                1
            }
        },
    }
}

/// The machine's available parallelism (`1` when undeterminable).
pub fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parse an on/off knob environment variable shared by the fuse and batch
/// switches: `on`/`1`/`true` enable, `off`/`0`/`false` disable, unset
/// falls back to `default`, anything else warns on stderr and falls back
/// to `default` — a typo cannot silently flip an execution knob.
fn bool_knob_from_env(var: &str, default: bool) -> bool {
    match std::env::var(var).as_deref() {
        Err(_) => default,
        Ok("on") | Ok("1") | Ok("true") => true,
        Ok("off") | Ok("0") | Ok("false") => false,
        Ok(other) => {
            let state = if default { "on" } else { "off" };
            eprintln!(
                "warning: unknown {var} `{other}` (expected `on` or `off`); defaulting to {state}"
            );
            default
        }
    }
}

/// The fusion level named by the `SYCL_MLIR_SIM_FUSE` environment
/// variable (`on`/`pairs`/`off`); `on` (pairs + chains) when unset.
/// Gates the plan decoder's peephole fusion pass
/// ([`crate::plan::fuse_plan_with`]); `pairs` keeps the two-instruction
/// rewrites but disables three-instruction chains — the A/B axis the
/// `engines` bench measures.
pub fn fuse_from_env() -> FuseLevel {
    match std::env::var("SYCL_MLIR_SIM_FUSE") {
        Err(_) => FuseLevel::Chains,
        Ok(s) => FuseLevel::parse(&s).unwrap_or_else(|| {
            eprintln!(
                "warning: unknown SYCL_MLIR_SIM_FUSE `{s}` (expected `on`, `pairs` or `off`); defaulting to on"
            );
            FuseLevel::Chains
        }),
    }
}

/// The batching setting named by the `SYCL_MLIR_SIM_BATCH` environment
/// variable (`on`/`off`); `on` when unset. Gates launch-level parallelism
/// over dependency-free command groups ([`Device::launch_batch`]).
pub fn batch_from_env() -> bool {
    bool_knob_from_env("SYCL_MLIR_SIM_BATCH", true)
}

/// The overlap setting named by the `SYCL_MLIR_SIM_OVERLAP` environment
/// variable (`on`/`off`); `on` when unset. With overlap on (and batching
/// on), the runtime hands the device whole hazard graphs and a launch
/// starts the moment its own dependencies retire ([`Device::launch_graph`]
/// over [`run_plan_graph`](crate::pool::run_plan_graph)); with overlap off, dependency levels still run
/// behind a barrier (the PR 3 batch schedule, kept as a debug path).
pub fn overlap_from_env() -> bool {
    bool_knob_from_env("SYCL_MLIR_SIM_OVERLAP", true)
}

/// The host-node setting named by the `SYCL_MLIR_SIM_HOST_NODES`
/// environment variable (`on`/`off`); `on` when unset. With host nodes
/// on, host tasks run as first-class [`HostNode`] launches inside the
/// hazard graph (one graph spans the whole program); with host nodes
/// off, the runtime falls back to segmenting programs around host tasks
/// and running each segment as its own graph — the pre-host-node
/// schedule, kept as an A/B baseline.
pub fn host_nodes_from_env() -> bool {
    bool_knob_from_env("SYCL_MLIR_SIM_HOST_NODES", true)
}

/// The ready-set policy named by the `SYCL_MLIR_SIM_SCHED` environment
/// variable (`fifo`/`critpath`); [`SchedPolicy::CritPath`] when unset.
/// Selects how the graph scheduler orders launches whose dependencies
/// have all retired — results are bit-identical either way (the policy
/// only affects wall time), so `fifo` exists as the A/B baseline. An
/// unknown value warns on stderr and falls back to `critpath`.
pub fn sched_from_env() -> SchedPolicy {
    match std::env::var("SYCL_MLIR_SIM_SCHED") {
        Err(_) => SchedPolicy::CritPath,
        Ok(s) => SchedPolicy::parse(&s).unwrap_or_else(|| {
            eprintln!(
                "warning: unknown SYCL_MLIR_SIM_SCHED `{s}` (expected `fifo` or `critpath`); defaulting to critpath"
            );
            SchedPolicy::CritPath
        }),
    }
}

/// The static-verification mode named by the `SYCL_MLIR_SIM_VERIFY`
/// environment variable (`strict`/`lint`/`off`); [`VerifyMode::Lint`]
/// when unset. Selects what happens to the decode-time plan verifier's
/// findings ([`crate::verify`]): `strict` rejects malformed plans (and
/// undecodable kernels) with a structured error, `lint` reports them on
/// stderr and runs anyway, `off` skips the verifier entirely — results
/// of runnable kernels are bit-identical across all three. An unknown
/// value warns on stderr and falls back to `lint`.
pub fn verify_from_env() -> VerifyMode {
    match std::env::var("SYCL_MLIR_SIM_VERIFY") {
        Err(_) => VerifyMode::Lint,
        Ok(s) => VerifyMode::parse(&s).unwrap_or_else(|| {
            eprintln!(
                "warning: unknown SYCL_MLIR_SIM_VERIFY `{s}` (expected `strict`, `lint` or `off`); defaulting to lint"
            );
            VerifyMode::Lint
        }),
    }
}

/// The profiling setting named by the `SYCL_MLIR_SIM_PROFILE` environment
/// variable (`on`/`off`); `off` when unset. When on, plan-engine launches
/// count every executed instruction; [`Device::profile_report`] renders
/// the totals and the hottest dataflow-adjacent pairs (the ranked
/// candidates for the next [`crate::plan::fuse_plan`] superinstruction).
pub fn profile_from_env() -> bool {
    bool_knob_from_env("SYCL_MLIR_SIM_PROFILE", false)
}

/// When the closure-JIT tier ([`crate::jit`]) may take over a plan-engine
/// kernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JitMode {
    /// Never compile; every launch runs the plan interpreter.
    Off,
    /// Tier up once a cached plan has been launched
    /// [`Device::jit_threshold`] times (the default).
    On,
    /// Compile on the first launch, skipping the warm-up count — the
    /// deterministic setting the differential suites pin.
    Always,
}

impl JitMode {
    /// Parse a mode spelling (`on`/`1`/`true`, `off`/`0`/`false`,
    /// `always`); `None` for anything else.
    pub fn parse(s: &str) -> Option<JitMode> {
        match s {
            "on" | "1" | "true" => Some(JitMode::On),
            "off" | "0" | "false" => Some(JitMode::Off),
            "always" => Some(JitMode::Always),
            _ => None,
        }
    }

    /// The mode's display name (`"on"`, `"off"` or `"always"`).
    pub fn name(self) -> &'static str {
        match self {
            JitMode::Off => "off",
            JitMode::On => "on",
            JitMode::Always => "always",
        }
    }
}

/// The closure-JIT mode named by the `SYCL_MLIR_SIM_JIT` environment
/// variable (`on`/`off`/`always`); `on` when unset. Selects whether hot
/// plans tier up into compiled closure chains ([`crate::jit`]); the tiers
/// are bit-identical, so this only trades compile time against dispatch
/// speed. An unknown value warns on stderr and falls back to `on`.
pub fn jit_from_env() -> JitMode {
    match std::env::var("SYCL_MLIR_SIM_JIT") {
        Err(_) => JitMode::On,
        Ok(s) => JitMode::parse(&s).unwrap_or_else(|| {
            eprintln!(
                "warning: unknown SYCL_MLIR_SIM_JIT `{s}` (expected `on`, `off` or `always`); defaulting to on"
            );
            JitMode::On
        }),
    }
}

/// The closure-JIT tier-up threshold named by the
/// `SYCL_MLIR_SIM_JIT_THRESHOLD` environment variable; `1` when unset.
/// Under [`JitMode::On`] a cached plan compiles once its launch count
/// (including the current launch) reaches this value. The default of `1`
/// compiles eagerly — compilation is a few hundred allocations, orders of
/// magnitude below one launch's execution, so warm-up gating only pays
/// off for pathological fleets of one-shot kernels; raise the threshold
/// to keep those on the interpreter. An unparsable value warns on stderr
/// and falls back to `1`.
pub fn jit_threshold_from_env() -> u64 {
    match std::env::var("SYCL_MLIR_SIM_JIT_THRESHOLD").as_deref() {
        Err(_) => 1,
        Ok(s) => match s.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!(
                    "warning: unparsable SYCL_MLIR_SIM_JIT_THRESHOLD `{s}` (expected a launch count); defaulting to 1"
                );
                1
            }
        },
    }
}

/// Launch geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NdRangeSpec {
    /// Global extent, padded with 1s to rank 3.
    pub global: [i64; 3],
    /// Work-group extent, padded with 1s to rank 3.
    pub local: [i64; 3],
    /// Number of meaningful dimensions.
    pub rank: u32,
}

impl NdRangeSpec {
    /// 1-dimensional range with an explicit work-group size.
    pub fn d1(global: i64, local: i64) -> NdRangeSpec {
        NdRangeSpec {
            global: [global, 1, 1],
            local: [local, 1, 1],
            rank: 1,
        }
    }

    /// 2-dimensional square range.
    pub fn d2(gx: i64, gy: i64, lx: i64, ly: i64) -> NdRangeSpec {
        NdRangeSpec {
            global: [gx, gy, 1],
            local: [lx, ly, 1],
            rank: 2,
        }
    }

    /// Total number of work-items.
    pub fn work_items(&self) -> i64 {
        self.global[..self.rank as usize].iter().product()
    }

    /// Work-group counts per dimension.
    pub fn groups(&self) -> [i64; 3] {
        [
            self.global[0] / self.local[0].max(1),
            self.global[1] / self.local[1].max(1),
            self.global[2] / self.local[2].max(1),
        ]
    }

    /// A zero global extent is legal (SYCL allows empty ranges): the
    /// launch has zero work-groups and executes nothing — the scheduler
    /// retires it eagerly so successors in a dependency chain still run.
    pub(crate) fn validate(&self) -> Result<(), SimError> {
        for d in 0..self.rank as usize {
            if self.local[d] <= 0 || self.global[d] < 0 {
                return Err(SimError::msg(format!("non-positive range in dim {d}")));
            }
            if self.global[d] % self.local[d] != 0 {
                return Err(SimError::msg(format!(
                    "global range {} not divisible by work-group size {} in dim {d}",
                    self.global[d], self.local[d]
                )));
            }
        }
        Ok(())
    }
}

/// One cached kernel decode: the outcome (a plan, or `None` for a kernel
/// the decoder cannot handle — relaunches then skip straight to the
/// tree-walk fallback instead of re-attempting the decode) plus the
/// module mutation epoch it was decoded at (stale once the module
/// changes).
#[derive(Clone, Debug)]
struct CachedPlan {
    epoch: u64,
    plan: Option<Arc<KernelPlan>>,
    /// Launches served from this entry (including the decoding one) —
    /// the closure tier's warm-up counter.
    launches: Cell<u64>,
    /// The closure-JIT compilation, once the entry tiered up
    /// ([`Device::jit_threshold`]); invalidated with the plan.
    jit: Option<Arc<crate::jit::JitKernel>>,
    /// Static-analysis facts from the decode-time verifier (site
    /// in-bounds proofs, barrier uniformity); `None` under `--verify=off`
    /// or when verification found errors in lint mode.
    facts: Option<Arc<PlanFacts>>,
    /// Strict-mode rejection (verification failure or undecodable
    /// kernel), cached so an iterative workload pays the rejection once
    /// per epoch — every launch gets the identical structured error.
    rejected: Option<SimError>,
}

/// One decoded-and-verified cache entry as handed to the launch paths.
type PlanEntry = (
    Arc<KernelPlan>,
    Option<Arc<crate::jit::JitKernel>>,
    Option<Arc<PlanFacts>>,
);

/// Soft bound on cached plans per device; prevents unbounded growth when
/// one device outlives many modules (the differential sweeps).
const PLAN_CACHE_CAP: usize = 256;

/// A simulated GPU.
///
/// Under [`Engine::Plan`], decoded [`KernelPlan`]s are cached **across
/// launches**, keyed by `(module id, kernel op)` and validated against the
/// module's mutation epoch: re-launching an unmutated kernel skips the
/// decode entirely, while any IR mutation in between (e.g. AdaptiveCpp
/// JIT re-specialization) transparently re-decodes. With `threads > 1`,
/// work-groups of a launch run on a pool of OS threads (plan engine only;
/// the tree-walk reference stays sequential) — results and statistics are
/// bit-identical for every worker count.
#[derive(Clone, Debug)]
pub struct Device {
    /// The analytic cost model charged per launch.
    pub cost: CostModel,
    /// Which execution engine launches run on.
    pub engine: Engine,
    /// Worker threads for plan-engine launches (1 = sequential).
    pub threads: usize,
    /// How far to peephole-fuse decoded plans
    /// ([`crate::plan::fuse_plan_with`]); plan engine only.
    pub fuse: FuseLevel,
    /// Allow [`Device::launch_batch`] to run dependency-free launches
    /// concurrently (the runtime consults this before batching).
    pub batch: bool,
    /// Allow [`Device::launch_graph`] to overlap dependency levels: a
    /// launch starts as soon as its own predecessors retire (the runtime
    /// consults this when choosing a schedule; requires `batch`).
    pub overlap: bool,
    /// Count executed plan instructions ([`Device::profile_report`]).
    pub profile: bool,
    /// When the closure-JIT tier may take over a cached plan
    /// ([`JitMode`]; plan engine only, bit-identical either way).
    pub jit: JitMode,
    /// Launch count (per cached plan, current launch included) at which
    /// [`JitMode::On`] tiers up into the closure chain.
    pub jit_threshold: u64,
    /// Run host tasks as first-class graph nodes ([`HostNode`]); the
    /// runtime consults this when building schedules. Off falls back to
    /// segmenting programs around host tasks (the A/B baseline).
    pub host_nodes: bool,
    /// Ready-set ordering policy of the graph scheduler ([`SchedPolicy`]);
    /// affects wall time only, never results.
    pub sched: SchedPolicy,
    /// Per-launch execution limits ([`ExecLimits`]): weighted-operation
    /// budget, memory cap, wall-clock deadline, cancellation token and
    /// injected fault. All off by default (modulo the `SYCL_MLIR_SIM_*`
    /// environment knobs), in which case the executors skip metering
    /// entirely. Independent of the plan cache — changing limits never
    /// re-decodes a kernel.
    pub limits: ExecLimits,
    /// What the decode-time plan verifier does with its findings
    /// ([`VerifyMode`]): `strict` rejects, `lint` (the default) reports
    /// and runs, `off` skips verification. Part of nothing bit-visible:
    /// runnable kernels produce identical outputs, statistics and error
    /// positions under all three modes.
    pub verify: VerifyMode,
    plan_cache: RefCell<HashMap<(u64, OpId, FuseLevel), CachedPlan>>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
    jit_compiles: Cell<u64>,
    jit_launches: Cell<u64>,
    verify_stats: RefCell<VerifyCounters>,
    profile_ops: RefCell<BTreeMap<&'static str, u64>>,
    profile_pairs: RefCell<BTreeMap<(&'static str, &'static str), u64>>,
}

/// Aggregated decode-time verifier statistics of one device
/// ([`Device::verify_counters`]): what the static-analysis passes proved
/// across every plan verified so far, and what that cost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyCounters {
    /// Plans the verifier ran over (once per decode, not per launch).
    pub plans: u64,
    /// Accessor/memref access sites seen across verified plans.
    pub sites_total: u64,
    /// Sites with a symbolic in-bounds proof (the unchecked-path
    /// candidates; actual elision is decided per launch when the proof
    /// is instantiated against concrete geometry and buffer lengths).
    pub sites_proven: u64,
    /// `sycl.group.barrier` ops seen across verified plans' source IR.
    pub barriers_total: u64,
    /// Barriers the IR uniformity analysis proved to sit in uniform
    /// control flow (divergence bookkeeping skipped when *all* of a
    /// plan's barriers are uniform).
    pub barriers_uniform: u64,
    /// Total wall time spent in the verifier, in nanoseconds.
    pub verify_ns: u64,
    /// Plans rejected under strict mode (verification failure or
    /// undecodable kernel).
    pub rejected: u64,
    /// Individual findings reported (but not enforced) under lint mode.
    pub lint_findings: u64,
}

impl Default for Device {
    fn default() -> Device {
        Device {
            cost: CostModel::default(),
            engine: Engine::from_env(),
            threads: threads_from_env(),
            fuse: fuse_from_env(),
            batch: batch_from_env(),
            overlap: overlap_from_env(),
            profile: profile_from_env(),
            jit: jit_from_env(),
            jit_threshold: jit_threshold_from_env(),
            host_nodes: host_nodes_from_env(),
            sched: sched_from_env(),
            limits: ExecLimits::from_env(),
            verify: verify_from_env(),
            plan_cache: RefCell::new(HashMap::new()),
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
            jit_compiles: Cell::new(0),
            jit_launches: Cell::new(0),
            verify_stats: RefCell::new(VerifyCounters::default()),
            profile_ops: RefCell::new(BTreeMap::new()),
            profile_pairs: RefCell::new(BTreeMap::new()),
        }
    }
}

impl Device {
    /// A device with every knob at its environment-variable default.
    pub fn new() -> Device {
        Device::default()
    }

    /// A default device with an explicit cost model.
    pub fn with_cost(cost: CostModel) -> Device {
        Device {
            cost,
            ..Device::default()
        }
    }

    /// A default device with an explicit engine.
    pub fn with_engine(engine: Engine) -> Device {
        Device {
            engine,
            ..Device::default()
        }
    }

    /// A default device with an explicit worker count.
    pub fn with_threads(threads: usize) -> Device {
        Device {
            threads,
            ..Device::default()
        }
    }

    /// Builder-style engine override.
    pub fn engine(mut self, engine: Engine) -> Device {
        self.engine = engine;
        self
    }

    /// Builder-style worker-count override.
    pub fn threads(mut self, threads: usize) -> Device {
        self.threads = threads;
        self
    }

    /// Builder-style fusion override: `true` enables the full chain
    /// level, `false` disables fusion entirely. See [`Device::fuse_level`]
    /// for the pairs-only middle setting.
    pub fn fuse(mut self, fuse: bool) -> Device {
        self.fuse = if fuse {
            FuseLevel::Chains
        } else {
            FuseLevel::Off
        };
        self
    }

    /// Builder-style fusion-level override ([`FuseLevel`]).
    pub fn fuse_level(mut self, level: FuseLevel) -> Device {
        self.fuse = level;
        self
    }

    /// Builder-style batching override.
    pub fn batch(mut self, batch: bool) -> Device {
        self.batch = batch;
        self
    }

    /// Builder-style overlap override (out-of-order launch scheduling).
    pub fn overlap(mut self, overlap: bool) -> Device {
        self.overlap = overlap;
        self
    }

    /// Builder-style profiling override (per-instruction counts).
    pub fn profile(mut self, profile: bool) -> Device {
        self.profile = profile;
        self
    }

    /// Builder-style closure-JIT mode override ([`JitMode`]).
    pub fn jit(mut self, jit: JitMode) -> Device {
        self.jit = jit;
        self
    }

    /// Builder-style closure-JIT tier-up threshold override (launch count
    /// per cached plan, current launch included).
    pub fn jit_threshold(mut self, threshold: u64) -> Device {
        self.jit_threshold = threshold;
        self
    }

    /// Builder-style host-node override: `false` makes the runtime
    /// segment programs around host tasks (the A/B baseline) instead of
    /// running them as graph nodes.
    pub fn host_nodes(mut self, host_nodes: bool) -> Device {
        self.host_nodes = host_nodes;
        self
    }

    /// Builder-style ready-set policy override ([`SchedPolicy`]).
    pub fn sched(mut self, sched: SchedPolicy) -> Device {
        self.sched = sched;
        self
    }

    /// Builder-style weighted-operation budget: a launch fails with
    /// [`LimitKind::Ops`](crate::LimitKind::Ops) once it has executed
    /// this many weighted operations. Superinstructions charge the
    /// weight of the instructions they replace, so the budget does not
    /// drift with the fusion level.
    pub fn max_ops(mut self, ops: u64) -> Device {
        self.limits.max_ops = Some(ops);
        self
    }

    /// Builder-style memory cap: bytes of kernel-driven allocation
    /// growth (private/local allocas, materialized dense constants) a
    /// launch may request per worker before it fails with
    /// [`LimitKind::Memory`](crate::LimitKind::Memory).
    pub fn mem_cap(mut self, bytes: u64) -> Device {
        self.limits.mem_cap = Some(bytes);
        self
    }

    /// Builder-style wall-clock deadline, in milliseconds per launch (or
    /// launch graph), measured from submission; a launch still running
    /// past it fails with
    /// [`LimitKind::Deadline`](crate::LimitKind::Deadline).
    pub fn deadline_ms(mut self, ms: u64) -> Device {
        self.limits.deadline_ms = Some(ms);
        self
    }

    /// Builder-style cancellation token: flip the token from any thread
    /// and in-flight launches stop at their next check boundary with
    /// [`LimitKind::Cancelled`](crate::LimitKind::Cancelled).
    pub fn cancel_token(mut self, token: CancelToken) -> Device {
        self.limits.cancel = Some(token);
        self
    }

    /// Builder-style injected fault ([`FaultPlan`]) for testing the
    /// failure paths: cancellation cascade, error ordering and
    /// post-failure device usability.
    pub fn fault(mut self, fault: FaultPlan) -> Device {
        self.limits.fault = Some(fault);
        self
    }

    /// Builder-style override of the whole limit set ([`ExecLimits`]).
    pub fn limits(mut self, limits: ExecLimits) -> Device {
        self.limits = limits;
        self
    }

    /// Builder-style static-verification mode override ([`VerifyMode`]).
    pub fn verify(mut self, verify: VerifyMode) -> Device {
        self.verify = verify;
        self
    }

    /// Aggregated decode-time verifier statistics so far
    /// ([`VerifyCounters`]).
    pub fn verify_counters(&self) -> VerifyCounters {
        *self.verify_stats.borrow()
    }

    /// `(hits, misses)` of the cross-launch plan cache so far. A hit means
    /// a launch reused a previously cached decode outcome (including a
    /// cached "not decodable"); a miss means the decoder ran (first
    /// launch, or the module mutated in between).
    pub fn plan_cache_counters(&self) -> (u64, u64) {
        (self.cache_hits.get(), self.cache_misses.get())
    }

    /// `(compiles, launches)` of the closure-JIT tier so far: how often a
    /// plan was compiled into a closure chain, and how many launches ran
    /// on the compiled tier (as opposed to the plan interpreter).
    pub fn jit_counters(&self) -> (u64, u64) {
        (self.jit_compiles.get(), self.jit_launches.get())
    }

    /// Whether a plan with `launches` recorded launches runs on the
    /// closure tier under this device's mode and threshold.
    fn wants_jit(&self, launches: u64) -> bool {
        match self.jit {
            JitMode::Off => false,
            JitMode::On => launches >= self.jit_threshold,
            JitMode::Always => true,
        }
    }

    /// The decoded plan for `kernel` — plus its closure-JIT compilation
    /// when the entry has tiered up ([`Device::jit`] /
    /// [`Device::jit_threshold`]) and the decode-time verifier's facts
    /// ([`PlanFacts`]) — reused from the cache when the module's
    /// mutation epoch still matches. `Ok(None)` if the kernel is not
    /// plan-decodable (the caller falls back to the tree walk); `Err`
    /// when [`VerifyMode::Strict`] rejects the kernel (verification
    /// failure, or an undecodable kernel — strict surfaces the decode
    /// failure as a structured error instead of the silent fallback).
    /// Every outcome is cached — an iterative workload with an
    /// undecodable or rejected kernel pays the decode/verify attempt
    /// once per epoch, not once per launch, and every relaunch reports
    /// the identical error. The launch counter (and with it the tier-up
    /// decision) is per cache entry, so a module mutation restarts the
    /// warm-up exactly like it re-decodes.
    fn cached_plan(&self, m: &Module, kernel: OpId) -> Result<Option<PlanEntry>, SimError> {
        let key = (m.module_id(), kernel, self.fuse);
        let epoch = m.mutation_epoch();
        let mut hit: Option<(PlanEntry, bool)> = None;
        if let Some(cached) = self.plan_cache.borrow().get(&key) {
            if cached.epoch == epoch {
                self.cache_hits.set(self.cache_hits.get() + 1);
                if let Some(e) = &cached.rejected {
                    return Err(e.clone());
                }
                match &cached.plan {
                    None => return Ok(None),
                    Some(plan) => {
                        let count = cached.launches.get() + 1;
                        cached.launches.set(count);
                        let want = self.wants_jit(count);
                        hit = Some((
                            (
                                plan.clone(),
                                cached.jit.clone().filter(|_| want),
                                cached.facts.clone(),
                            ),
                            want,
                        ));
                    }
                }
            }
        }
        if let Some(((plan, jit, facts), want)) = hit {
            let jit = match jit {
                Some(jit) => Some(jit),
                None if want => {
                    // Tier up: compile once, cache next to the plan.
                    let compiled = Arc::new(crate::jit::compile(&plan));
                    self.jit_compiles.set(self.jit_compiles.get() + 1);
                    if let Some(cached) = self.plan_cache.borrow_mut().get_mut(&key) {
                        cached.jit = Some(compiled.clone());
                    }
                    Some(compiled)
                }
                None => None,
            };
            if jit.is_some() {
                self.jit_launches.set(self.jit_launches.get() + 1);
            }
            return Ok(Some((plan, jit, facts)));
        }
        // Miss: decode, verify (pre-fusion — fusion preserves site ids,
        // so in-bounds proofs transfer to the fused plan unchanged),
        // then fuse.
        self.cache_misses.set(self.cache_misses.get() + 1);
        let mut rejected: Option<SimError> = None;
        let mut facts: Option<Arc<PlanFacts>> = None;
        let plan = match decode_kernel(m, kernel) {
            Ok(mut p) => {
                if self.verify != VerifyMode::Off {
                    match self.verify_decoded(m, kernel, &p) {
                        Ok(f) => facts = f.map(Arc::new),
                        Err(e) => rejected = Some(e),
                    }
                }
                if rejected.is_none() {
                    fuse_plan_with(&mut p, self.fuse);
                    Some(Arc::new(p))
                } else {
                    None
                }
            }
            Err(de) => {
                if self.verify == VerifyMode::Strict {
                    self.verify_stats.borrow_mut().rejected += 1;
                    rejected = Some(SimError::from(de));
                }
                None
            }
        };
        let jit = match &plan {
            Some(p) if self.wants_jit(1) => {
                self.jit_compiles.set(self.jit_compiles.get() + 1);
                Some(Arc::new(crate::jit::compile(p)))
            }
            _ => None,
        };
        if jit.is_some() {
            self.jit_launches.set(self.jit_launches.get() + 1);
        }
        let mut cache = self.plan_cache.borrow_mut();
        if cache.len() >= PLAN_CACHE_CAP {
            cache.clear();
        }
        cache.insert(
            key,
            CachedPlan {
                epoch,
                plan: plan.clone(),
                launches: Cell::new(1),
                jit: jit.clone(),
                facts: facts.clone(),
                rejected: rejected.clone(),
            },
        );
        drop(cache);
        match rejected {
            Some(e) => Err(e),
            None => Ok(plan.map(|p| (p, jit, facts))),
        }
    }

    /// Run the decode-time static verifier over a freshly decoded
    /// (pre-fusion) plan: the structural, type-consistency and
    /// barrier-placement passes plus the interval abstract interpreter
    /// ([`verify_plan`]), then the IR-level barrier-uniformity pass.
    /// `Ok(Some(facts))` on a clean plan, `Ok(None)` when lint mode
    /// reported findings (the plan runs anyway, fully checked), `Err`
    /// with a structured message when strict mode rejects.
    fn verify_decoded(
        &self,
        m: &Module,
        kernel: OpId,
        plan: &KernelPlan,
    ) -> Result<Option<PlanFacts>, SimError> {
        let start = Instant::now();
        match verify_plan(plan) {
            Ok(mut facts) => {
                let (total, uniform) = barrier_uniformity(m, kernel);
                facts.barriers_total = total;
                facts.barriers_uniform = uniform;
                facts.verify_ns = start.elapsed().as_nanos() as u64;
                let mut vs = self.verify_stats.borrow_mut();
                vs.plans += 1;
                vs.sites_total += facts.sites_total as u64;
                vs.sites_proven += facts.sites_proven as u64;
                vs.barriers_total += total as u64;
                vs.barriers_uniform += uniform as u64;
                vs.verify_ns += facts.verify_ns;
                Ok(Some(facts))
            }
            Err(errs) => {
                let mut vs = self.verify_stats.borrow_mut();
                vs.plans += 1;
                vs.verify_ns += start.elapsed().as_nanos() as u64;
                if self.verify == VerifyMode::Strict {
                    vs.rejected += 1;
                    let mut msg = format!("plan verification failed: {}", errs[0]);
                    if errs.len() > 1 {
                        msg.push_str(&format!(" (+{} more)", errs.len() - 1));
                    }
                    Err(SimError::msg(msg))
                } else {
                    vs.lint_findings += errs.len() as u64;
                    for e in errs.iter().take(8) {
                        eprintln!("warning: plan verification (lint): {e}");
                    }
                    Ok(None)
                }
            }
        }
    }

    /// Execute `kernel` over `nd`, mutating `pool`. Returns the dynamic
    /// execution statistics with [`ExecStats::device_cycles`] charged.
    ///
    /// Under [`Engine::Plan`] the kernel is decoded at most once per
    /// mutation epoch into a [`KernelPlan`] shared by every work-item (and
    /// reused across launches); kernels the decoder cannot handle fall
    /// back to the tree-walk interpreter. With [`Device::threads`] `> 1`,
    /// work-groups of a plan-engine launch run in parallel.
    ///
    /// # Errors
    ///
    /// Fails on malformed launches, interpreter errors, or **divergent
    /// barriers** (some work-items of a group reach a barrier while others
    /// finish — the deadlock §V-C's uniformity analysis exists to prevent).
    /// With [`Device::limits`] set, a tripped limit fails the launch with
    /// a structured [`SimError::LimitExceeded`] — the device (and its plan
    /// cache) stays usable for subsequent launches.
    pub fn launch(
        &self,
        m: &Module,
        kernel: OpId,
        args: &[RtValue],
        nd: NdRangeSpec,
        pool: &mut MemoryPool,
    ) -> Result<ExecStats, SimError> {
        match self.engine {
            Engine::TreeWalk => launch_kernel_with(
                m,
                kernel,
                args,
                nd,
                pool,
                &self.cost,
                &self.limits,
                self.limits.deadline_instant(),
                0,
            ),
            Engine::Plan => match self.cached_plan(m, kernel) {
                Ok(Some((plan, jit, facts))) => {
                    // A graph of one launch — run_plan_launch_limited's own
                    // shape — so the closure tier flows through the same
                    // scheduler seam as graph launches.
                    let launches = [PlanLaunch {
                        plan: Some(&plan),
                        args,
                        nd,
                        jit: jit.as_deref(),
                        host: None,
                        facts: facts.as_deref(),
                    }];
                    let mut out = run_plan_graph_limited(
                        &launches,
                        &LaunchDag::independent(1),
                        pool,
                        &self.cost,
                        self.threads,
                        false,
                        &self.limits,
                        self.sched,
                    )?;
                    Ok(out.stats.pop().expect("one launch in, one stats out"))
                }
                // Reference fallback for non-decodable kernels.
                Ok(None) => launch_kernel_with(
                    m,
                    kernel,
                    args,
                    nd,
                    pool,
                    &self.cost,
                    &self.limits,
                    self.limits.deadline_instant(),
                    0,
                ),
                // Strict-mode rejection, stamped with this submission's
                // (launch, group) position like any launch failure.
                Err(e) => Err(e.at(0, 0)),
            },
        }
    }

    /// Execute a batch of **mutually independent** kernel launches,
    /// returning one [`ExecStats`] per launch, in batch order — the
    /// edge-free special case of [`Device::launch_graph`]: one worker
    /// pool drains work-groups from all launches through per-launch
    /// chunked claim cursors, so a launch too small to saturate the
    /// workers no longer serializes the queue.
    ///
    /// # Errors
    ///
    /// Fails like [`Device::launch`]; with several failing work-groups
    /// the error of the lexicographically smallest `(launch, group)` is
    /// reported.
    pub fn launch_batch(
        &self,
        m: &Module,
        batch: &[BatchLaunch],
        pool: &mut MemoryPool,
    ) -> Result<Vec<ExecStats>, SimError> {
        self.launch_graph(m, batch, &LaunchDag::independent(batch.len()), pool)
    }

    /// Execute a whole **launch graph** — kernel launches plus the hazard
    /// DAG ordering them — returning one [`ExecStats`] per launch, in
    /// slice order.
    ///
    /// Under [`Engine::Plan`], when every kernel of the graph is
    /// plan-decodable, the graph is handed to
    /// [`run_plan_graph`](crate::pool::run_plan_graph): launches
    /// start the moment their own predecessors retire, with work-groups
    /// claimed in per-worker chunks — no level barrier anywhere.
    /// Otherwise (tree-walk engine, or any kernel the decoder rejects)
    /// the launches run one at a time in slice order, which the caller
    /// must arrange to be a valid topological order of `dag` (the
    /// runtime's submission order always is). Either way each launch's
    /// statistics — and the buffers it writes — are bit-identical to
    /// sequential execution; only wall time differs.
    ///
    /// With [`Device::profile`] on, plan-engine runs additionally count
    /// every executed instruction into [`Device::profile_report`].
    ///
    /// # Errors
    ///
    /// Fails like [`Device::launch`]; with several failing work-groups
    /// the error of the lexicographically smallest `(launch, group)` is
    /// reported under every thread count and schedule.
    pub fn launch_graph(
        &self,
        m: &Module,
        batch: &[BatchLaunch],
        dag: &LaunchDag,
        pool: &mut MemoryPool,
    ) -> Result<Vec<ExecStats>, SimError> {
        if self.engine == Engine::Plan {
            // One slot per batch entry: `Some((plan, jit, facts))` for a
            // decoded kernel, `None` for a host node. Any *undecodable
            // kernel* clears `all_decodable` and the graph falls back to
            // sequential execution below; a strict-mode rejection fails
            // the whole graph, stamped with the offending launch index.
            let mut plans: Vec<Option<PlanEntry>> = Vec::with_capacity(batch.len());
            let mut all_decodable = true;
            for (li, b) in batch.iter().enumerate() {
                match b.kernel {
                    Some(k) => match self.cached_plan(m, k) {
                        Ok(Some(entry)) => plans.push(Some(entry)),
                        Ok(None) => {
                            all_decodable = false;
                            break;
                        }
                        Err(e) => return Err(e.at(li, 0)),
                    },
                    None => plans.push(None),
                }
            }
            if all_decodable {
                let launches: Vec<PlanLaunch<'_>> = plans
                    .iter()
                    .zip(batch)
                    .map(|(entry, b)| match entry {
                        Some((plan, jit, facts)) => PlanLaunch {
                            plan: Some(plan),
                            args: &b.args,
                            nd: b.nd,
                            jit: jit.as_deref(),
                            host: None,
                            facts: facts.as_deref(),
                        },
                        // A malformed entry (neither kernel nor host) is
                        // rejected by the graph validator.
                        None => PlanLaunch {
                            plan: None,
                            args: &b.args,
                            nd: b.nd,
                            jit: None,
                            host: b.host.as_ref(),
                            facts: None,
                        },
                    })
                    .collect();
                let out = run_plan_graph_limited(
                    &launches,
                    dag,
                    pool,
                    &self.cost,
                    self.threads,
                    self.profile,
                    &self.limits,
                    self.sched,
                )?;
                if let Some(profile) = &out.profile {
                    let mut ops = self.profile_ops.borrow_mut();
                    let mut pairs = self.profile_pairs.borrow_mut();
                    for (entry, counts) in plans.iter().zip(profile) {
                        if let Some((plan, _, _)) = entry {
                            profile_summary(plan, counts, &mut ops, &mut pairs);
                        }
                    }
                }
                return Ok(out.stats);
            }
        }
        // Tree-walk engine, or some kernel is not plan-decodable: run the
        // launches sequentially in slice order (identical results, no
        // launch overlap). Limits and injected faults still apply, with
        // the whole batch sharing one deadline and the fault targeting
        // the same launch index as under the graph scheduler.
        let deadline = self.limits.deadline_instant();
        batch
            .iter()
            .enumerate()
            .map(|(li, b)| match (b.kernel, &b.host) {
                (Some(kernel), None) => launch_kernel_with(
                    m,
                    kernel,
                    &b.args,
                    b.nd,
                    pool,
                    &self.cost,
                    &self.limits,
                    deadline,
                    li,
                ),
                (None, Some(node)) => {
                    run_host_serial(node, pool, &self.limits, deadline, li).map_err(|e| e.at(li, 0))
                }
                _ => Err(SimError::msg(
                    "a batch launch must carry exactly one of a kernel or a host node",
                )),
            })
            .collect()
    }

    /// Render the per-instruction execution counts accumulated by
    /// `--profile` runs: total executions per opcode, then the hottest
    /// dataflow-adjacent instruction pairs — the ranked candidates for
    /// the next [`crate::plan::fuse_plan`] superinstruction. `None` until a profiled
    /// plan-engine launch ran on this device.
    pub fn profile_report(&self) -> Option<String> {
        let ops = self.profile_ops.borrow();
        if ops.is_empty() {
            return None;
        }
        let mut out = String::from("== instruction profile (plan engine) ==\n");
        out.push_str(&format!("{:>16}  opcode\n", "executions"));
        let mut rows: Vec<(&'static str, u64)> = ops.iter().map(|(&k, &v)| (k, v)).collect();
        // Descending by count; the BTreeMap already fixed the tie order.
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        for (name, count) in rows {
            out.push_str(&format!("{count:>16}  {name}\n"));
        }
        let pairs = self.profile_pairs.borrow();
        if !pairs.is_empty() {
            out.push_str("\n== hottest dataflow-adjacent pairs (fusion candidates) ==\n");
            out.push_str(&format!("{:>16}  pair\n", "executions"));
            let mut rows: Vec<((&'static str, &'static str), u64)> =
                pairs.iter().map(|(&k, &v)| (k, v)).collect();
            rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            for ((a, b), count) in rows.into_iter().take(16) {
                out.push_str(&format!("{count:>16}  {a} -> {b}\n"));
            }
        }
        out.push_str("\n== execution tiers ==\n");
        out.push_str(&format!(
            "{:>16}  closure-jit compiles\n",
            self.jit_compiles.get()
        ));
        out.push_str(&format!(
            "{:>16}  closure-jit launches\n",
            self.jit_launches.get()
        ));
        let vs = self.verify_counters();
        if vs.plans > 0 || vs.rejected > 0 {
            out.push_str("\n== static analysis ==\n");
            out.push_str(&format!("{:>16}  plans verified\n", vs.plans));
            out.push_str(&format!(
                "{:>10}/{:<5}  access sites proven in-bounds\n",
                vs.sites_proven, vs.sites_total
            ));
            out.push_str(&format!(
                "{:>10}/{:<5}  barriers statically uniform\n",
                vs.barriers_uniform, vs.barriers_total
            ));
            out.push_str(&format!("{:>16}  verify time (us)\n", vs.verify_ns / 1_000));
            if vs.rejected > 0 {
                out.push_str(&format!("{:>16}  plans rejected (strict)\n", vs.rejected));
            }
            if vs.lint_findings > 0 {
                out.push_str(&format!("{:>16}  lint findings\n", vs.lint_findings));
            }
        }
        Some(out)
    }
}

/// Count the `sycl.group.barrier` ops of `kernel` and its transitive
/// callees in the source IR, and how many of them the uniformity
/// analysis ([`UniformityAnalysis`]) places in provably uniform control
/// flow — the decode-time pass that lets a launch skip per-group
/// divergence bookkeeping when *every* barrier is uniform. Per-function
/// analysis runs only for functions that actually contain barriers;
/// anything unresolvable stays counted but unproven (conservative).
fn barrier_uniformity(m: &Module, kernel: OpId) -> (u32, u32) {
    use std::collections::HashMap;
    use sycl_mlir_analysis::uniformity::UniformityAnalysis;

    /// Every op nested under `f`'s regions, depth-first.
    fn nested_ops(m: &Module, f: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        let mut stack: Vec<OpId> = Vec::new();
        for &r in m.op_regions(f) {
            for &b in m.region_blocks(r) {
                stack.extend(m.block_ops(b).iter().copied());
            }
        }
        while let Some(op) = stack.pop() {
            out.push(op);
            for &r in m.op_regions(op) {
                for &b in m.region_blocks(r) {
                    stack.extend(m.block_ops(b).iter().copied());
                }
            }
        }
        out
    }

    // Fixpoint over the call graph: `div[f]` is true when *some* path
    // from the kernel reaches `f` through divergent control flow (a
    // divergent call site, or a divergent caller) — barriers in such a
    // function must stay unproven, whatever their local placement.
    let mut analyses: HashMap<OpId, UniformityAnalysis> = HashMap::new();
    let mut div: HashMap<OpId, bool> = HashMap::new();
    div.insert(kernel, false);
    let mut work = vec![kernel];
    while let Some(f) = work.pop() {
        let fdiv = div[&f];
        for op in nested_ops(m, f) {
            if &*m.op_name_str(op) != "func.call" {
                continue;
            }
            let Some(callee) =
                sycl_mlir_dialects::func::resolve_callee(m, op, enclosing_module(m, f))
            else {
                continue;
            };
            let ua = analyses
                .entry(f)
                .or_insert_with(|| UniformityAnalysis::compute(m, f));
            let cdiv = fdiv || ua.is_divergent_at(m, op, f);
            match div.get_mut(&callee) {
                None => {
                    div.insert(callee, cdiv);
                    work.push(callee);
                }
                Some(prev) if cdiv && !*prev => {
                    *prev = true;
                    work.push(callee);
                }
                Some(_) => {}
            }
        }
    }
    let (mut total, mut uniform) = (0_u32, 0_u32);
    for (&f, &fdiv) in &div {
        let barriers: Vec<OpId> = nested_ops(m, f)
            .into_iter()
            .filter(|&op| &*m.op_name_str(op) == "sycl.group.barrier")
            .collect();
        total += barriers.len() as u32;
        if barriers.is_empty() || fdiv {
            continue;
        }
        let ua = analyses
            .entry(f)
            .or_insert_with(|| UniformityAnalysis::compute(m, f));
        uniform += barriers
            .iter()
            .filter(|&&b| !ua.is_divergent_at(m, b, f))
            .count() as u32;
    }
    (total, uniform)
}

/// One entry of a [`Device::launch_batch`] / [`Device::launch_graph`]
/// call: either a kernel with its bound arguments and geometry, or a
/// host-task node ([`HostNode`]) occupying one logical work-group.
/// Exactly one of [`BatchLaunch::kernel`] / [`BatchLaunch::host`] is
/// `Some`; use the constructors.
#[derive(Clone, Debug)]
pub struct BatchLaunch {
    /// The kernel function to launch (`None` for host nodes).
    pub kernel: Option<OpId>,
    /// Kernel arguments, excluding the trailing item parameter.
    pub args: Vec<RtValue>,
    /// Launch geometry (a single 1×1 group for host nodes).
    pub nd: NdRangeSpec,
    /// The host closure, when this entry is a host task.
    pub host: Option<HostNode>,
}

impl BatchLaunch {
    /// A kernel launch entry.
    pub fn kernel(kernel: OpId, args: Vec<RtValue>, nd: NdRangeSpec) -> BatchLaunch {
        BatchLaunch {
            kernel: Some(kernel),
            args,
            nd,
            host: None,
        }
    }

    /// A host-task entry: one logical 1×1 work-group running `node`.
    pub fn host_node(node: HostNode) -> BatchLaunch {
        BatchLaunch {
            kernel: None,
            args: Vec::new(),
            nd: NdRangeSpec::d1(1, 1),
            host: Some(node),
        }
    }
}

/// Free-function form of [`Device::launch`] (tree-walk, unlimited).
pub fn launch_kernel(
    m: &Module,
    kernel: OpId,
    args: &[RtValue],
    nd: NdRangeSpec,
    pool: &mut MemoryPool,
    cost: &CostModel,
) -> Result<ExecStats, SimError> {
    launch_kernel_with(
        m,
        kernel,
        args,
        nd,
        pool,
        cost,
        &ExecLimits::none(),
        None,
        0,
    )
}

/// [`launch_kernel`] under execution limits: the tree-walk twin of the
/// plan scheduler's metering. `launch` is the launch's index within its
/// graph (0 for single launches) — injected faults target it and limit
/// errors are stamped with it; `deadline` is the enclosing graph's
/// absolute deadline, shared by every launch of a serial batch.
#[allow(clippy::too_many_arguments)]
fn launch_kernel_with(
    m: &Module,
    kernel: OpId,
    args: &[RtValue],
    nd: NdRangeSpec,
    pool: &mut MemoryPool,
    cost: &CostModel,
    limits: &ExecLimits,
    deadline: Option<Instant>,
    launch: usize,
) -> Result<ExecStats, SimError> {
    nd.validate()?;
    // The tree walk has no decode stage; an injected decode fault fires
    // before any work-group runs, like a plan decode would.
    if let Some(FaultSite::Decode) = limits.fault_at(launch) {
        return Err(FaultPlan {
            launch,
            site: FaultSite::Decode,
        }
        .error()
        .at(launch, 0));
    }
    let claim_fault = match limits.fault_at(launch) {
        Some(FaultSite::Claim(n)) => n,
        _ => u64::MAX,
    };
    let groups = nd.groups();
    let mut ctx = ExecCtx::new(m, pool, cost);
    if !limits.is_none() {
        let budget = limits.max_ops.map(|b| Arc::new(AtomicU64::new(b)));
        ctx.limits = Some(Box::new(OpMeter::new(limits, budget, deadline, launch)));
    }

    let mut gi = 0_u64;
    for g0 in 0..groups[0] {
        for g1 in 0..groups[1] {
            for g2 in 0..groups[2] {
                if gi == claim_fault {
                    return Err(FaultPlan {
                        launch,
                        site: FaultSite::Claim(gi),
                    }
                    .error()
                    .at(launch, gi as usize));
                }
                run_work_group(m, kernel, args, nd, [g0, g1, g2], &mut ctx)
                    .map_err(|e| e.at(launch, gi as usize))?;
                ctx.next_work_group();
                gi += 1;
            }
        }
    }
    let mut stats = ctx.stats;
    stats.work_groups = (groups[0] * groups[1] * groups[2]) as u64;
    stats.work_items = nd.work_items() as u64;
    stats.charge(cost);
    Ok(stats)
}

/// The sequential-fallback twin of the graph scheduler's host-node
/// execution (tree-walk engine, or a graph containing an undecodable
/// kernel): honour the decode and claim fault sites, charge the node's
/// fixed weight through a per-execution [`OpMeter`], then run the
/// closure against a [`HostView`] of the pool. Errors are returned
/// unstamped; the caller stamps the `(launch, group)` position.
fn run_host_serial(
    node: &HostNode,
    pool: &mut MemoryPool,
    limits: &ExecLimits,
    deadline: Option<Instant>,
    launch: usize,
) -> Result<ExecStats, SimError> {
    match limits.fault_at(launch) {
        Some(FaultSite::Decode) => {
            return Err(FaultPlan {
                launch,
                site: FaultSite::Decode,
            }
            .error());
        }
        // A host node spans one logical work-group, so only claim 0 can
        // fire (matching the graph scheduler's claim accounting).
        Some(FaultSite::Claim(0)) => {
            return Err(FaultPlan {
                launch,
                site: FaultSite::Claim(0),
            }
            .error());
        }
        _ => {}
    }
    let metered = limits.max_ops.is_some()
        || limits.deadline_ms.is_some()
        || limits.cancel.is_some()
        || matches!(limits.fault_at(launch), Some(FaultSite::Instr(_)));
    if metered {
        let budget = limits.max_ops.map(|b| Arc::new(AtomicU64::new(b)));
        let mut meter = OpMeter::new(limits, budget, deadline, launch);
        let outcome = meter.charge(node.weight);
        meter.settle();
        outcome?;
    }
    let shared = SharedPool::new(pool);
    node.run(&HostView::new(&shared))?;
    Ok(ExecStats::default())
}

/// Execute a pre-decoded [`KernelPlan`] over `nd` — the [`Engine::Plan`]
/// launch path, sequential form. The plan is shared immutably by all
/// work-items; each work-item owns only its register file and frame
/// stack. See [`run_plan_launch`] for the multi-threaded form this
/// delegates to.
pub fn launch_plan(
    plan: &KernelPlan,
    args: &[RtValue],
    nd: NdRangeSpec,
    pool: &mut MemoryPool,
    cost: &CostModel,
) -> Result<ExecStats, SimError> {
    run_plan_launch(plan, args, nd, pool, cost, 1)
}

pub(crate) fn items_of_group(nd: NdRangeSpec, group: [i64; 3]) -> Vec<NdItemVal> {
    let mut items = Vec::with_capacity((nd.local[0] * nd.local[1] * nd.local[2]) as usize);
    for l0 in 0..nd.local[0] {
        for l1 in 0..nd.local[1] {
            for l2 in 0..nd.local[2] {
                let local_id = [l0, l1, l2];
                let global_id = [
                    group[0] * nd.local[0] + l0,
                    group[1] * nd.local[1] + l1,
                    group[2] * nd.local[2] + l2,
                ];
                items.push(NdItemVal {
                    global_id,
                    local_id,
                    group_id: group,
                    global_range: nd.global,
                    local_range: nd.local,
                    rank: nd.rank,
                });
            }
        }
    }
    items
}

/// Drive a work-group's items in co-operative rounds: every live work-item
/// runs to its next barrier or to completion; mixing the two within a
/// group is the divergent-barrier deadlock. Shared by both engines (and
/// every plan worker thread) so the scheduling policy (and its error
/// message) cannot drift between them.
pub(crate) fn cooperative_rounds<W>(
    items: &mut [W],
    group: [i64; 3],
    mut run: impl FnMut(&mut W) -> Result<Stop, SimError>,
) -> Result<(), SimError> {
    loop {
        let mut barriers = 0_usize;
        let mut finished = 0_usize;
        for wi in items.iter_mut() {
            match run(wi)? {
                Stop::Barrier => barriers += 1,
                Stop::Finished => finished += 1,
            }
        }
        if barriers == 0 {
            return Ok(());
        }
        if finished > 0 {
            return Err(SimError::msg(format!(
                "divergent barrier: {barriers} work-items wait at a barrier while {finished} finished (work-group {group:?})"
            )));
        }
    }
}

/// [`cooperative_rounds`] minus the divergence bookkeeping, for plans
/// whose every barrier the decode-time verifier proved statically
/// uniform: no per-round finished/waiting census, just "resume until no
/// work-item stops at a barrier". Bit-identical to the full version —
/// a statically-uniform barrier can never trip the divergence check, and
/// work-items still resume in the same order.
pub(crate) fn cooperative_rounds_uniform<W>(
    items: &mut [W],
    mut run: impl FnMut(&mut W) -> Result<Stop, SimError>,
) -> Result<(), SimError> {
    loop {
        let mut at_barrier = false;
        for wi in items.iter_mut() {
            at_barrier |= matches!(run(wi)?, Stop::Barrier);
        }
        if !at_barrier {
            return Ok(());
        }
    }
}

fn run_work_group(
    m: &Module,
    kernel: OpId,
    args: &[RtValue],
    nd: NdRangeSpec,
    group: [i64; 3],
    ctx: &mut ExecCtx<'_>,
) -> Result<(), SimError> {
    let mut items: Vec<WorkItemState> = items_of_group(nd, group)
        .into_iter()
        .map(|item| WorkItemState::new(m, kernel, args, item))
        .collect::<Result<_, _>>()?;
    cooperative_rounds(&mut items, group, |wi| wi.run(ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DataVec;
    use crate::value::AccessorVal;
    use sycl_mlir_dialects::arith::{self, constant_index};
    use sycl_mlir_dialects::func::{build_func, build_return};
    use sycl_mlir_ir::{Builder, Context, Module};
    use sycl_mlir_sycl::device as sdev;
    use sycl_mlir_sycl::types::{accessor_type, nd_item_type, AccessMode, Target};

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        sycl_mlir_sycl::register(&c);
        c
    }

    fn accessor(mem: crate::memory::MemId, len: i64) -> RtValue {
        RtValue::Accessor(AccessorVal {
            mem,
            range: [len, 1, 1],
            offset: [0, 0, 0],
            rank: 1,
            constant: false,
        })
    }

    /// a[i] = a[i] + b[i] over a 1-d range.
    #[test]
    fn vector_add_executes() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc = accessor_type(&c, c.f32_type(), 1, AccessMode::ReadWrite, Target::Global);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "vadd", &[acc.clone(), acc, nd1], &[]);
        sdev::mark_kernel(&mut m, func);
        let a = m.block_arg(entry, 0);
        let b_acc = m.block_arg(entry, 1);
        let item = m.block_arg(entry, 2);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let gid = sdev::global_id(&mut b, item, 0);
            let va = sdev::load_via_id(&mut b, a, &[gid]);
            let vb = sdev::load_via_id(&mut b, b_acc, &[gid]);
            let sum = arith::addf(&mut b, va, vb);
            sdev::store_via_id(&mut b, sum, a, &[gid]);
            build_return(&mut b, &[]);
        }
        let mut pool = MemoryPool::new();
        let n = 64_i64;
        let ma = pool.alloc(DataVec::F32((0..n).map(|i| i as f32).collect()));
        let mb = pool.alloc(DataVec::F32(vec![10.0; n as usize]));
        let device = Device::new();
        let stats = device
            .launch(
                &m,
                func,
                &[accessor(ma, n), accessor(mb, n)],
                NdRangeSpec::d1(n, 16),
                &mut pool,
            )
            .unwrap();
        let DataVec::F32(out) = pool.data(ma) else {
            panic!()
        };
        assert_eq!(out[0], 10.0);
        assert_eq!(out[63], 73.0);
        assert_eq!(stats.work_items, 64);
        assert_eq!(stats.work_groups, 4);
        // Coalescing: 64 f32 loads per array = 16 bytes/lane... 16 lanes *
        // 4B = 64B = 1 transaction per subgroup: 64/16 per array access
        // kind; two loaded arrays + 1 store = 3 * 4 = 12 transactions.
        assert_eq!(stats.global_accesses, 192);
        assert_eq!(stats.global_transactions, 12);
        assert!(stats.device_cycles > 0.0);
    }

    /// Work-group reduction via barrier: each item writes its local id to
    /// local memory; after a barrier, item 0 sums them.
    #[test]
    fn barrier_synchronizes_local_memory() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc = accessor_type(&c, c.i64_type(), 1, AccessMode::Write, Target::Global);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "wg_sum", &[acc, nd1], &[]);
        sdev::mark_kernel(&mut m, func);
        let out = m.block_arg(entry, 0);
        let item = m.block_arg(entry, 1);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let i64t = b.ctx().i64_type();
            let lid = sdev::local_id(&mut b, item, 0);
            let gid = sdev::group_id(&mut b, item, 0);
            let tile = sdev::local_alloca(&mut b, i64t.clone(), &[16]);
            let lid_i64 = lid; // index == int in the interpreter
            sycl_mlir_dialects::memref::store(&mut b, lid_i64, tile, &[lid]);
            let g = sdev::get_group(&mut b, item);
            sdev::group_barrier(&mut b, g);
            let zero = constant_index(&mut b, 0);
            let is_leader = arith::cmpi(&mut b, "eq", lid, zero);
            sycl_mlir_dialects::scf::build_if(
                &mut b,
                is_leader,
                &[],
                |inner| {
                    let z = constant_index(inner, 0);
                    let n = constant_index(inner, 16);
                    let one = constant_index(inner, 1);
                    let init = arith::constant_int(inner, 0, inner.ctx().index_type());
                    let sum_loop = sycl_mlir_dialects::scf::build_for(
                        inner,
                        z,
                        n,
                        one,
                        &[init],
                        |body, iv, iters| {
                            let v = sycl_mlir_dialects::memref::load(body, tile, &[iv]);
                            let s = arith::addi(body, iters[0], v);
                            vec![s]
                        },
                    );
                    let total = inner.module().op_result(sum_loop, 0);
                    sdev::store_via_id(inner, total, out, &[gid]);
                    vec![]
                },
                |_| vec![],
            );
            build_return(&mut b, &[]);
        }
        // The tile uses index type; element type for store is index -> i64 pool.
        let mut pool = MemoryPool::new();
        let mo = pool.alloc(DataVec::I64(vec![0; 4]));
        let device = Device::new();
        let stats = device
            .launch(
                &m,
                func,
                &[accessor(mo, 4)],
                NdRangeSpec::d1(64, 16),
                &mut pool,
            )
            .unwrap();
        let DataVec::I64(out_data) = pool.data(mo) else {
            panic!()
        };
        // Each group sums 0..15 = 120.
        assert_eq!(out_data, &vec![120; 4]);
        assert_eq!(stats.barriers, 4 * 16); // every work-item hits it once
        assert!(stats.local_accesses > 0);
    }

    /// A barrier under a divergent branch must be detected as a deadlock —
    /// exactly what §V-C's uniformity analysis guards against.
    #[test]
    fn divergent_barrier_detected() {
        let c = ctx();
        let mut m = Module::new(&c);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "bad", &[nd1], &[]);
        sdev::mark_kernel(&mut m, func);
        let item = m.block_arg(entry, 0);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let lid = sdev::local_id(&mut b, item, 0);
            let zero = constant_index(&mut b, 0);
            let cond = arith::cmpi(&mut b, "eq", lid, zero);
            let g = sdev::get_group(&mut b, item);
            sycl_mlir_dialects::scf::build_if(
                &mut b,
                cond,
                &[],
                |inner| {
                    sdev::group_barrier(inner, g);
                    vec![]
                },
                |_| vec![],
            );
            build_return(&mut b, &[]);
        }
        let mut pool = MemoryPool::new();
        let device = Device::new();
        let errv = device
            .launch(&m, func, &[], NdRangeSpec::d1(16, 16), &mut pool)
            .unwrap_err();
        assert!(errv.message().contains("divergent barrier"), "{errv}");
    }

    /// A second launch of an unmutated kernel must reuse the decoded plan;
    /// mutating the module in between must invalidate it.
    #[test]
    fn plan_cache_hits_unmutated_and_misses_mutated_kernels() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc = accessor_type(&c, c.f32_type(), 1, AccessMode::ReadWrite, Target::Global);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "inc", &[acc, nd1], &[]);
        sdev::mark_kernel(&mut m, func);
        let a = m.block_arg(entry, 0);
        let item = m.block_arg(entry, 1);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let gid = sdev::global_id(&mut b, item, 0);
            let v = sdev::load_via_id(&mut b, a, &[gid]);
            let f32t = b.ctx().f32_type();
            let one = arith::constant_float(&mut b, 1.0, f32t);
            let sum = arith::addf(&mut b, v, one);
            sdev::store_via_id(&mut b, sum, a, &[gid]);
            build_return(&mut b, &[]);
        }
        let n = 32_i64;
        let mut pool = MemoryPool::new();
        let ma = pool.alloc(DataVec::F32(vec![0.0; n as usize]));
        let device = Device::with_engine(Engine::Plan);
        let nd = NdRangeSpec::d1(n, 16);

        device
            .launch(&m, func, &[accessor(ma, n)], nd, &mut pool)
            .unwrap();
        assert_eq!(device.plan_cache_counters(), (0, 1), "first launch decodes");

        device
            .launch(&m, func, &[accessor(ma, n)], nd, &mut pool)
            .unwrap();
        assert_eq!(
            device.plan_cache_counters(),
            (1, 1),
            "unmutated relaunch hits"
        );

        // Any IR mutation (here: an attribute edit, like JIT
        // re-specialization would make) invalidates the cached plan.
        m.set_attr(func, "specialized", sycl_mlir_ir::Attribute::Int(1));
        device
            .launch(&m, func, &[accessor(ma, n)], nd, &mut pool)
            .unwrap();
        assert_eq!(
            device.plan_cache_counters(),
            (1, 2),
            "mutated relaunch re-decodes"
        );

        device
            .launch(&m, func, &[accessor(ma, n)], nd, &mut pool)
            .unwrap();
        assert_eq!(device.plan_cache_counters(), (2, 2), "then hits again");

        let DataVec::F32(out) = pool.data(ma) else {
            panic!()
        };
        assert_eq!(out[0], 4.0, "all four launches executed");
    }

    /// The work-group thread pool must produce bit-identical outputs and
    /// statistics for any worker count.
    #[test]
    fn parallel_launch_is_bit_identical_to_sequential() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc = accessor_type(&c, c.f32_type(), 1, AccessMode::ReadWrite, Target::Global);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "scale", &[acc.clone(), acc, nd1], &[]);
        sdev::mark_kernel(&mut m, func);
        let a = m.block_arg(entry, 0);
        let b_acc = m.block_arg(entry, 1);
        let item = m.block_arg(entry, 2);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let gid = sdev::global_id(&mut b, item, 0);
            let va = sdev::load_via_id(&mut b, a, &[gid]);
            let vb = sdev::load_via_id(&mut b, b_acc, &[gid]);
            let sum = arith::mulf(&mut b, va, vb);
            sdev::store_via_id(&mut b, sum, a, &[gid]);
            build_return(&mut b, &[]);
        }
        let n = 256_i64;
        let nd = NdRangeSpec::d1(n, 16);
        let run = |threads: usize| {
            let mut pool = MemoryPool::new();
            let ma = pool.alloc(DataVec::F32((0..n).map(|i| i as f32).collect()));
            let mb = pool.alloc(DataVec::F32(vec![0.5; n as usize]));
            let device = Device::with_engine(Engine::Plan).threads(threads);
            let stats = device
                .launch(&m, func, &[accessor(ma, n), accessor(mb, n)], nd, &mut pool)
                .unwrap();
            let DataVec::F32(out) = pool.data(ma) else {
                panic!()
            };
            (stats, out.clone())
        };
        let (seq_stats, seq_out) = run(1);
        for threads in [2, 4, 8] {
            let (par_stats, par_out) = run(threads);
            assert_eq!(seq_stats, par_stats, "stats differ at threads={threads}");
            assert_eq!(seq_out, par_out, "outputs differ at threads={threads}");
        }
    }

    /// Errors surfacing from parallel work-groups match the sequential
    /// engine (the failing group's error is reported).
    #[test]
    fn parallel_launch_reports_divergent_barrier() {
        let c = ctx();
        let mut m = Module::new(&c);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "bad", &[nd1], &[]);
        sdev::mark_kernel(&mut m, func);
        let item = m.block_arg(entry, 0);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let lid = sdev::local_id(&mut b, item, 0);
            let zero = constant_index(&mut b, 0);
            let cond = arith::cmpi(&mut b, "eq", lid, zero);
            let g = sdev::get_group(&mut b, item);
            sycl_mlir_dialects::scf::build_if(
                &mut b,
                cond,
                &[],
                |inner| {
                    sdev::group_barrier(inner, g);
                    vec![]
                },
                |_| vec![],
            );
            build_return(&mut b, &[]);
        }
        let mut pool = MemoryPool::new();
        let device = Device::with_engine(Engine::Plan).threads(4);
        let errv = device
            .launch(&m, func, &[], NdRangeSpec::d1(64, 16), &mut pool)
            .unwrap_err();
        assert!(errv.message().contains("divergent barrier"), "{errv}");
    }

    /// A batch of independent launches must produce the same per-launch
    /// statistics and the same buffers as launching them one at a time,
    /// for every worker count.
    #[test]
    fn batched_launches_match_sequential() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc = accessor_type(&c, c.f32_type(), 1, AccessMode::ReadWrite, Target::Global);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        // Two kernels writing disjoint buffers: scale and offset.
        let build = |m: &mut Module, name: &str, mul: bool| -> OpId {
            let (func, entry) = build_func(m, m.top(), name, &[acc.clone(), nd1.clone()], &[]);
            sdev::mark_kernel(m, func);
            let a = m.block_arg(entry, 0);
            let item = m.block_arg(entry, 1);
            let mut b = Builder::at_end(m, entry);
            let gid = sdev::global_id(&mut b, item, 0);
            let v = sdev::load_via_id(&mut b, a, &[gid]);
            let f32t = b.ctx().f32_type();
            let k = arith::constant_float(&mut b, 3.0, f32t);
            let out = if mul {
                arith::mulf(&mut b, v, k)
            } else {
                arith::addf(&mut b, v, k)
            };
            sdev::store_via_id(&mut b, out, a, &[gid]);
            build_return(&mut b, &[]);
            func
        };
        let _ = top;
        let scale = build(&mut m, "scale", true);
        let offset = build(&mut m, "offset", false);

        let n = 128_i64;
        let nd = NdRangeSpec::d1(n, 16);
        let run = |threads: usize, batched: bool| {
            let mut pool = MemoryPool::new();
            let ma = pool.alloc(DataVec::F32((0..n).map(|i| i as f32).collect()));
            let mb = pool.alloc(DataVec::F32((0..n).map(|i| (2 * i) as f32).collect()));
            let device = Device::with_engine(Engine::Plan).threads(threads);
            let batch = vec![
                BatchLaunch::kernel(scale, vec![accessor(ma, n)], nd),
                BatchLaunch::kernel(offset, vec![accessor(mb, n)], nd),
            ];
            let stats = if batched {
                device.launch_batch(&m, &batch, &mut pool).unwrap()
            } else {
                batch
                    .iter()
                    .map(|b| {
                        device
                            .launch(
                                &m,
                                b.kernel.expect("kernel entry"),
                                &b.args,
                                b.nd,
                                &mut pool,
                            )
                            .unwrap()
                    })
                    .collect()
            };
            let DataVec::F32(a) = pool.data(ma) else {
                panic!()
            };
            let DataVec::F32(b) = pool.data(mb) else {
                panic!()
            };
            (stats, a.clone(), b.clone())
        };
        let (ref_stats, ref_a, ref_b) = run(1, false);
        assert_eq!(ref_a[5], 15.0);
        assert_eq!(ref_b[5], 13.0);
        for threads in [1, 2, 4, 8] {
            let (stats, a, b) = run(threads, true);
            assert_eq!(ref_stats, stats, "stats differ at threads={threads}");
            assert_eq!(ref_a, a, "buffer a differs at threads={threads}");
            assert_eq!(ref_b, b, "buffer b differs at threads={threads}");
        }
    }

    /// A graph edge must order two launches touching the same buffer: the
    /// chained result `(x * 3) + 3` is only reachable when the scheduler
    /// honours the dependency, for every worker count.
    #[test]
    fn launch_graph_orders_hazard_edges() {
        use crate::pool::LaunchDag;
        let c = ctx();
        let mut m = Module::new(&c);
        let acc = accessor_type(&c, c.f32_type(), 1, AccessMode::ReadWrite, Target::Global);
        let nd1 = nd_item_type(&c, 1);
        let build = |m: &mut Module, name: &str, mul: bool| -> OpId {
            let (func, entry) = build_func(m, m.top(), name, &[acc.clone(), nd1.clone()], &[]);
            sdev::mark_kernel(m, func);
            let a = m.block_arg(entry, 0);
            let item = m.block_arg(entry, 1);
            let mut b = Builder::at_end(m, entry);
            let gid = sdev::global_id(&mut b, item, 0);
            let v = sdev::load_via_id(&mut b, a, &[gid]);
            let f32t = b.ctx().f32_type();
            let k = arith::constant_float(&mut b, 3.0, f32t);
            let out = if mul {
                arith::mulf(&mut b, v, k)
            } else {
                arith::addf(&mut b, v, k)
            };
            sdev::store_via_id(&mut b, out, a, &[gid]);
            build_return(&mut b, &[]);
            func
        };
        let scale = build(&mut m, "scale", true);
        let offset = build(&mut m, "offset", false);

        let n = 256_i64;
        let nd = NdRangeSpec::d1(n, 4); // many small groups: chunked claiming
        let dag = LaunchDag::chain(2);
        let run = |threads: usize| {
            let mut pool = MemoryPool::new();
            let ma = pool.alloc(DataVec::F32((0..n).map(|i| i as f32).collect()));
            let device = Device::with_engine(Engine::Plan).threads(threads);
            let batch = vec![
                BatchLaunch::kernel(scale, vec![accessor(ma, n)], nd),
                BatchLaunch::kernel(offset, vec![accessor(ma, n)], nd),
            ];
            let stats = device.launch_graph(&m, &batch, &dag, &mut pool).unwrap();
            let DataVec::F32(a) = pool.data(ma) else {
                panic!()
            };
            (stats, a.clone())
        };
        let (ref_stats, ref_a) = run(1);
        assert_eq!(ref_a[5], 5.0 * 3.0 + 3.0);
        for threads in [2, 4, 8] {
            let (stats, a) = run(threads);
            assert_eq!(ref_stats, stats, "stats differ at threads={threads}");
            assert_eq!(ref_a, a, "buffer differs at threads={threads}");
        }
    }

    /// An empty nd-range (zero global extent) is a legal no-op launch on
    /// both engines, and an empty launch in the middle of a dependency
    /// chain must not stall its successors — the scheduler retires it
    /// eagerly (there is no work-group whose completion could).
    #[test]
    fn empty_launches_are_noops_and_do_not_stall_chains() {
        use crate::pool::LaunchDag;
        let c = ctx();
        let mut m = Module::new(&c);
        let acc = accessor_type(&c, c.f32_type(), 1, AccessMode::ReadWrite, Target::Global);
        let nd1 = nd_item_type(&c, 1);
        let build = |m: &mut Module, name: &str, mul: bool| -> OpId {
            let (func, entry) = build_func(m, m.top(), name, &[acc.clone(), nd1.clone()], &[]);
            sdev::mark_kernel(m, func);
            let a = m.block_arg(entry, 0);
            let item = m.block_arg(entry, 1);
            let mut b = Builder::at_end(m, entry);
            let gid = sdev::global_id(&mut b, item, 0);
            let v = sdev::load_via_id(&mut b, a, &[gid]);
            let f32t = b.ctx().f32_type();
            let k = arith::constant_float(&mut b, 3.0, f32t);
            let out = if mul {
                arith::mulf(&mut b, v, k)
            } else {
                arith::addf(&mut b, v, k)
            };
            sdev::store_via_id(&mut b, out, a, &[gid]);
            build_return(&mut b, &[]);
            func
        };
        let scale = build(&mut m, "scale", true);
        let offset = build(&mut m, "offset", false);
        let n = 64_i64;

        // A single empty launch is a no-op on both engines.
        for engine in [Engine::TreeWalk, Engine::Plan] {
            let mut pool = MemoryPool::new();
            let ma = pool.alloc(DataVec::F32(vec![1.0; n as usize]));
            let device = Device::with_engine(engine);
            let stats = device
                .launch(
                    &m,
                    scale,
                    &[accessor(ma, n)],
                    NdRangeSpec::d1(0, 16),
                    &mut pool,
                )
                .unwrap_or_else(|e| panic!("empty launch on {}: {e}", engine.name()));
            assert_eq!(stats.work_groups, 0);
            assert_eq!(stats.work_items, 0);
            assert_eq!(stats.global_accesses, 0);
            let DataVec::F32(a) = pool.data(ma) else {
                panic!()
            };
            assert_eq!(a, &vec![1.0_f32; n as usize], "no-op left the buffer alone");
        }

        // scale -> (empty) -> offset over one buffer: the chain must
        // complete (no deadlock) and the successor must see the
        // predecessor's writes, for every worker count.
        let dag = LaunchDag::chain(3);
        for threads in [1_usize, 2, 4, 8] {
            let mut pool = MemoryPool::new();
            let ma = pool.alloc(DataVec::F32((0..n).map(|i| i as f32).collect()));
            let device = Device::with_engine(Engine::Plan).threads(threads);
            let batch = vec![
                BatchLaunch::kernel(scale, vec![accessor(ma, n)], NdRangeSpec::d1(n, 4)),
                BatchLaunch::kernel(offset, vec![accessor(ma, n)], NdRangeSpec::d1(0, 4)),
                BatchLaunch::kernel(offset, vec![accessor(ma, n)], NdRangeSpec::d1(n, 4)),
            ];
            let stats = device.launch_graph(&m, &batch, &dag, &mut pool).unwrap();
            assert_eq!(stats.len(), 3, "threads={threads}");
            assert_eq!(stats[1].work_groups, 0, "threads={threads}");
            let DataVec::F32(a) = pool.data(ma) else {
                panic!()
            };
            assert_eq!(a[5], 5.0 * 3.0 + 3.0, "threads={threads}");
        }
    }

    /// With failing work-groups in several launches, the error of the
    /// lexicographically smallest `(launch, group)` must be reported —
    /// independent of thread count and schedule. Launch 0 diverges from
    /// group 3 on; launch 1 diverges everywhere; the reported group must
    /// be launch 0's group 3.
    #[test]
    fn launch_graph_reports_lexicographically_first_error() {
        use crate::pool::LaunchDag;
        let c = ctx();
        let mut m = Module::new(&c);
        let nd1 = nd_item_type(&c, 1);
        // Diverges when group_id >= `from`: only work-item 0 of such a
        // group reaches the barrier.
        let build = |m: &mut Module, name: &str, from: i64| -> OpId {
            let (func, entry) = build_func(m, m.top(), name, std::slice::from_ref(&nd1), &[]);
            sdev::mark_kernel(m, func);
            let item = m.block_arg(entry, 0);
            let mut b = Builder::at_end(m, entry);
            let lid = sdev::local_id(&mut b, item, 0);
            let gid = sdev::group_id(&mut b, item, 0);
            let zero = constant_index(&mut b, 0);
            let thr = constant_index(&mut b, from);
            let leader = arith::cmpi(&mut b, "eq", lid, zero);
            let late = arith::cmpi(&mut b, "sge", gid, thr);
            let cond = b.build_value("arith.andi", &[leader, late], b.ctx().i1_type(), vec![]);
            let g = sdev::get_group(&mut b, item);
            sycl_mlir_dialects::scf::build_if(
                &mut b,
                cond,
                &[],
                |inner| {
                    sdev::group_barrier(inner, g);
                    vec![]
                },
                |_| vec![],
            );
            build_return(&mut b, &[]);
            func
        };
        let bad_late = build(&mut m, "bad_late", 3);
        let bad_all = build(&mut m, "bad_all", 0);
        let nd = NdRangeSpec::d1(64, 8); // 8 groups each
        for threads in [1, 2, 4, 8] {
            let mut pool = MemoryPool::new();
            let device = Device::with_engine(Engine::Plan).threads(threads);
            let batch = vec![
                BatchLaunch::kernel(bad_late, vec![], nd),
                BatchLaunch::kernel(bad_all, vec![], nd),
            ];
            let err = device
                .launch_graph(&m, &batch, &LaunchDag::independent(2), &mut pool)
                .unwrap_err();
            assert!(
                err.message().contains("[3, 0, 0]"),
                "threads={threads}: expected launch 0 group 3's error, got: {err}"
            );
        }
    }

    /// Uncoalesced (column-striding) accesses cost many more transactions
    /// than coalesced ones.
    #[test]
    fn coalescing_distinguishes_row_and_column_access() {
        let c = ctx();
        let n = 16_i64;
        let build = |by_row: bool| -> (Module, OpId) {
            let mut m = Module::new(&c);
            let acc = accessor_type(&c, c.f32_type(), 2, AccessMode::Read, Target::Global);
            let nd1 = nd_item_type(&c, 1);
            let top = m.top();
            let (func, entry) = build_func(&mut m, top, "k", &[acc, nd1], &[]);
            sdev::mark_kernel(&mut m, func);
            let a = m.block_arg(entry, 0);
            let item = m.block_arg(entry, 1);
            {
                let mut b = Builder::at_end(&mut m, entry);
                let gid = sdev::global_id(&mut b, item, 0);
                let zero = constant_index(&mut b, 0);
                let idx = if by_row { [zero, gid] } else { [gid, zero] };
                sdev::load_via_id(&mut b, a, &idx);
                build_return(&mut b, &[]);
            }
            (m, func)
        };
        let device = Device::new();

        let (m_row, k_row) = build(true);
        let mut pool = MemoryPool::new();
        let ma = pool.alloc(DataVec::F32(vec![0.0; (n * n) as usize]));
        let acc = RtValue::Accessor(AccessorVal {
            mem: ma,
            range: [n, n, 1],
            offset: [0; 3],
            rank: 2,
            constant: false,
        });
        let row_stats = device
            .launch(&m_row, k_row, &[acc], NdRangeSpec::d1(n, 16), &mut pool)
            .unwrap();

        let (m_col, k_col) = build(false);
        let mut pool2 = MemoryPool::new();
        let ma2 = pool2.alloc(DataVec::F32(vec![0.0; (n * n) as usize]));
        let acc2 = RtValue::Accessor(AccessorVal {
            mem: ma2,
            range: [n, n, 1],
            offset: [0; 3],
            rank: 2,
            constant: false,
        });
        let col_stats = device
            .launch(&m_col, k_col, &[acc2], NdRangeSpec::d1(n, 16), &mut pool2)
            .unwrap();

        // Row access: 16 consecutive f32 = 1 transaction. Column access:
        // every lane its own segment = 16 transactions.
        assert_eq!(row_stats.global_transactions, 1);
        assert_eq!(col_stats.global_transactions, 16);
    }
}
