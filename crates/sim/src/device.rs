//! The simulated device: ND-range scheduling of work-groups and work-items
//! with co-operative barrier semantics.

use crate::cost::{CostModel, ExecStats};
use crate::interp::{ExecCtx, Stop, WorkItemState};
use crate::memory::MemoryPool;
use crate::plan::{decode_kernel, KernelPlan, PlanCtx, PlanWorkItem};
use crate::value::{NdItemVal, RtValue};
use sycl_mlir_ir::{Module, OpId};

pub use crate::interp::SimError;

/// Which execution engine a [`Device`] runs kernels on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// The resumable tree-walk interpreter over the structured IR — the
    /// reference implementation.
    TreeWalk,
    /// The pre-decoded [`KernelPlan`] register-file executor (decodes once
    /// per launch, then shares the immutable plan across all work-items).
    /// Falls back to [`Engine::TreeWalk`] for kernels the decoder does not
    /// understand.
    Plan,
}

impl Engine {
    /// The engine named by the `SYCL_MLIR_SIM_ENGINE` environment variable
    /// (`"tree"` or `"plan"`); [`Engine::Plan`] when unset. An unrecognized
    /// value falls back to [`Engine::Plan`] with a warning on stderr, so a
    /// typo cannot silently masquerade as a tree-walk baseline.
    pub fn from_env() -> Engine {
        match std::env::var("SYCL_MLIR_SIM_ENGINE").as_deref() {
            Ok("tree") | Ok("treewalk") | Ok("tree-walk") => Engine::TreeWalk,
            Ok("plan") | Err(_) => Engine::Plan,
            Ok(other) => {
                eprintln!(
                    "warning: unknown SYCL_MLIR_SIM_ENGINE `{other}` (expected `tree` or `plan`); using the plan engine"
                );
                Engine::Plan
            }
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Engine::TreeWalk => "tree-walk",
            Engine::Plan => "plan",
        }
    }
}

/// Launch geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NdRangeSpec {
    pub global: [i64; 3],
    pub local: [i64; 3],
    pub rank: u32,
}

impl NdRangeSpec {
    /// 1-dimensional range with an explicit work-group size.
    pub fn d1(global: i64, local: i64) -> NdRangeSpec {
        NdRangeSpec { global: [global, 1, 1], local: [local, 1, 1], rank: 1 }
    }

    /// 2-dimensional square range.
    pub fn d2(gx: i64, gy: i64, lx: i64, ly: i64) -> NdRangeSpec {
        NdRangeSpec { global: [gx, gy, 1], local: [lx, ly, 1], rank: 2 }
    }

    pub fn work_items(&self) -> i64 {
        self.global[..self.rank as usize].iter().product()
    }

    pub fn groups(&self) -> [i64; 3] {
        [
            self.global[0] / self.local[0].max(1),
            self.global[1] / self.local[1].max(1),
            self.global[2] / self.local[2].max(1),
        ]
    }

    fn validate(&self) -> Result<(), SimError> {
        for d in 0..self.rank as usize {
            if self.local[d] <= 0 || self.global[d] <= 0 {
                return Err(SimError { message: format!("non-positive range in dim {d}") });
            }
            if self.global[d] % self.local[d] != 0 {
                return Err(SimError {
                    message: format!(
                        "global range {} not divisible by work-group size {} in dim {d}",
                        self.global[d], self.local[d]
                    ),
                });
            }
        }
        Ok(())
    }
}

/// A simulated GPU.
#[derive(Clone, Debug)]
pub struct Device {
    pub cost: CostModel,
    pub engine: Engine,
}

impl Default for Device {
    fn default() -> Device {
        Device { cost: CostModel::default(), engine: Engine::from_env() }
    }
}

impl Device {
    pub fn new() -> Device {
        Device::default()
    }

    pub fn with_cost(cost: CostModel) -> Device {
        Device { cost, ..Device::default() }
    }

    pub fn with_engine(engine: Engine) -> Device {
        Device { cost: CostModel::default(), engine }
    }

    pub fn engine(mut self, engine: Engine) -> Device {
        self.engine = engine;
        self
    }

    /// Execute `kernel` over `nd`, mutating `pool`. Returns the dynamic
    /// execution statistics with [`ExecStats::device_cycles`] charged.
    ///
    /// Under [`Engine::Plan`] the kernel is decoded once into a
    /// [`KernelPlan`] shared by every work-item; kernels the decoder cannot
    /// handle fall back to the tree-walk interpreter.
    ///
    /// # Errors
    ///
    /// Fails on malformed launches, interpreter errors, or **divergent
    /// barriers** (some work-items of a group reach a barrier while others
    /// finish — the deadlock §V-C's uniformity analysis exists to prevent).
    pub fn launch(
        &self,
        m: &Module,
        kernel: OpId,
        args: &[RtValue],
        nd: NdRangeSpec,
        pool: &mut MemoryPool,
    ) -> Result<ExecStats, SimError> {
        match self.engine {
            Engine::TreeWalk => launch_kernel(m, kernel, args, nd, pool, &self.cost),
            Engine::Plan => match decode_kernel(m, kernel) {
                Ok(plan) => launch_plan(m, &plan, args, nd, pool, &self.cost),
                // Reference fallback for non-decodable kernels.
                Err(_) => launch_kernel(m, kernel, args, nd, pool, &self.cost),
            },
        }
    }
}

/// Free-function form of [`Device::launch`].
pub fn launch_kernel(
    m: &Module,
    kernel: OpId,
    args: &[RtValue],
    nd: NdRangeSpec,
    pool: &mut MemoryPool,
    cost: &CostModel,
) -> Result<ExecStats, SimError> {
    nd.validate()?;
    let groups = nd.groups();
    let mut ctx = ExecCtx::new(m, pool, cost);

    for g0 in 0..groups[0] {
        for g1 in 0..groups[1] {
            for g2 in 0..groups[2] {
                run_work_group(m, kernel, args, nd, [g0, g1, g2], &mut ctx)?;
                ctx.next_work_group();
            }
        }
    }
    let mut stats = ctx.stats;
    stats.work_groups = (groups[0] * groups[1] * groups[2]) as u64;
    stats.work_items = nd.work_items() as u64;
    stats.charge(cost);
    Ok(stats)
}

/// Execute a pre-decoded [`KernelPlan`] over `nd` — the [`Engine::Plan`]
/// launch path. The plan is shared immutably by all work-items; each
/// work-item owns only its register file and frame stack.
pub fn launch_plan(
    m: &Module,
    plan: &KernelPlan,
    args: &[RtValue],
    nd: NdRangeSpec,
    pool: &mut MemoryPool,
    cost: &CostModel,
) -> Result<ExecStats, SimError> {
    nd.validate()?;
    let groups = nd.groups();
    let mut ctx = ExecCtx::new(m, pool, cost);
    let mut pctx = PlanCtx::new(plan);

    for g0 in 0..groups[0] {
        for g1 in 0..groups[1] {
            for g2 in 0..groups[2] {
                run_work_group_plan(plan, args, nd, [g0, g1, g2], &mut ctx, &mut pctx)?;
                ctx.next_work_group();
                pctx.next_work_group();
            }
        }
    }
    let mut stats = ctx.stats;
    stats.work_groups = (groups[0] * groups[1] * groups[2]) as u64;
    stats.work_items = nd.work_items() as u64;
    stats.charge(cost);
    Ok(stats)
}

fn items_of_group(nd: NdRangeSpec, group: [i64; 3]) -> Vec<NdItemVal> {
    let mut items = Vec::with_capacity((nd.local[0] * nd.local[1] * nd.local[2]) as usize);
    for l0 in 0..nd.local[0] {
        for l1 in 0..nd.local[1] {
            for l2 in 0..nd.local[2] {
                let local_id = [l0, l1, l2];
                let global_id = [
                    group[0] * nd.local[0] + l0,
                    group[1] * nd.local[1] + l1,
                    group[2] * nd.local[2] + l2,
                ];
                items.push(NdItemVal {
                    global_id,
                    local_id,
                    group_id: group,
                    global_range: nd.global,
                    local_range: nd.local,
                    rank: nd.rank,
                });
            }
        }
    }
    items
}

fn run_work_group_plan(
    plan: &KernelPlan,
    args: &[RtValue],
    nd: NdRangeSpec,
    group: [i64; 3],
    ctx: &mut ExecCtx<'_>,
    pctx: &mut PlanCtx,
) -> Result<(), SimError> {
    let mut items: Vec<PlanWorkItem> = items_of_group(nd, group)
        .into_iter()
        .map(|item| PlanWorkItem::new(plan, args, item))
        .collect::<Result<_, _>>()?;
    cooperative_rounds(&mut items, group, |wi| wi.run(plan, ctx, pctx))
}

/// Drive a work-group's items in co-operative rounds: every live work-item
/// runs to its next barrier or to completion; mixing the two within a
/// group is the divergent-barrier deadlock. Shared by both engines so the
/// scheduling policy (and its error message) cannot drift between them.
fn cooperative_rounds<W>(
    items: &mut [W],
    group: [i64; 3],
    mut run: impl FnMut(&mut W) -> Result<Stop, SimError>,
) -> Result<(), SimError> {
    loop {
        let mut barriers = 0_usize;
        let mut finished = 0_usize;
        for wi in items.iter_mut() {
            match run(wi)? {
                Stop::Barrier => barriers += 1,
                Stop::Finished => finished += 1,
            }
        }
        if barriers == 0 {
            return Ok(());
        }
        if finished > 0 {
            return Err(SimError {
                message: format!(
                    "divergent barrier: {barriers} work-items wait at a barrier while {finished} finished (work-group {group:?})"
                ),
            });
        }
    }
}

fn run_work_group(
    m: &Module,
    kernel: OpId,
    args: &[RtValue],
    nd: NdRangeSpec,
    group: [i64; 3],
    ctx: &mut ExecCtx<'_>,
) -> Result<(), SimError> {
    let mut items: Vec<WorkItemState> = items_of_group(nd, group)
        .into_iter()
        .map(|item| WorkItemState::new(m, kernel, args, item))
        .collect::<Result<_, _>>()?;
    cooperative_rounds(&mut items, group, |wi| wi.run(ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DataVec;
    use crate::value::AccessorVal;
    use sycl_mlir_dialects::arith::{self, constant_index};
    use sycl_mlir_dialects::func::{build_func, build_return};
    use sycl_mlir_ir::{Builder, Context, Module};
    use sycl_mlir_sycl::device as sdev;
    use sycl_mlir_sycl::types::{accessor_type, nd_item_type, AccessMode, Target};

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        sycl_mlir_sycl::register(&c);
        c
    }

    fn accessor(mem: crate::memory::MemId, len: i64) -> RtValue {
        RtValue::Accessor(AccessorVal {
            mem,
            range: [len, 1, 1],
            offset: [0, 0, 0],
            rank: 1,
            constant: false,
        })
    }

    /// a[i] = a[i] + b[i] over a 1-d range.
    #[test]
    fn vector_add_executes() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc = accessor_type(&c, c.f32_type(), 1, AccessMode::ReadWrite, Target::Global);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "vadd", &[acc.clone(), acc, nd1], &[]);
        sdev::mark_kernel(&mut m, func);
        let a = m.block_arg(entry, 0);
        let b_acc = m.block_arg(entry, 1);
        let item = m.block_arg(entry, 2);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let gid = sdev::global_id(&mut b, item, 0);
            let va = sdev::load_via_id(&mut b, a, &[gid]);
            let vb = sdev::load_via_id(&mut b, b_acc, &[gid]);
            let sum = arith::addf(&mut b, va, vb);
            sdev::store_via_id(&mut b, sum, a, &[gid]);
            build_return(&mut b, &[]);
        }
        let mut pool = MemoryPool::new();
        let n = 64_i64;
        let ma = pool.alloc(DataVec::F32((0..n).map(|i| i as f32).collect()));
        let mb = pool.alloc(DataVec::F32(vec![10.0; n as usize]));
        let device = Device::new();
        let stats = device
            .launch(&m, func, &[accessor(ma, n), accessor(mb, n)], NdRangeSpec::d1(n, 16), &mut pool)
            .unwrap();
        let DataVec::F32(out) = pool.data(ma) else { panic!() };
        assert_eq!(out[0], 10.0);
        assert_eq!(out[63], 73.0);
        assert_eq!(stats.work_items, 64);
        assert_eq!(stats.work_groups, 4);
        // Coalescing: 64 f32 loads per array = 16 bytes/lane... 16 lanes *
        // 4B = 64B = 1 transaction per subgroup: 64/16 per array access
        // kind; two loaded arrays + 1 store = 3 * 4 = 12 transactions.
        assert_eq!(stats.global_accesses, 192);
        assert_eq!(stats.global_transactions, 12);
        assert!(stats.device_cycles > 0.0);
    }

    /// Work-group reduction via barrier: each item writes its local id to
    /// local memory; after a barrier, item 0 sums them.
    #[test]
    fn barrier_synchronizes_local_memory() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc = accessor_type(&c, c.i64_type(), 1, AccessMode::Write, Target::Global);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "wg_sum", &[acc, nd1], &[]);
        sdev::mark_kernel(&mut m, func);
        let out = m.block_arg(entry, 0);
        let item = m.block_arg(entry, 1);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let i64t = b.ctx().i64_type();
            let lid = sdev::local_id(&mut b, item, 0);
            let gid = sdev::group_id(&mut b, item, 0);
            let tile = sdev::local_alloca(&mut b, i64t.clone(), &[16]);
            let lid_i64 = lid; // index == int in the interpreter
            sycl_mlir_dialects::memref::store(&mut b, lid_i64, tile, &[lid]);
            let g = sdev::get_group(&mut b, item);
            sdev::group_barrier(&mut b, g);
            let zero = constant_index(&mut b, 0);
            let is_leader = arith::cmpi(&mut b, "eq", lid, zero);
            sycl_mlir_dialects::scf::build_if(
                &mut b,
                is_leader,
                &[],
                |inner| {
                    let z = constant_index(inner, 0);
                    let n = constant_index(inner, 16);
                    let one = constant_index(inner, 1);
                    let init = arith::constant_int(inner, 0, inner.ctx().index_type());
                    let sum_loop = sycl_mlir_dialects::scf::build_for(
                        inner,
                        z,
                        n,
                        one,
                        &[init],
                        |body, iv, iters| {
                            let v = sycl_mlir_dialects::memref::load(body, tile, &[iv]);
                            let s = arith::addi(body, iters[0], v);
                            vec![s]
                        },
                    );
                    let total = inner.module().op_result(sum_loop, 0);
                    sdev::store_via_id(inner, total, out, &[gid]);
                    vec![]
                },
                |_| vec![],
            );
            build_return(&mut b, &[]);
        }
        // The tile uses index type; element type for store is index -> i64 pool.
        let mut pool = MemoryPool::new();
        let mo = pool.alloc(DataVec::I64(vec![0; 4]));
        let device = Device::new();
        let stats = device
            .launch(&m, func, &[accessor(mo, 4)], NdRangeSpec::d1(64, 16), &mut pool)
            .unwrap();
        let DataVec::I64(out_data) = pool.data(mo) else { panic!() };
        // Each group sums 0..15 = 120.
        assert_eq!(out_data, &vec![120; 4]);
        assert_eq!(stats.barriers, 4 * 16); // every work-item hits it once
        assert!(stats.local_accesses > 0);
    }

    /// A barrier under a divergent branch must be detected as a deadlock —
    /// exactly what §V-C's uniformity analysis guards against.
    #[test]
    fn divergent_barrier_detected() {
        let c = ctx();
        let mut m = Module::new(&c);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "bad", &[nd1], &[]);
        sdev::mark_kernel(&mut m, func);
        let item = m.block_arg(entry, 0);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let lid = sdev::local_id(&mut b, item, 0);
            let zero = constant_index(&mut b, 0);
            let cond = arith::cmpi(&mut b, "eq", lid, zero);
            let g = sdev::get_group(&mut b, item);
            sycl_mlir_dialects::scf::build_if(
                &mut b,
                cond,
                &[],
                |inner| {
                    sdev::group_barrier(inner, g);
                    vec![]
                },
                |_| vec![],
            );
            build_return(&mut b, &[]);
        }
        let mut pool = MemoryPool::new();
        let device = Device::new();
        let errv = device
            .launch(&m, func, &[], NdRangeSpec::d1(16, 16), &mut pool)
            .unwrap_err();
        assert!(errv.message.contains("divergent barrier"), "{errv}");
    }

    /// Uncoalesced (column-striding) accesses cost many more transactions
    /// than coalesced ones.
    #[test]
    fn coalescing_distinguishes_row_and_column_access() {
        let c = ctx();
        let n = 16_i64;
        let build = |by_row: bool| -> (Module, OpId) {
            let mut m = Module::new(&c);
            let acc = accessor_type(&c, c.f32_type(), 2, AccessMode::Read, Target::Global);
            let nd1 = nd_item_type(&c, 1);
            let top = m.top();
            let (func, entry) = build_func(&mut m, top, "k", &[acc, nd1], &[]);
            sdev::mark_kernel(&mut m, func);
            let a = m.block_arg(entry, 0);
            let item = m.block_arg(entry, 1);
            {
                let mut b = Builder::at_end(&mut m, entry);
                let gid = sdev::global_id(&mut b, item, 0);
                let zero = constant_index(&mut b, 0);
                let idx = if by_row { [zero, gid] } else { [gid, zero] };
                sdev::load_via_id(&mut b, a, &idx);
                build_return(&mut b, &[]);
            }
            (m, func)
        };
        let device = Device::new();

        let (m_row, k_row) = build(true);
        let mut pool = MemoryPool::new();
        let ma = pool.alloc(DataVec::F32(vec![0.0; (n * n) as usize]));
        let acc = RtValue::Accessor(AccessorVal {
            mem: ma,
            range: [n, n, 1],
            offset: [0; 3],
            rank: 2,
            constant: false,
        });
        let row_stats = device
            .launch(&m_row, k_row, &[acc], NdRangeSpec::d1(n, 16), &mut pool)
            .unwrap();

        let (m_col, k_col) = build(false);
        let mut pool2 = MemoryPool::new();
        let ma2 = pool2.alloc(DataVec::F32(vec![0.0; (n * n) as usize]));
        let acc2 = RtValue::Accessor(AccessorVal {
            mem: ma2,
            range: [n, n, 1],
            offset: [0; 3],
            rank: 2,
            constant: false,
        });
        let col_stats = device
            .launch(&m_col, k_col, &[acc2], NdRangeSpec::d1(n, 16), &mut pool2)
            .unwrap();

        // Row access: 16 consecutive f32 = 1 transaction. Column access:
        // every lane its own segment = 16 transactions.
        assert_eq!(row_stats.global_transactions, 1);
        assert_eq!(col_stats.global_transactions, 16);
    }
}
