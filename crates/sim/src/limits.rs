//! Per-launch execution safety limits, cooperative cancellation and
//! deterministic fault injection.
//!
//! The safety model mirrors the one rhai documents for embedded
//! interpreters — a hard operation budget, a wall-clock deadline, a memory
//! cap and a cooperative cancel token — so the simulator can execute
//! kernel programs it does not trust without letting them spin forever,
//! exhaust the arena or wedge the scheduler.
//!
//! All limits are **off by default**, and the plan executor monomorphizes
//! the metering away when [`ExecLimits::is_none`] holds, so the unlimited
//! hot path pays nothing. When limits are on, the operation budget is
//! drawn from a per-launch shared counter in amortized blocks
//! (`OpMeter`): a worker reserves up to `OP_BLOCK` weighted operations
//! at a time and settles the unspent remainder back when it leaves the
//! launch, so the per-instruction cost is one subtraction. Deadlines and
//! cancellation are only polled at block and work-group boundaries.
//!
//! A tripped limit surfaces as
//! [`SimError::LimitExceeded`] — a
//! structured error, not a panic — with the scheduler stamping the
//! `(launch, group)` position when it records the failure.

use crate::interp::{LimitKind, SimError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-launch execution limits and fault configuration.
///
/// The default ([`ExecLimits::none`]) enforces nothing. Construct one via
/// the [`Device`](crate::Device) builder knobs (`max_ops`, `mem_cap`,
/// `deadline_ms`, `cancel_token`, `fault`) or [`ExecLimits::from_env`]
/// (`SYCL_MLIR_SIM_MAX_OPS`, `SYCL_MLIR_SIM_MEM_CAP`,
/// `SYCL_MLIR_SIM_DEADLINE_MS`, `SYCL_MLIR_SIM_FAULT`).
#[derive(Clone, Debug, Default)]
pub struct ExecLimits {
    /// Weighted-operation budget per launch. Superinstructions charge the
    /// weight of the instructions they replace, so the budget does not
    /// drift with the fusion level.
    pub max_ops: Option<u64>,
    /// Cap, in bytes, on kernel-driven allocation growth (private/local
    /// allocas, materialized dense constants) per worker per launch.
    pub mem_cap: Option<u64>,
    /// Wall-clock deadline for a whole launch graph, in milliseconds,
    /// measured from submission.
    pub deadline_ms: Option<u64>,
    /// Cooperative cancellation: flip the token from any thread and every
    /// in-flight launch stops at its next check boundary.
    pub cancel: Option<CancelToken>,
    /// Deterministic fault injection for testing the failure paths.
    pub fault: Option<FaultPlan>,
}

impl ExecLimits {
    /// No limits: every check compiles out of the plan executor.
    pub fn none() -> ExecLimits {
        ExecLimits::default()
    }

    /// Whether nothing is limited (the executor skips all metering).
    pub fn is_none(&self) -> bool {
        self.max_ops.is_none()
            && self.mem_cap.is_none()
            && self.deadline_ms.is_none()
            && self.cancel.is_none()
            && self.fault.is_none()
    }

    /// Limits from the `SYCL_MLIR_SIM_MAX_OPS` / `SYCL_MLIR_SIM_MEM_CAP` /
    /// `SYCL_MLIR_SIM_DEADLINE_MS` / `SYCL_MLIR_SIM_FAULT` environment
    /// variables. Invalid values warn on stderr and are ignored.
    pub fn from_env() -> ExecLimits {
        ExecLimits {
            max_ops: u64_knob_from_env("SYCL_MLIR_SIM_MAX_OPS"),
            mem_cap: u64_knob_from_env("SYCL_MLIR_SIM_MEM_CAP"),
            deadline_ms: u64_knob_from_env("SYCL_MLIR_SIM_DEADLINE_MS"),
            cancel: None,
            fault: fault_from_env("SYCL_MLIR_SIM_FAULT"),
        }
    }

    /// The absolute deadline for a graph submitted now.
    pub(crate) fn deadline_instant(&self) -> Option<Instant> {
        self.deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms))
    }

    /// The fault site armed for `launch`, if any.
    pub(crate) fn fault_at(&self, launch: usize) -> Option<FaultSite> {
        match &self.fault {
            Some(f) if f.launch == launch => Some(f.site),
            _ => None,
        }
    }
}

/// Parse a non-negative integer knob from the environment, warning on
/// stderr (and enforcing nothing) when the value is malformed — the same
/// fail-open policy as the other `SYCL_MLIR_SIM_*` knobs.
fn u64_knob_from_env(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    match raw.parse::<u64>() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("warning: {var}={raw} is not a non-negative integer; ignoring it");
            None
        }
    }
}

/// Parse a [`FaultPlan`] from the environment (same fail-open policy).
fn fault_from_env(var: &str) -> Option<FaultPlan> {
    let raw = std::env::var(var).ok()?;
    match FaultPlan::parse(&raw) {
        Some(f) => Some(f),
        None => {
            eprintln!(
                "warning: {var}={raw} is not `<launch>:decode`, `<launch>:claim:<n>` or \
                 `<launch>:instr:<n>`; ignoring it"
            );
            None
        }
    }
}

/// A shared cancellation flag. Clone it, hand one side to another thread,
/// and [`cancel`](CancelToken::cancel) stops every launch using it at the
/// next check boundary with
/// [`LimitKind::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation (sticky; safe from any thread).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A deterministic synthetic failure, injected at a chosen point of a
/// chosen launch, for testing the cancellation cascade, error ordering
/// and post-failure device usability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Index of the launch (within its graph) to fail.
    pub launch: usize,
    /// Where inside that launch the failure trips.
    pub site: FaultSite,
}

/// Where a [`FaultPlan`] trips inside its launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Fail before the launch runs at all (as if its plan failed to
    /// decode).
    Decode,
    /// Fail work-group `n` at the claim boundary, before it executes.
    Claim(u64),
    /// Fail each work-group once it has executed `n` weighted operations.
    Instr(u64),
}

impl FaultPlan {
    /// Parse `"<launch>:decode"`, `"<launch>:claim:<n>"` or
    /// `"<launch>:instr:<n>"`.
    pub fn parse(s: &str) -> Option<FaultPlan> {
        let mut parts = s.split(':');
        let launch = parts.next()?.parse::<usize>().ok()?;
        let site = match (parts.next()?, parts.next()) {
            ("decode", None) => FaultSite::Decode,
            ("claim", Some(n)) => FaultSite::Claim(n.parse().ok()?),
            ("instr", Some(n)) => FaultSite::Instr(n.parse().ok()?),
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(FaultPlan { launch, site })
    }

    /// The deterministic error this fault produces — identical text under
    /// every engine, fuse level, thread count and overlap mode.
    pub fn error(&self) -> SimError {
        SimError::msg(match self.site {
            FaultSite::Decode => format!("injected fault: decode of launch {}", self.launch),
            FaultSite::Claim(n) => {
                format!("injected fault: claim {n} of launch {}", self.launch)
            }
            FaultSite::Instr(n) => {
                format!("injected fault: instruction {n} of launch {}", self.launch)
            }
        })
    }
}

/// Ops reserved from the shared budget per refill. Large enough that the
/// per-instruction cost is one subtraction, small enough that deadlines
/// and cancellation are polled every fraction of a millisecond.
pub(crate) const OP_BLOCK: u64 = 65_536;

/// Reserve up to `want` units from a shared budget; returns what was
/// actually obtained (0 when the budget is exhausted).
fn reserve(budget: &AtomicU64, want: u64) -> u64 {
    let mut cur = budget.load(Ordering::Relaxed);
    loop {
        let take = cur.min(want);
        if take == 0 {
            return 0;
        }
        match budget.compare_exchange_weak(cur, cur - take, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return take,
            Err(now) => cur = now,
        }
    }
}

/// Per-worker, per-launch metering state: amortized operation budgeting,
/// deadline/cancellation polling, the per-worker memory cap, and the
/// `Instr(n)` fault countdown.
///
/// The hot path is [`charge`](OpMeter::charge): one compare and one
/// subtraction against a prepaid block. Everything else happens in the
/// cold [`boundary`](OpMeter::boundary) refill.
///
/// All three execution tiers drive the same meter. The plan engine
/// charges `Instr::op_weight` per executed instruction; the closure-JIT
/// tier charges the identical weights from per-pc tables flattened at
/// compile time (`crates/sim/src/jit.rs` stores one `u64` per
/// instruction next to its compiled closure) — so a budget trips at the
/// same weighted-op count, hence the same work-group, no matter which
/// tier ran. Superinstruction weights cover their fused members, which
/// is what makes trips fuse- *and* tier-invariant
/// (`tests/plan_fuzz.rs::op_budget_trips_are_tier_invariant`).
pub(crate) struct OpMeter {
    /// Prepaid weighted ops still executable before the next boundary.
    granted: u64,
    /// Value of `granted` just after the last boundary (so the boundary
    /// can compute how much was spent since).
    last_grant: u64,
    /// The launch's shared operation budget (absent when `max_ops` is
    /// off — boundaries then only poll deadline/cancellation).
    shared: Option<Arc<AtomicU64>>,
    /// Absolute wall-clock deadline for the enclosing graph.
    deadline: Option<Instant>,
    /// Cooperative cancellation flag.
    cancel: Option<CancelToken>,
    /// `Instr(n)` fault threshold per work-group (`u64::MAX` = unarmed).
    fault_n: u64,
    /// Weighted ops left until the armed fault trips in this work-group.
    fault_left: u64,
    /// Bytes of kernel-driven allocation left under the memory cap
    /// (`u64::MAX` = uncapped).
    mem_left: u64,
    /// Launch index, for the injected-fault error text.
    launch: usize,
}

impl OpMeter {
    /// A meter for `launch` drawing from `budget` under `limits`.
    pub(crate) fn new(
        limits: &ExecLimits,
        budget: Option<Arc<AtomicU64>>,
        deadline: Option<Instant>,
        launch: usize,
    ) -> OpMeter {
        let fault_n = match limits.fault_at(launch) {
            Some(FaultSite::Instr(n)) => n,
            _ => u64::MAX,
        };
        OpMeter {
            granted: 0,
            last_grant: 0,
            shared: budget,
            deadline,
            cancel: limits.cancel.clone(),
            fault_n,
            fault_left: fault_n,
            mem_left: limits.mem_cap.unwrap_or(u64::MAX),
            launch,
        }
    }

    /// Pay for one instruction of weight `w`. `Err` when a limit (or the
    /// armed fault) trips at the refill boundary.
    #[inline]
    pub(crate) fn charge(&mut self, w: u64) -> Result<(), SimError> {
        if self.granted < w {
            self.boundary(w)?;
        }
        self.granted -= w;
        Ok(())
    }

    /// Refill the prepaid block: settle fault accounting, poll
    /// cancellation and the deadline, then reserve the next block from
    /// the shared budget.
    #[cold]
    fn boundary(&mut self, w: u64) -> Result<(), SimError> {
        if self.fault_left != u64::MAX {
            // `granted` never exceeds `fault_left` (the grant below is
            // capped), so this cannot underflow.
            self.fault_left -= self.last_grant - self.granted;
            self.last_grant = self.granted;
            if self.fault_left < w {
                return Err(SimError::msg(format!(
                    "injected fault: instruction {} of launch {}",
                    self.fault_n, self.launch
                )));
            }
        }
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Err(SimError::limit(LimitKind::Cancelled));
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(SimError::limit(LimitKind::Deadline));
            }
        }
        let mut take = OP_BLOCK.max(w) - self.granted;
        if self.fault_left != u64::MAX {
            take = take.min(self.fault_left - self.granted);
        }
        if let Some(b) = &self.shared {
            take = reserve(b, take);
        }
        self.granted += take;
        self.last_grant = self.granted;
        if self.granted < w {
            return Err(SimError::limit(LimitKind::Ops));
        }
        Ok(())
    }

    /// Start a new work-group: settle the unspent grant back to the
    /// shared budget (so budgets stay exact under sequential execution)
    /// and re-arm the per-group fault countdown. The next charge hits a
    /// boundary, which also gives each work-group a deadline poll.
    pub(crate) fn begin_group(&mut self) {
        self.settle();
        self.fault_left = self.fault_n;
    }

    /// Return any unspent grant to the shared budget.
    pub(crate) fn settle(&mut self) {
        if self.granted > 0 {
            if let Some(b) = &self.shared {
                b.fetch_add(self.granted, Ordering::Relaxed);
            }
        }
        self.granted = 0;
        self.last_grant = 0;
    }

    /// Pay for `bytes` of kernel-driven allocation growth.
    pub(crate) fn charge_mem(&mut self, bytes: u64) -> Result<(), SimError> {
        if self.mem_left < bytes {
            return Err(SimError::limit(LimitKind::Memory));
        }
        self.mem_left -= bytes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_parses_all_sites() {
        assert_eq!(
            FaultPlan::parse("2:decode"),
            Some(FaultPlan {
                launch: 2,
                site: FaultSite::Decode
            })
        );
        assert_eq!(
            FaultPlan::parse("0:claim:7"),
            Some(FaultPlan {
                launch: 0,
                site: FaultSite::Claim(7)
            })
        );
        assert_eq!(
            FaultPlan::parse("1:instr:123"),
            Some(FaultPlan {
                launch: 1,
                site: FaultSite::Instr(123)
            })
        );
        for bad in [
            "",
            "decode",
            "1:",
            "1:claim",
            "x:decode",
            "1:instr:x",
            "1:decode:2",
        ] {
            assert_eq!(FaultPlan::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn meter_trips_ops_exactly_under_sequential_settling() {
        let limits = ExecLimits {
            max_ops: Some(10),
            ..ExecLimits::none()
        };
        let budget = Arc::new(AtomicU64::new(10));
        let mut m = OpMeter::new(&limits, Some(budget.clone()), None, 0);
        for _ in 0..10 {
            m.charge(1).unwrap();
        }
        let err = m.charge(1).unwrap_err();
        assert_eq!(err.limit_kind(), Some(LimitKind::Ops));
        // Settling returns the (empty) remainder; the budget is spent.
        m.settle();
        assert_eq!(budget.load(Ordering::Relaxed), 0);
    }

    /// The trip point depends only on the cumulative *weight*, not on
    /// how the charges are grouped — the closure-JIT tier charges
    /// pre-flattened per-pc weights (superinstructions carry the summed
    /// weight of their members), and both tiers must trip at the same
    /// weighted count.
    #[test]
    fn meter_trip_point_is_weight_grouping_invariant() {
        let limits = ExecLimits {
            max_ops: Some(12),
            ..ExecLimits::none()
        };
        // Unfused shape: twelve weight-1 charges, then a trip.
        let budget = Arc::new(AtomicU64::new(12));
        let mut m = OpMeter::new(&limits, Some(budget), None, 0);
        for _ in 0..12 {
            m.charge(1).unwrap();
        }
        assert_eq!(m.charge(1).unwrap_err().limit_kind(), Some(LimitKind::Ops));
        // Fused shape: the same weight in 2s and 3s (four 2-weight and
        // one 3-weight superinstruction, 11 total) still has room for
        // exactly one more unit op and trips on weight 2.
        let budget = Arc::new(AtomicU64::new(12));
        let mut m = OpMeter::new(&limits, Some(budget), None, 0);
        for w in [2, 2, 3, 2, 2] {
            m.charge(w).unwrap();
        }
        m.charge(1).unwrap();
        assert_eq!(m.charge(2).unwrap_err().limit_kind(), Some(LimitKind::Ops));
    }

    #[test]
    fn meter_settles_unspent_grant_back() {
        let limits = ExecLimits {
            max_ops: Some(1000),
            ..ExecLimits::none()
        };
        let budget = Arc::new(AtomicU64::new(1000));
        let mut m = OpMeter::new(&limits, Some(budget.clone()), None, 0);
        m.charge(3).unwrap();
        m.begin_group();
        assert_eq!(budget.load(Ordering::Relaxed), 997);
    }

    #[test]
    fn meter_trips_instr_fault_at_threshold() {
        let limits = ExecLimits {
            fault: Some(FaultPlan {
                launch: 0,
                site: FaultSite::Instr(5),
            }),
            ..ExecLimits::none()
        };
        let mut m = OpMeter::new(&limits, None, None, 0);
        for _ in 0..5 {
            m.charge(1).unwrap();
        }
        let err = m.charge(1).unwrap_err();
        assert!(err
            .message()
            .contains("injected fault: instruction 5 of launch 0"));
        // The next work-group re-arms and trips at the same point.
        m.begin_group();
        for _ in 0..5 {
            m.charge(1).unwrap();
        }
        assert!(m.charge(1).is_err());
    }

    #[test]
    fn meter_charges_memory_against_the_cap() {
        let limits = ExecLimits {
            mem_cap: Some(64),
            ..ExecLimits::none()
        };
        let mut m = OpMeter::new(&limits, None, None, 0);
        m.charge_mem(40).unwrap();
        m.charge_mem(24).unwrap();
        let err = m.charge_mem(1).unwrap_err();
        assert_eq!(err.limit_kind(), Some(LimitKind::Memory));
    }

    #[test]
    fn cancel_token_trips_at_the_next_boundary() {
        let token = CancelToken::new();
        let limits = ExecLimits {
            cancel: Some(token.clone()),
            ..ExecLimits::none()
        };
        let mut m = OpMeter::new(&limits, None, None, 0);
        m.charge(1).unwrap();
        token.cancel();
        // Within the prepaid block nothing trips; the group boundary does.
        m.begin_group();
        let err = m.charge(1).unwrap_err();
        assert_eq!(err.limit_kind(), Some(LimitKind::Cancelled));
    }
}
