#!/usr/bin/env bash
# The CI gate, runnable locally: exactly what .github/workflows/ci.yml
# runs. Everything is offline — third-party crates are vendored shims
# under crates/shims/, so no step touches a registry.
#
#   ./scripts/ci.sh         # full gate: fmt, clippy, build, test, bench smoke
#   ./scripts/ci.sh --fast  # skip the bench smoke (format/lint/build/test only)

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    *) echo "unknown argument: $arg (expected --fast)" >&2; exit 2 ;;
  esac
done

step() { printf '\n== %s ==\n' "$1"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release

# Runs the whole workspace, including the scheduler's hardening suites:
# tests/scheduler_stress.rs (~200 randomized hazard DAGs across every
# scheduler mode × thread count, plus error-ordering pins) and
# tests/plan_fuzz.rs (random legal bytecode, fused vs unfused).
step "cargo test (incl. scheduler stress + plan fuzz suites)"
cargo test -q

step "cargo doc --no-deps (deny warnings)"
# Catches broken intra-doc links; crates/sim and crates/runtime also deny
# missing_docs at compile time.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

if [[ "$fast" == 1 ]]; then
  echo "(--fast: skipping bench smoke)"
  exit 0
fi

# ----------------------------------------------------------------------
# Bench smoke: the full evaluation sweep in quick mode — sequential, on 4
# worker threads, with plan fusion disabled / limited to pairs, and with
# the out-of-order scheduler disabled (PR 3 level barriers). Asserts the
# determinism contract (bit-identical tables across threads, every fuse
# level AND overlap on/off) and prints the wall-time trajectory so a perf
# regression is visible in the CI log.
# ----------------------------------------------------------------------
step "bench smoke: repro_all --quick (threads=1 vs threads=4 vs fuse=off/pairs vs overlap=off)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

./target/release/repro_all --quick --threads=1 | tee "$tmp/t1.out"
./target/release/repro_all --quick --threads=4 | tee "$tmp/t4.out"
./target/release/repro_all --quick --threads=1 --fuse=off --batch=off | tee "$tmp/nofuse.out"
./target/release/repro_all --quick --threads=4 --fuse=pairs | tee "$tmp/pairs.out"
./target/release/repro_all --quick --threads=4 --overlap=off | tee "$tmp/nooverlap.out"

# The wall-time line is the only legitimate difference between runs.
grep -v '^repro_wall_time_seconds:' "$tmp/t1.out" > "$tmp/t1.tables"
grep -v '^repro_wall_time_seconds:' "$tmp/t4.out" > "$tmp/t4.tables"
grep -v '^repro_wall_time_seconds:' "$tmp/nofuse.out" > "$tmp/nofuse.tables"
grep -v '^repro_wall_time_seconds:' "$tmp/pairs.out" > "$tmp/pairs.tables"
grep -v '^repro_wall_time_seconds:' "$tmp/nooverlap.out" > "$tmp/nooverlap.tables"
if ! diff -u "$tmp/t1.tables" "$tmp/t4.tables"; then
  echo "FAIL: repro_all tables differ between --threads=1 and --threads=4" >&2
  exit 1
fi
if ! diff -u "$tmp/t1.tables" "$tmp/nofuse.tables"; then
  echo "FAIL: repro_all tables differ between fused and unfused execution" >&2
  exit 1
fi
if ! diff -u "$tmp/t1.tables" "$tmp/pairs.tables"; then
  echo "FAIL: repro_all tables differ between chain fusion and pairs-only fusion" >&2
  exit 1
fi
if ! diff -u "$tmp/t4.tables" "$tmp/nooverlap.tables"; then
  echo "FAIL: repro_all tables differ between overlap=on and overlap=off" >&2
  exit 1
fi
echo "tables bit-identical across thread counts, fuse levels and overlap modes"

# ----------------------------------------------------------------------
# Limits smoke: an adversarial kernel spinning an (effectively)
# unbounded loop must trip --max-ops — fail fast with the structured
# limit error, never hang — under BOTH engines, and the device must stay
# usable afterwards (repro_limits checks all of that itself; the timeout
# is the hang backstop). A sweep with generous limits *enabled* must
# then reproduce the baseline tables bit-identically: the metering path
# may cost a little wall time but can never perturb simulated results.
# ----------------------------------------------------------------------
step "limits smoke: repro_limits under both engines + generous-limits identity"
timeout 120 ./target/release/repro_limits --engine=plan --threads=4 --max-ops=2000000
timeout 120 ./target/release/repro_limits --engine=tree --max-ops=2000000

./target/release/repro_all --quick --threads=4 --max-ops=1000000000000 \
  --deadline-ms=600000 | tee "$tmp/limits.out"
grep -v '^repro_wall_time_seconds:' "$tmp/limits.out" > "$tmp/limits.tables"
if ! diff -u "$tmp/t4.tables" "$tmp/limits.tables"; then
  echo "FAIL: repro_all tables differ with generous limits enabled" >&2
  exit 1
fi
echo "limits smoke passed: both engines trip, device survives, tables unchanged"

# ----------------------------------------------------------------------
# Profile artifact: the opcode-mix summary (per-opcode execution totals +
# ranked fusion candidates) from a --profile=on sweep, saved under
# target/ci-artifacts/ and uploaded by the workflow — so fusion-candidate
# drift across PRs is tracked instead of re-measured by hand.
# ----------------------------------------------------------------------
step "profile artifact: opcode mix (fusion-candidate drift tracking)"
artifacts=target/ci-artifacts
mkdir -p "$artifacts"
./target/release/repro_all --quick --threads=4 --profile=on > "$tmp/profile.out"
# Keep only the profile section, minus the run-dependent wall-time line —
# the artifact must diff clean across runs when the opcode mix is stable.
sed -n '/^== instruction profile/,$p' "$tmp/profile.out" \
  | grep -v '^repro_wall_time_seconds:' > "$artifacts/opcode-mix.txt"
if ! [ -s "$artifacts/opcode-mix.txt" ]; then
  echo "FAIL: --profile=on produced no instruction profile section" >&2
  exit 1
fi
head -n 14 "$artifacts/opcode-mix.txt"
echo "  ... (full opcode mix in $artifacts/opcode-mix.txt)"

echo
echo "wall-time regression check (PR 4 baseline: ~1.0 s threads=4):"
grep '^repro_wall_time_seconds:' "$tmp/t1.out"        | sed 's/^/  threads=1            /'
grep '^repro_wall_time_seconds:' "$tmp/t4.out"        | sed 's/^/  threads=4            /'
grep '^repro_wall_time_seconds:' "$tmp/nofuse.out"    | sed 's/^/  fuse=off,batch=off   /'
grep '^repro_wall_time_seconds:' "$tmp/pairs.out"     | sed 's/^/  threads=4,fuse=pairs /'
grep '^repro_wall_time_seconds:' "$tmp/nooverlap.out" | sed 's/^/  threads=4,overlap=off/'
grep '^repro_wall_time_seconds:' "$tmp/limits.out"    | sed 's/^/  threads=4,limits=on  /'

echo
echo "CI gate passed."
