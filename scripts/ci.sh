#!/usr/bin/env bash
# The CI gate, runnable locally: exactly what .github/workflows/ci.yml
# runs. Everything is offline — third-party crates are vendored shims
# under crates/shims/, so no step touches a registry.
#
#   ./scripts/ci.sh         # full gate: fmt, clippy, build, test, bench smoke
#   ./scripts/ci.sh --fast  # skip the bench smoke (format/lint/build/test only)

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    *) echo "unknown argument: $arg (expected --fast)" >&2; exit 2 ;;
  esac
done

step() { printf '\n== %s ==\n' "$1"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release

step "cargo test"
cargo test -q

step "cargo doc --no-deps (deny warnings)"
# Catches broken intra-doc links; crates/sim and crates/runtime also deny
# missing_docs at compile time.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

if [[ "$fast" == 1 ]]; then
  echo "(--fast: skipping bench smoke)"
  exit 0
fi

# ----------------------------------------------------------------------
# Bench smoke: the full evaluation sweep in quick mode — sequential, on 4
# worker threads, and with plan fusion disabled. Asserts the determinism
# contract (bit-identical tables across threads AND across fused/unfused
# execution) and prints the wall-time trajectory so a perf regression is
# visible in the CI log.
# ----------------------------------------------------------------------
step "bench smoke: repro_all --quick (threads=1 vs threads=4 vs fuse=off)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

./target/release/repro_all --quick --threads=1 | tee "$tmp/t1.out"
./target/release/repro_all --quick --threads=4 | tee "$tmp/t4.out"
./target/release/repro_all --quick --threads=1 --fuse=off --batch=off | tee "$tmp/nofuse.out"

# The wall-time line is the only legitimate difference between runs.
grep -v '^repro_wall_time_seconds:' "$tmp/t1.out" > "$tmp/t1.tables"
grep -v '^repro_wall_time_seconds:' "$tmp/t4.out" > "$tmp/t4.tables"
grep -v '^repro_wall_time_seconds:' "$tmp/nofuse.out" > "$tmp/nofuse.tables"
if ! diff -u "$tmp/t1.tables" "$tmp/t4.tables"; then
  echo "FAIL: repro_all tables differ between --threads=1 and --threads=4" >&2
  exit 1
fi
if ! diff -u "$tmp/t1.tables" "$tmp/nofuse.tables"; then
  echo "FAIL: repro_all tables differ between fused and unfused execution" >&2
  exit 1
fi
echo "tables bit-identical across thread counts and fuse settings"

echo
echo "wall-time regression check (PR 2 baselines: 1.28 s threads=1, 1.02 s threads=4):"
grep '^repro_wall_time_seconds:' "$tmp/t1.out"     | sed 's/^/  threads=1          /'
grep '^repro_wall_time_seconds:' "$tmp/t4.out"     | sed 's/^/  threads=4          /'
grep '^repro_wall_time_seconds:' "$tmp/nofuse.out" | sed 's/^/  fuse=off,batch=off /'

echo
echo "CI gate passed."
