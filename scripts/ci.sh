#!/usr/bin/env bash
# The CI gate, runnable locally: exactly what .github/workflows/ci.yml
# runs. Everything is offline — third-party crates are vendored shims
# under crates/shims/, so no step touches a registry.
#
#   ./scripts/ci.sh         # full gate: fmt, clippy, build, test, doc,
#                           # bench/limits/JIT determinism smoke, profile
#                           # artifact, perf-regression gate
#   ./scripts/ci.sh --fast  # format/lint/build/test/doc only — skips the
#                           # bench smoke, artifacts and the perf gate
#
# Perf gate escape hatch: CI_SKIP_PERF_GATE=1 skips only the wall-time
# comparison against scripts/bench-baseline.json (for machines whose
# throughput is not comparable to the machine that recorded the
# baseline); the determinism legs still run.
#
# Nightly-only legs (Miri smoke, TSan build) probe for their toolchain
# pieces and skip cleanly when absent; CI_SKIP_MIRI=1 / CI_SKIP_TSAN=1
# force the skip even when the toolchain would allow them.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    *) echo "unknown argument: $arg (expected --fast)" >&2; exit 2 ;;
  esac
done

step() { printf '\n== %s ==\n' "$1"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo build --release"
cargo build --release

# Runs the whole workspace, including the scheduler's hardening suites:
# tests/scheduler_stress.rs (~200 randomized hazard DAGs across every
# scheduler mode × thread count, plus error-ordering pins) and
# tests/plan_fuzz.rs (random legal bytecode, fused vs unfused).
step "cargo test (incl. scheduler stress + plan fuzz suites)"
cargo test -q

step "cargo doc --no-deps (deny warnings)"
# Catches broken intra-doc links; crates/sim and crates/runtime also deny
# missing_docs at compile time.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

if [[ "$fast" == 1 ]]; then
  echo "(--fast: skipping bench/limits/JIT smoke, artifacts and the perf gate)"
  exit 0
fi

# ----------------------------------------------------------------------
# Bench smoke: the full evaluation sweep in quick mode — sequential, on 4
# worker threads, with plan fusion disabled / limited to pairs, and with
# the out-of-order scheduler disabled (PR 3 level barriers). Asserts the
# determinism contract (bit-identical tables across threads, every fuse
# level AND overlap on/off) and prints the wall-time trajectory so a perf
# regression is visible in the CI log.
# ----------------------------------------------------------------------
step "bench smoke: repro_all --quick (threads=1 vs threads=4 vs fuse=off/pairs vs overlap=off)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

./target/release/repro_all --quick --threads=1 | tee "$tmp/t1.out"
./target/release/repro_all --quick --threads=4 | tee "$tmp/t4.out"
./target/release/repro_all --quick --threads=1 --fuse=off --batch=off | tee "$tmp/nofuse.out"
./target/release/repro_all --quick --threads=4 --fuse=pairs | tee "$tmp/pairs.out"
./target/release/repro_all --quick --threads=4 --overlap=off | tee "$tmp/nooverlap.out"

# The wall-time line is the only legitimate difference between runs.
grep -v '^repro_wall_time_seconds:' "$tmp/t1.out" > "$tmp/t1.tables"
grep -v '^repro_wall_time_seconds:' "$tmp/t4.out" > "$tmp/t4.tables"
grep -v '^repro_wall_time_seconds:' "$tmp/nofuse.out" > "$tmp/nofuse.tables"
grep -v '^repro_wall_time_seconds:' "$tmp/pairs.out" > "$tmp/pairs.tables"
grep -v '^repro_wall_time_seconds:' "$tmp/nooverlap.out" > "$tmp/nooverlap.tables"
if ! diff -u "$tmp/t1.tables" "$tmp/t4.tables"; then
  echo "FAIL: repro_all tables differ between --threads=1 and --threads=4" >&2
  exit 1
fi
if ! diff -u "$tmp/t1.tables" "$tmp/nofuse.tables"; then
  echo "FAIL: repro_all tables differ between fused and unfused execution" >&2
  exit 1
fi
if ! diff -u "$tmp/t1.tables" "$tmp/pairs.tables"; then
  echo "FAIL: repro_all tables differ between chain fusion and pairs-only fusion" >&2
  exit 1
fi
if ! diff -u "$tmp/t4.tables" "$tmp/nooverlap.tables"; then
  echo "FAIL: repro_all tables differ between overlap=on and overlap=off" >&2
  exit 1
fi
echo "tables bit-identical across thread counts, fuse levels and overlap modes"

# Every workload family must actually be in the sweep — a registry
# regression that dropped a category would keep all the diffs above
# green while silently shrinking coverage.
for family in \
  "Fig. 2: single-kernel benchmarks" \
  "Fig. 3: polybench benchmarks" \
  "Stencil workloads" \
  "Reduction/scan workloads (extension)" \
  "Sparse indirect-index workloads (extension)"; do
  if ! grep -qF "$family" "$tmp/t1.out"; then
    echo "FAIL: bench smoke is missing the '$family' table" >&2
    exit 1
  fi
done
echo "all five workload families present in the sweep"

# ----------------------------------------------------------------------
# JIT determinism smoke: the closure-JIT tier (on by default, so the runs
# above already exercise it) must be bit-identical to the bytecode loop.
# Pin both extremes against the threads=4 baseline: --jit=always (every
# plan compiles, no warm-up) and --jit=off (pure bytecode interpreter).
# ----------------------------------------------------------------------
step "JIT determinism smoke: --jit=always vs --jit=off vs baseline"
./target/release/repro_all --quick --threads=4 --jit=always | tee "$tmp/jit-always.out"
./target/release/repro_all --quick --threads=4 --jit=off | tee "$tmp/jit-off.out"
grep -v '^repro_wall_time_seconds:' "$tmp/jit-always.out" > "$tmp/jit-always.tables"
grep -v '^repro_wall_time_seconds:' "$tmp/jit-off.out" > "$tmp/jit-off.tables"
if ! diff -u "$tmp/t4.tables" "$tmp/jit-always.tables"; then
  echo "FAIL: repro_all tables differ under --jit=always" >&2
  exit 1
fi
if ! diff -u "$tmp/t4.tables" "$tmp/jit-off.tables"; then
  echo "FAIL: repro_all tables differ under --jit=off" >&2
  exit 1
fi
echo "tables bit-identical across closure-JIT modes"

# ----------------------------------------------------------------------
# Verifier smoke: the decode-time plan verifier (on by default in lint
# mode, so the runs above already exercise it) must never perturb
# simulated results. Pin both extremes: --verify=strict (rejections
# become launch errors — the paper-figure suite must be fully provable)
# and --verify=off (no facts, every runtime check re-armed) against the
# lint-mode baselines.
# ----------------------------------------------------------------------
step "verifier smoke: --verify=strict vs --verify=off vs baseline"
./target/release/repro_all --quick --threads=1 --verify=strict | tee "$tmp/vstrict.out"
./target/release/repro_all --quick --threads=4 --verify=off | tee "$tmp/voff.out"
grep -v '^repro_wall_time_seconds:' "$tmp/vstrict.out" > "$tmp/vstrict.tables"
grep -v '^repro_wall_time_seconds:' "$tmp/voff.out" > "$tmp/voff.tables"
if ! diff -u "$tmp/t1.tables" "$tmp/vstrict.tables"; then
  echo "FAIL: repro_all tables differ under --verify=strict" >&2
  exit 1
fi
if ! diff -u "$tmp/t4.tables" "$tmp/voff.tables"; then
  echo "FAIL: repro_all tables differ under --verify=off" >&2
  exit 1
fi
echo "tables bit-identical across verifier modes (strict accepts the whole suite)"

# ----------------------------------------------------------------------
# Scheduler-policy smoke: the critical-path ready set (default) and the
# FIFO baseline, and host tasks as graph nodes (default) vs the legacy
# segmented schedule, must all reproduce the threads=4 tables
# bit-identically — ordering and segmentation only move wall time.
# repro_hostdag is the host-task-heavy shape where the schedules differ
# most (its A/B is the PR 9 headline in BENCH_pr9.json).
# ----------------------------------------------------------------------
step "scheduler smoke: --sched=fifo + --host-nodes=off vs baseline"
./target/release/repro_all --quick --threads=4 --sched=fifo | tee "$tmp/fifo.out"
./target/release/repro_all --quick --threads=4 --host-nodes=off | tee "$tmp/segmented.out"
grep -v '^repro_wall_time_seconds:' "$tmp/fifo.out" > "$tmp/fifo.tables"
grep -v '^repro_wall_time_seconds:' "$tmp/segmented.out" > "$tmp/segmented.tables"
if ! diff -u "$tmp/t4.tables" "$tmp/fifo.tables"; then
  echo "FAIL: repro_all tables differ under --sched=fifo" >&2
  exit 1
fi
if ! diff -u "$tmp/t4.tables" "$tmp/segmented.tables"; then
  echo "FAIL: repro_all tables differ under --host-nodes=off" >&2
  exit 1
fi
for cfg in "--threads=4" "--threads=4 --host-nodes=off" "--threads=4 --sched=fifo" \
           "--threads=1 --host-nodes=off --sched=fifo"; do
  # shellcheck disable=SC2086
  ./target/release/repro_hostdag --quick $cfg 2>/dev/null \
    | grep -v '^repro_wall_time_seconds:' > "$tmp/hostdag-cur.tables"
  if [ ! -f "$tmp/hostdag-ref.tables" ]; then
    cp "$tmp/hostdag-cur.tables" "$tmp/hostdag-ref.tables"
  elif ! diff -u "$tmp/hostdag-ref.tables" "$tmp/hostdag-cur.tables"; then
    echo "FAIL: repro_hostdag tables differ under $cfg" >&2
    exit 1
  fi
done
echo "tables bit-identical across ready-set policies and host-node modes"

# The PR 9 stress pins, by name: host-task failure positions survive
# segmentation, a type-mismatched host AddInto stays a structured error,
# and injected faults on host nodes cascade — plus the host-node/FIFO
# sweep configs inside the randomized differential.
step "scheduler stress pins: host-task positions, host faults, sched axes"
cargo test -q --test scheduler_stress -- \
  divergent_kernel_after_host_task_reports_submission_position \
  host_addinto_type_mismatch_is_a_structured_error \
  injected_fault_on_host_node_cascades_to_successors \
  host_node_in_graph_runs_in_hazard_order

# ----------------------------------------------------------------------
# Limits smoke: an adversarial kernel spinning an (effectively)
# unbounded loop must trip --max-ops — fail fast with the structured
# limit error, never hang — under BOTH engines, and the device must stay
# usable afterwards (repro_limits checks all of that itself; the timeout
# is the hang backstop). A sweep with generous limits *enabled* must
# then reproduce the baseline tables bit-identically: the metering path
# may cost a little wall time but can never perturb simulated results.
# ----------------------------------------------------------------------
step "limits smoke: repro_limits under both engines + closure tier + generous-limits identity"
timeout 120 ./target/release/repro_limits --engine=plan --threads=4 --max-ops=2000000
timeout 120 ./target/release/repro_limits --engine=tree --max-ops=2000000
# The closure tier meters through the same OpMeter: limits must trip with
# the identical error and the device must survive with JIT forced on.
timeout 120 ./target/release/repro_limits --engine=plan --threads=4 --jit=always --max-ops=2000000

./target/release/repro_all --quick --threads=4 --max-ops=1000000000000 \
  --deadline-ms=600000 | tee "$tmp/limits.out"
grep -v '^repro_wall_time_seconds:' "$tmp/limits.out" > "$tmp/limits.tables"
if ! diff -u "$tmp/t4.tables" "$tmp/limits.tables"; then
  echo "FAIL: repro_all tables differ with generous limits enabled" >&2
  exit 1
fi
echo "limits smoke passed: both engines trip, device survives, tables unchanged"

# ----------------------------------------------------------------------
# Miri smoke: the scheduler/pool core under the interpreter's aliasing
# and data-race checks — a bounded subset (pool::), because Miri is two
# to three orders of magnitude slower than native. Needs the nightly
# toolchain with the miri component; probe for the actual cargo-miri
# command (a listed-but-uninstalled component fails the probe) and skip
# cleanly when absent so offline/stable-only runners stay green.
# ----------------------------------------------------------------------
step "miri smoke: cargo +nightly miri test -p sycl-mlir-sim pool:: (skip-if-unavailable)"
if [[ "${CI_SKIP_MIRI:-0}" == 1 ]]; then
  echo "(CI_SKIP_MIRI=1: skipping the Miri smoke)"
elif cargo +nightly miri --version >/dev/null 2>&1; then
  # Disable isolation: the pool tests read wall clocks for cost-model
  # timestamps. The timeout is the hang backstop, same as repro_limits.
  MIRIFLAGS="-Zmiri-disable-isolation" \
    timeout 900 cargo +nightly miri test -q -p sycl-mlir-sim pool::
  echo "miri smoke passed"
else
  echo "(cargo +nightly miri not available on this runner: skipping)"
fi

# ----------------------------------------------------------------------
# TSan build: compile the scheduler stress suite under ThreadSanitizer.
# Build-only — linking an instrumented std catches ABI/layout breakage
# and keeps the TSan configuration from rotting; actually *running*
# ~200 hazard DAGs under TSan is a nightly-cron job, not a gate. Needs
# nightly + the rust-src component (-Zbuild-std: std itself must be
# instrumented, an uninstrumented panic_unwind is an ABI mismatch).
# ----------------------------------------------------------------------
step "tsan build: scheduler_stress with -Zsanitizer=thread (skip-if-unavailable)"
tsan_src="$(rustc +nightly --print sysroot 2>/dev/null)/lib/rustlib/src/rust/library/Cargo.toml"
if [[ "${CI_SKIP_TSAN:-0}" == 1 ]]; then
  echo "(CI_SKIP_TSAN=1: skipping the TSan build)"
elif [[ -f "$tsan_src" ]]; then
  # A separate target dir: the sanitizer RUSTFLAGS would otherwise
  # invalidate the main cache twice per CI run.
  RUSTFLAGS="-Zsanitizer=thread" \
    timeout 900 cargo +nightly build -q -Zbuild-std \
    --target x86_64-unknown-linux-gnu --target-dir target/tsan \
    --test scheduler_stress
  echo "tsan build passed"
else
  echo "(nightly rust-src not available on this runner: skipping)"
fi

# ----------------------------------------------------------------------
# Profile artifact: the opcode-mix summary (per-opcode execution totals +
# ranked fusion candidates) from a --profile=on sweep, saved under
# target/ci-artifacts/ and uploaded by the workflow — so fusion-candidate
# drift across PRs is tracked instead of re-measured by hand.
# ----------------------------------------------------------------------
step "profile artifact: opcode mix (fusion-candidate drift tracking)"
artifacts=target/ci-artifacts
mkdir -p "$artifacts"
./target/release/repro_all --quick --threads=4 --profile=on > "$tmp/profile.out"
# Keep only the profile section, minus the run-dependent wall-time and
# verifier-timing lines — the artifact must diff clean across runs when
# the opcode mix is stable.
sed -n '/^== instruction profile/,$p' "$tmp/profile.out" \
  | grep -v '^repro_wall_time_seconds:' \
  | grep -v 'verify time' > "$artifacts/opcode-mix.txt"
if ! [ -s "$artifacts/opcode-mix.txt" ]; then
  echo "FAIL: --profile=on produced no instruction profile section" >&2
  exit 1
fi
head -n 14 "$artifacts/opcode-mix.txt"
echo "  ... (full opcode mix in $artifacts/opcode-mix.txt)"

# ----------------------------------------------------------------------
# Perf-regression gate: the median wall time of three repro_all --quick
# --json sweeps, compared against the checked-in
# scripts/bench-baseline.json. More than 10% slower warns; more than 25%
# fails the gate. Wall time is machine-dependent, so the baseline is
# refreshed whenever it is re-recorded on different hardware:
#   ./target/release/repro_all --quick --threads=4 --json > scripts/bench-baseline.json
# Per-workload simulated cycles are machine-independent, so any drift
# from the baseline is surfaced too (warn-only: an intentional cost-model
# change just refreshes the baseline). The median run's summary is saved
# under target/ci-artifacts/ and uploaded next to opcode-mix.txt.
# ----------------------------------------------------------------------
step "perf gate: median of 3x repro_all --json vs scripts/bench-baseline.json"
for i in 1 2 3; do
  ./target/release/repro_all --quick --threads=4 --json > "$tmp/bench-$i.json"
done
median_run=$(for i in 1 2 3; do
  wall=$(sed -n 's/.*"wall_time_seconds": \([0-9.]*\).*/\1/p' "$tmp/bench-$i.json")
  echo "$wall $i"
done | sort -n | sed -n 2p)
median=${median_run% *}
median_idx=${median_run#* }
cp "$tmp/bench-$median_idx.json" "$artifacts/bench-summary.json"
# The perf gate slices by family via the per-workload category tag; all
# five must be present in the summary it records.
for tag in single-kernel polybench stencil reduction sparse; do
  if ! grep -qF "\"category\": \"$tag\"" "$artifacts/bench-summary.json"; then
    echo "FAIL: --json summary has no \"$tag\" workloads" >&2
    exit 1
  fi
done
baseline=$(sed -n 's/.*"wall_time_seconds": \([0-9.]*\).*/\1/p' scripts/bench-baseline.json)
echo "median wall time: ${median}s (baseline: ${baseline}s)"

cycles_of() { sed -n 's/.*\("name": "[^"]*"\).*\("cycles": \[[^]]*\]\).*/\1 \2/p' "$1"; }
cycles_of scripts/bench-baseline.json > "$tmp/baseline.cycles"
cycles_of "$artifacts/bench-summary.json" > "$tmp/fresh.cycles"
if ! diff -u "$tmp/baseline.cycles" "$tmp/fresh.cycles"; then
  echo "WARN: per-workload simulated cycles drifted from scripts/bench-baseline.json" >&2
  echo "      (intentional cost-model change? refresh the baseline)" >&2
fi

if [[ "${CI_SKIP_PERF_GATE:-0}" == 1 ]]; then
  echo "(CI_SKIP_PERF_GATE=1: skipping the wall-time comparison)"
else
  verdict=$(awk -v m="$median" -v b="$baseline" 'BEGIN {
    r = m / b
    if (r > 1.25) print "fail"
    else if (r > 1.10) print "warn"
    else print "ok"
    printf "ratio %.3f\n", r > "/dev/stderr"
  }')
  case "$verdict" in
    fail)
      echo "FAIL: wall time regressed >25% vs scripts/bench-baseline.json (${median}s vs ${baseline}s)" >&2
      echo "      If the regression is expected (or the machine changed), refresh the baseline." >&2
      exit 1
      ;;
    warn)
      echo "WARN: wall time regressed >10% vs scripts/bench-baseline.json (${median}s vs ${baseline}s)" >&2
      ;;
    ok)
      echo "perf gate passed: ${median}s within 10% of the ${baseline}s baseline"
      ;;
  esac
fi

echo
echo "wall-time regression check (PR 5 baseline: ~0.84 s threads=4; PR 7 jit=on: ~0.80 s):"
grep '^repro_wall_time_seconds:' "$tmp/t1.out"        | sed 's/^/  threads=1            /'
grep '^repro_wall_time_seconds:' "$tmp/t4.out"        | sed 's/^/  threads=4            /'
grep '^repro_wall_time_seconds:' "$tmp/nofuse.out"    | sed 's/^/  fuse=off,batch=off   /'
grep '^repro_wall_time_seconds:' "$tmp/pairs.out"     | sed 's/^/  threads=4,fuse=pairs /'
grep '^repro_wall_time_seconds:' "$tmp/nooverlap.out" | sed 's/^/  threads=4,overlap=off/'
grep '^repro_wall_time_seconds:' "$tmp/limits.out"    | sed 's/^/  threads=4,limits=on  /'
grep '^repro_wall_time_seconds:' "$tmp/jit-always.out" | sed 's/^/  threads=4,jit=always /'
grep '^repro_wall_time_seconds:' "$tmp/jit-off.out"   | sed 's/^/  threads=4,jit=off    /'
grep '^repro_wall_time_seconds:' "$tmp/vstrict.out"   | sed 's/^/  threads=1,verify=strict /'
grep '^repro_wall_time_seconds:' "$tmp/voff.out"      | sed 's/^/  threads=4,verify=off /'

echo
echo "CI gate passed."
