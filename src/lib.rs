//! # sycl-mlir-repro — facade crate
//!
//! Re-exports the whole SYCL-MLIR reproduction stack under one roof. See the
//! README for the architecture overview and the `examples/` directory for
//! runnable walkthroughs of the public API.

pub use sycl_mlir_analysis as analysis;
pub use sycl_mlir_benchsuite as benchsuite;
pub use sycl_mlir_core as core;
pub use sycl_mlir_dialects as dialects;
pub use sycl_mlir_frontend as frontend;
pub use sycl_mlir_ir as ir;
pub use sycl_mlir_runtime as runtime;
pub use sycl_mlir_sim as sim;
pub use sycl_mlir_sycl as sycl;
pub use sycl_mlir_transform as transform;
