//! Extending the compiler: write a custom analysis-driven pass against the
//! IR kernel and run it in a pipeline — the extensibility story of §II-B.
//!
//! The pass counts (and annotates) divergent branches in every kernel using
//! the uniformity analysis, then a rewrite pattern strips redundant
//! `arith.addi x, 0` left over by a deliberately naive kernel.
//!
//! ```sh
//! cargo run --example custom_pass
//! ```

use sycl_mlir_repro::analysis::{Uniformity, UniformityAnalysis};
use sycl_mlir_repro::dialects::arith;
use sycl_mlir_repro::frontend::{full_context, KernelModuleBuilder, KernelSig};
use sycl_mlir_repro::ir::{Attribute, Module, Pass, PassManager, WalkControl};
use sycl_mlir_repro::sycl::device as sdev;
use sycl_mlir_repro::sycl::types::AccessMode;

/// Marks every `scf.if` whose condition is not provably uniform.
struct AnnotateDivergence {
    found: usize,
}

impl Pass for AnnotateDivergence {
    fn name(&self) -> &'static str {
        "annotate-divergence"
    }

    fn run(&mut self, m: &mut Module) -> Result<bool, String> {
        let mut marks = Vec::new();
        let kernels: Vec<_> = {
            let mut out = Vec::new();
            m.walk(m.top(), &mut |op| {
                if m.op_is(op, "func.func") && sdev::is_kernel(m, op) {
                    out.push(op);
                }
                WalkControl::Advance
            });
            out
        };
        for kernel in kernels {
            let ua = UniformityAnalysis::compute(m, kernel);
            m.walk(kernel, &mut |op| {
                if m.op_is(op, "scf.if") && ua.value(m.op_operand(op, 0)) != Uniformity::Uniform {
                    marks.push(op);
                }
                WalkControl::Advance
            });
        }
        self.found = marks.len();
        for op in &marks {
            m.set_attr(*op, "divergent", Attribute::Unit);
        }
        Ok(!marks.is_empty())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let sig = KernelSig::new("demo", 1, true).accessor(ctx.f32_type(), 1, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        // A deliberately naive `gid + 0` for the canonicalizer to clean up.
        let zero = arith::constant_index(b, 0);
        let idx = arith::addi(b, gid, zero);
        let v = sdev::load_via_id(b, args[0], &[idx]);
        let cond = arith::cmpf(b, "sgt", v, v);
        sycl_mlir_repro::dialects::scf::build_if(
            b,
            cond,
            &[],
            |inner| {
                let two = arith::constant_float(inner, 2.0, inner.ctx().f32_type());
                let doubled = arith::mulf(inner, v, two);
                sdev::store_via_id(inner, doubled, args[0], &[idx]);
                vec![]
            },
            |_| vec![],
        );
    });
    let mut module = kb.finish();

    let mut pm = PassManager::new();
    pm.add_pass(AnnotateDivergence { found: 0 });
    pm.add_pass(sycl_mlir_repro::transform::CanonicalizePass);
    let stats = pm.run(&mut module).map_err(|e| format!("pipeline: {e}"))?;

    println!("pipeline: {:?}", pm.pass_names());
    for (name, time, changed) in &stats.per_pass {
        println!("  {name:<24} changed={changed} ({time:?})");
    }
    let text = sycl_mlir_repro::ir::print_module(&module);
    assert!(
        text.contains("divergent = unit"),
        "the divergent branch is annotated"
    );
    assert!(
        !text.contains("arith.addi"),
        "the canonicalizer removed `gid + 0`"
    );
    println!("\n{text}");
    println!("custom pass annotated the divergent branch; canonicalization cleaned `x + 0`.");
    Ok(())
}
