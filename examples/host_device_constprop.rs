//! Host raising + host-device constant propagation (Listings 8 → 9 and
//! §VII-B of the paper).
//!
//! Builds a Sobel7-style application whose filter is a `const` array on the
//! host, shows the low-level host IR (`llvm.call`s), the raised
//! `sycl.host.*` form, and the device kernel attributes after the joint
//! analysis: constant ND-range, buffer identities, and the constant-array
//! argument that makes the filter loads constant-memory accesses.
//!
//! ```sh
//! cargo run --example host_device_constprop
//! ```

use sycl_mlir_repro::core::{Flow, FlowKind};
use sycl_mlir_repro::ir::{print_module, print_op};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = sycl_mlir_repro::benchsuite::all_workloads()
        .into_iter()
        .find(|w| w.name == "Sobel7")
        .expect("Sobel7 registered");
    let app = (spec.build)(32);
    let mut module = app.module;

    println!("== host IR before raising (Listing 8 after clang + mlir-translate) ==\n");
    let host_funcs = module.funcs_in(module.top());
    for &f in &host_funcs {
        println!("{}", print_op(&module, f));
    }

    let mut flow = Flow::new(FlowKind::SyclMlir);
    flow.dump_stages = true;
    let outcome = flow
        .compile(&mut module)
        .map_err(|e| format!("compile: {e}"))?;

    println!("\n== host IR after raising (Listing 9) ==\n");
    let raised = &outcome.dumps.first().expect("raise-host dump").1;
    for line in raised.lines().filter(|l| l.contains("sycl.host.")) {
        println!("{}", line.trim());
    }

    println!("\n== device kernel attributes after host-device propagation ==\n");
    let device = module
        .lookup_symbol(module.top(), sycl_mlir_repro::sycl::DEVICE_MODULE_SYM)
        .expect("device module");
    let kernel = module.funcs_in(device)[0];
    for (key, value) in module.op_attrs(kernel) {
        let key = module.attr_key_str(*key);
        if key.starts_with("sycl.") {
            println!("  {key} = {value}");
        }
    }
    assert!(
        module.attr(kernel, "sycl.const_args").is_some(),
        "filter marked constant"
    );
    assert!(
        module
            .attr(kernel, sycl_mlir_repro::sycl::KERNEL_GLOBAL_RANGE_ATTR)
            .is_some(),
        "ND-range propagated"
    );
    println!("\nJoint analysis confirmed: constant filter + ND-range propagated to the device.");
    let _ = print_module(&module);
    Ok(())
}
