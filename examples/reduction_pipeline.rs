//! Array-reduction detection walkthrough (Listings 4 → 5 of the paper) with
//! measured memory traffic: the loop's `2N` accesses of the reduced element
//! collapse to `2`.
//!
//! ```sh
//! cargo run --example reduction_pipeline
//! ```

use sycl_mlir_repro::core::FlowKind;
use sycl_mlir_repro::sim::Device;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = sycl_mlir_repro::benchsuite::all_workloads()
        .into_iter()
        .find(|w| w.name == "Covariance")
        .expect("Covariance registered");

    println!("Covariance: 4 array-reduction opportunities (§VIII)\n");
    for kind in [FlowKind::Dpcpp, FlowKind::SyclMlir] {
        let mut app = (spec.build)(32);
        let mut program = sycl_mlir_repro::runtime::compile_program(kind, app.module)
            .map_err(|e| format!("compile: {e}"))?;
        let device = Device::new();
        let report = sycl_mlir_repro::runtime::exec::run(
            &mut program,
            &mut app.runtime,
            &app.queue,
            &device,
        )?;
        let stats = report.total_stats();
        assert!(
            (app.validate)(&app.runtime).is_ok(),
            "results must validate"
        );
        println!(
            "{:<12} global accesses = {:>9}  transactions = {:>8}  cycles = {:>9.0}",
            kind.name(),
            stats.global_accesses,
            stats.global_transactions,
            report.measured_cycles()
        );
        for note in &program.outcome.notes {
            if note.contains("reduction") {
                println!("  {note}");
            }
        }
    }
    println!("\nThe SYCL-MLIR flow removes the per-iteration load/store of the accumulator");
    println!("(Listing 4 -> Listing 5), which shows up directly as lower global traffic.");
    Ok(())
}
