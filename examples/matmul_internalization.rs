//! Loop internalization walkthrough (Listings 6 → 7 of the paper).
//!
//! Builds the matmul kernel of Listing 6, runs the SYCL-MLIR pipeline, and
//! prints the kernel IR before and after: the tiled loop, the local-memory
//! tiles, and the two group barriers of Listing 7.
//!
//! ```sh
//! cargo run --example matmul_internalization
//! ```

use sycl_mlir_repro::core::{Flow, FlowKind};
use sycl_mlir_repro::ir::print_op;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = sycl_mlir_repro::benchsuite::all_workloads()
        .into_iter()
        .find(|w| w.name == "GEMM")
        .expect("GEMM registered");
    let app = (spec.build)(32);
    let mut module = app.module;

    let device = module
        .lookup_symbol(module.top(), sycl_mlir_repro::sycl::DEVICE_MODULE_SYM)
        .expect("device module");
    let kernel = module.funcs_in(device)[0];
    println!("== Listing 6: the kernel before optimization ==\n");
    println!("{}", print_op(&module, kernel));

    let flow = Flow::new(FlowKind::SyclMlir);
    let outcome = flow
        .compile(&mut module)
        .map_err(|e| format!("compile: {e}"))?;

    println!("\n== Listing 7: after the SYCL-MLIR pipeline ==\n");
    println!("{}", print_op(&module, kernel));
    println!("== pipeline notes ==");
    for note in &outcome.notes {
        println!("  {note}");
    }

    let text = print_op(&module, kernel);
    assert_eq!(
        text.matches("sycl.group.barrier").count(),
        2,
        "two barriers (Listing 7)"
    );
    assert_eq!(
        text.matches("sycl.local.alloca").count(),
        2,
        "two local tiles (A and B)"
    );
    println!("\nListing 7 shape confirmed: 2 local tiles, 2 group barriers, tiled loop nest.");
    Ok(())
}
