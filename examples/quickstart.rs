//! Quickstart: build a SYCL application (kernel + command group), compile it
//! with all three flows the paper compares, run it on the simulated GPU and
//! print the results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sycl_mlir_repro::core::FlowKind;
use sycl_mlir_repro::dialects::arith;
use sycl_mlir_repro::frontend::{full_context, KernelModuleBuilder, KernelSig};
use sycl_mlir_repro::runtime::{compile_program, hostgen::generate_host_ir, Queue, SyclRuntime};
use sycl_mlir_repro::sim::Device;
use sycl_mlir_repro::sycl::device as sdev;
use sycl_mlir_repro::sycl::types::AccessMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1024_i64;

    for kind in FlowKind::all() {
        // 1. Device code: a SAXPY kernel, written the way the paper's
        //    Polygeist frontend would emit it.
        let ctx = full_context();
        let mut kb = KernelModuleBuilder::new(&ctx);
        let sig = KernelSig::new("saxpy", 1, false)
            .accessor(ctx.f32_type(), 1, AccessMode::Read)
            .accessor(ctx.f32_type(), 1, AccessMode::ReadWrite)
            .scalar(ctx.f32_type());
        kb.add_kernel(&sig, |b, args, item| {
            let gid = sdev::item_get_id(b, item, 0);
            let x = sdev::load_via_id(b, args[0], &[gid]);
            let y = sdev::load_via_id(b, args[1], &[gid]);
            let ax = arith::mulf(b, args[2], x);
            let res = arith::addf(b, ax, y);
            sdev::store_via_id(b, res, args[1], &[gid]);
        });

        // 2. Host code: buffers + a command group, recorded through the
        //    runtime API (which also emits the host IR for raising).
        let mut rt = SyclRuntime::new();
        let x = rt.buffer_f32((0..n).map(|i| i as f32).collect(), &[n]);
        let y = rt.buffer_f32(vec![1.0; n as usize], &[n]);
        let mut q = Queue::new();
        q.submit(|h| {
            h.accessor(x, AccessMode::Read)
                .accessor(y, AccessMode::ReadWrite)
                .scalar_f32(2.0);
            h.parallel_for("saxpy", &[n]);
        });
        generate_host_ir(kb.module(), &rt, &q);
        let module = kb.finish();

        // 3. Compile with the selected flow and run on the simulated GPU.
        let mut program = compile_program(kind, module)?;
        let device = Device::new();
        let report = sycl_mlir_repro::runtime::exec::run(&mut program, &mut rt, &q, &device)?;

        let out = rt.read_f32(y);
        assert_eq!(out[10], 2.0 * 10.0 + 1.0);
        println!(
            "{:<12} y[10] = {:>6}  simulated cycles = {:>10.0}",
            kind.name(),
            out[10],
            report.measured_cycles()
        );
        for note in &program.outcome.notes {
            println!("  {note}");
        }
    }
    Ok(())
}
